//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! value-tree model of the sibling `serde` stand-in, without `syn`/`quote`:
//! the item is parsed with a small hand-rolled scanner over
//! [`proc_macro::TokenTree`]s and the impl is generated as source text.
//!
//! Supported shapes (everything this workspace derives):
//! * structs with named fields,
//! * tuple structs (a single field serializes as its inner value, like
//!   serde's newtype structs; larger arities as arrays),
//! * enums with unit, newtype, tuple and struct variants, encoded with
//!   serde's externally tagged representation.
//!
//! `#[serde(...)]` attributes and generic parameters are intentionally not
//! supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum ItemKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input) {
        Ok((name, kind)) => {
            let body = match mode {
                Mode::Serialize => gen_serialize(&name, &kind),
                Mode::Deserialize => gen_deserialize(&name, &kind),
            };
            body.parse().expect("generated impl parses")
        }
        Err(message) => format!("compile_error!({message:?});")
            .parse()
            .expect("compile_error parses"),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<(String, ItemKind), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes_and_visibility(&tokens, &mut i)?;

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stand-in: generic type `{name}` is not supported"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, ItemKind::NamedStruct(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, ItemKind::TupleStruct(count_tuple_fields(g.stream()))))
            }
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, ItemKind::Enum(parse_variants(g.stream())?)))
            }
            other => Err(format!("expected enum body, found {other:?}")),
        },
        other => Err(format!("expected `struct` or `enum`, found `{other}`")),
    }
}

/// Advances past `#[...]` attributes (including doc comments) and an optional
/// `pub` / `pub(...)` visibility.
fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) -> Result<(), String> {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => match tokens.get(*i + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    if g.stream().into_iter().next().is_some_and(
                        |t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "serde"),
                    ) {
                        return Err("serde stand-in: #[serde(...)] attributes are not supported"
                            .to_string());
                    }
                    *i += 2;
                }
                other => return Err(format!("malformed attribute: {other:?}")),
            },
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return Ok(()),
        }
    }
}

/// Parses the field names of a named-fields body.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i)?;
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_type(&tokens, &mut i);
        fields.push(name);
    }
    Ok(fields)
}

/// Advances past a type, stopping after the top-level `,` that ends the
/// field (or at end of input). Tracks `<...>` nesting so commas inside
/// generic arguments don't terminate the field.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*i) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Counts top-level fields of a tuple body (attributes and visibility on the
/// fields are tolerated; only the count matters).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut tail_empty = true;
    for token in &tokens {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    tail_empty = true;
                    continue;
                }
                _ => {}
            }
        }
        tail_empty = false;
    }
    if tail_empty {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i)?;
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => {
                return Err(format!(
                    "expected `,` after variant `{name}`, found {other:?}"
                ))
            }
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(name: &str, kind: &ItemKind) -> String {
    let body = match kind {
        ItemKind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| serialize_variant_arm(name, v))
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn serialize_variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.shape {
        VariantShape::Unit => format!(
            "{enum_name}::{vname} => \
             ::serde::Value::Str(::std::string::String::from({vname:?})),"
        ),
        VariantShape::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let inner = if *n == 1 {
                "::serde::Serialize::to_value(__f0)".to_string()
            } else {
                let items: Vec<String> = binders
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "{enum_name}::{vname}({}) => ::serde::Value::Object(vec![\
                 (::std::string::String::from({vname:?}), {inner})]),",
                binders.join(", ")
            )
        }
        VariantShape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{enum_name}::{vname} {{ {} }} => ::serde::Value::Object(vec![\
                 (::std::string::String::from({vname:?}), \
                 ::serde::Value::Object(vec![{}]))]),",
                fields.join(", "),
                entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(name: &str, kind: &ItemKind) -> String {
    let body = match kind {
        ItemKind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::from_field(__obj, {f:?}, {name:?})?,"))
                .collect();
            format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::Error::expected(\"object\", {name:?}))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(" ")
            )
        }
        ItemKind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        ItemKind::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = match __v {{ \
                 ::serde::Value::Array(items) if items.len() == {n} => items, \
                 other => return ::std::result::Result::Err(\
                 ::serde::Error::expected(\"{n}-element array\", other.kind())) }};\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        ItemKind::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, VariantShape::Unit))
        .map(|v| {
            format!(
                "{vname:?} => ::std::result::Result::Ok({name}::{vname}),",
                vname = v.name
            )
        })
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.shape {
                VariantShape::Unit => {
                    format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),")
                }
                VariantShape::Tuple(1) => format!(
                    "{vname:?} => ::std::result::Result::Ok(\
                     {name}::{vname}(::serde::Deserialize::from_value(_inner)?)),"
                ),
                VariantShape::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "{vname:?} => {{ let __items = match _inner {{ \
                         ::serde::Value::Array(items) if items.len() == {n} => items, \
                         other => return ::std::result::Result::Err(\
                         ::serde::Error::expected(\"{n}-element array\", other.kind())) }}; \
                         ::std::result::Result::Ok({name}::{vname}({})) }}",
                        inits.join(", ")
                    )
                }
                VariantShape::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::from_field(__obj, {f:?}, {name:?})?,"))
                        .collect();
                    format!(
                        "{vname:?} => {{ let __obj = _inner.as_object().ok_or_else(|| \
                         ::serde::Error::expected(\"object\", {name:?}))?; \
                         ::std::result::Result::Ok({name}::{vname} {{ {} }}) }}",
                        inits.join(" ")
                    )
                }
            }
        })
        .collect();
    format!(
        "match __v {{\n\
         ::serde::Value::Str(__s) => match __s.as_str() {{\n\
         {}\n\
         __other => ::std::result::Result::Err(::serde::Error::custom(\
         format!(\"unknown unit variant `{{__other}}` of {name}\"))),\n\
         }},\n\
         _ => {{\n\
         let (_tag, _inner) = __v.as_single_entry().ok_or_else(|| \
         ::serde::Error::expected(\"string or single-entry object\", {name:?}))?;\n\
         match _tag {{\n\
         {}\n\
         __other => ::std::result::Result::Err(::serde::Error::custom(\
         format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
         }}\n\
         }}\n\
         }}",
        unit_arms.join("\n"),
        tagged_arms.join("\n")
    )
}
