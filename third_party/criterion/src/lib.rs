//! Offline stand-in for `criterion`.
//!
//! Provides the measurement surface this workspace's benches use —
//! [`black_box`], [`Criterion::bench_function`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by real
//! wall-clock timing with warm-up and per-sample calibration. Statistical
//! rigor (outlier classification, regression against saved baselines, HTML
//! reports) is out of scope; each bench prints min / median / mean / max
//! nanoseconds per iteration.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark driver; collects samples and prints a summary per function.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    /// Soft cap on the measurement time spent per benchmark function.
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the soft cap on measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs `routine` (which should call [`Bencher::iter`]) and prints the
    /// timing summary.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples_ns: Vec::new(),
        };
        routine(&mut bencher);
        bencher.report(id);
        self
    }
}

/// Passed to bench closures; [`Bencher::iter`] performs the measurement.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Nanoseconds per iteration, one entry per sample.
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`: warms up, calibrates iterations per sample so each
    /// sample is long enough to resolve, then records `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up, also yielding a first estimate of the iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);

        // Aim each sample at ~1/sample_size of the measurement budget, with
        // a floor so fast routines still accumulate enough work to time.
        let budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = ((budget_ns / est_ns).clamp(1.0, 1e9)) as u64;

        self.samples_ns.clear();
        let run_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.samples_ns.push(ns);
            // Slow routines: respect the overall budget rather than the
            // requested sample count.
            if run_start.elapsed() > self.measurement_time * 2 && self.samples_ns.len() >= 2 {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<40} no samples recorded");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(f64::total_cmp);
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "{id:<40} time: [{} {} {}] mean {} ({} samples)",
            format_ns(min),
            format_ns(median),
            format_ns(max),
            format_ns(mean),
            sorted.len(),
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut hits = 0u64;
        c.bench_function("spin", |b| {
            b.iter(|| {
                hits += 1;
                black_box((0..100u64).sum::<u64>());
            });
        });
        assert!(hits > 0);
    }

    #[test]
    fn format_scales() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with("s"));
    }
}
