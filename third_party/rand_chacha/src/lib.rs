//! Offline stand-in for `rand_chacha`.
//!
//! [`ChaCha8Rng`] runs the genuine ChaCha8 block function (the IETF variant's
//! state layout, 8 rounds) over a key expanded from a `u64` seed with
//! splitmix64. Output quality therefore matches real ChaCha8; the exact
//! stream differs from upstream `rand_chacha` (which derives its key
//! differently), which is fine for this workspace — tests assert seeded
//! determinism and statistics, not golden values.

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha with 8 rounds, seeded from a `u64`.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input state: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means exhausted.
    word_index: usize,
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut key = [0u32; 8];
        let mut z = seed;
        for pair in key.chunks_mut(2) {
            let word = splitmix64(&mut z);
            pair[0] = word as u32;
            if pair.len() > 1 {
                pair[1] = (word >> 32) as u32;
            }
        }
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&key);
        // Words 12..14 form the 64-bit block counter; 14..16 the nonce.
        ChaCha8Rng {
            state,
            block: [0; 16],
            word_index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

impl ChaCha8Rng {
    fn next_word(&mut self) -> u32 {
        if self.word_index == 16 {
            self.refill();
        }
        let w = self.block[self.word_index];
        self.word_index += 1;
        w
    }

    fn refill(&mut self) {
        self.block = chacha8_block(&self.state);
        self.word_index = 0;
        // 64-bit counter increment across words 12 and 13.
        let (next, carry) = self.state[12].overflowing_add(1);
        self.state[12] = next;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn chacha8_block(input: &[u32; 16]) -> [u32; 16] {
    let mut x = *input;
    for _ in 0..4 {
        // Column round.
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for (out, inp) in x.iter_mut().zip(input.iter()) {
        *out = out.wrapping_add(*inp);
    }
    x
}

fn quarter_round(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn uniformity_smoke() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mean = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn counter_carries_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        // Draw several blocks' worth; distinct blocks must not repeat.
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
