//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!`, a [`Strategy`] trait with `prop_map`,
//! and strategies over numeric ranges, tuples, booleans, `Just` values and
//! vectors. Cases are sampled from a generator seeded deterministically from
//! the test's module path and name, so failures reproduce across runs.
//!
//! Unlike real proptest there is **no shrinking**: a failing case reports the
//! assertion message only. Rejection via `prop_assume!` resamples the case.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Runtime configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per test.
        pub cases: u32,
        /// Maximum rejected (`prop_assume!`) cases tolerated before the
        /// test aborts.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Deterministic per-test generator (xorshift64*).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test identifier via FNV-1a, so each test gets a
        /// stable, distinct stream.
        pub fn for_test(name: &str) -> Self {
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: hash | 1 }
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, span)` without modulo bias.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            if span == 1 {
                return 0;
            }
            let zone = u64::MAX - (u64::MAX - span + 1) % span;
            loop {
                let x = self.next_u64();
                if x <= zone {
                    return x % span;
                }
            }
        }
    }
}

pub use test_runner::{ProptestConfig, TestRng};

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test should panic with this message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; resample and retry.
    Reject,
}

/// A source of values for one `name in strategy` binding.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Numeric range strategies
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                start + (end - start) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// bool / collection modules (match real proptest's paths)
// ---------------------------------------------------------------------------

pub mod bool {
    use super::{Strategy, TestRng};

    /// The strategy for a fair boolean, as `proptest::bool::ANY`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive-exclusive bound on collection sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome = (move || -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.max_global_rejects,
                            "proptest `{}`: too many rejected cases ({})",
                            stringify!($name),
                            rejected,
                        );
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                        panic!(
                            "proptest `{}` failed after {} passing case(s): {}",
                            stringify!($name),
                            passed,
                            message,
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if !(*__left == *__right) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __left,
                __right,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        if !(*__left == *__right) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __left,
                __right,
            )));
        }
    }};
}

/// Rejects the current case (resampling it) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("ranges_respect_bounds");
        for _ in 0..500 {
            let n = (3usize..10).sample(&mut rng);
            assert!((3..10).contains(&n));
            let m = (1u8..=8).sample(&mut rng);
            assert!((1..=8).contains(&m));
            let x = (-0.5f64..0.5).sample(&mut rng);
            assert!((-0.5..0.5).contains(&x));
            let negative = (-100i32..0).sample(&mut rng);
            assert!((-100..0).contains(&negative));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = TestRng::for_test("vec_strategy_lengths");
        for _ in 0..200 {
            let v = crate::collection::vec(1u64..500, 1..8).sample(&mut rng);
            assert!((1..8).contains(&v.len()));
            assert!(v.iter().all(|&x| (1..500).contains(&x)));
        }
    }

    #[test]
    fn map_and_tuples_compose() {
        let strat = (2usize..=6, crate::bool::ANY).prop_map(|(n, b)| if b { n * 2 } else { n });
        let mut rng = TestRng::for_test("map_and_tuples_compose");
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..=12).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_and_asserts(a in 0u64..100, b in 0u64..100) {
            prop_assume!(a != 99);
            prop_assert!(a + b < 200, "sum {} out of range", a + b);
            prop_assert_eq!(a + b, b + a);
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failing_case_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(a in 0u64..10) {
                prop_assert!(a > 100);
            }
        }
        always_fails();
    }
}
