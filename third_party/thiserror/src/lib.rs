//! Offline stand-in for `thiserror`.
//!
//! The real crate is a normal library that re-exports a derive from
//! `thiserror-impl`; since `use thiserror::Error;` only ever names the
//! macro, this stand-in is the proc-macro crate itself. It supports the
//! subset this workspace uses, on enums:
//!
//! * `#[error("format string")]` with `{named}` captures, positional `{0}`
//!   references (rewritten to bound identifiers) and format specs
//!   (`{fmax_mhz:.1}`),
//! * `#[error(transparent)]`, which forwards `Display` and `source()` to the
//!   single inner error,
//! * `#[from]` on a variant's only field, generating a `From` impl and a
//!   `source()` arm.
//!
//! Structs and generic enums are not supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `std::fmt::Display`, `std::error::Error` and `From` impls.
#[proc_macro_derive(Error, attributes(error, from, source, backtrace))]
pub fn derive_error(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(code) => code.parse().expect("generated impl parses"),
        Err(message) => format!("compile_error!({message:?});")
            .parse()
            .expect("compile_error parses"),
    }
}

struct EnumVariant {
    name: String,
    display: DisplayKind,
    fields: FieldsKind,
}

enum DisplayKind {
    /// Raw source text of the format string literal, quotes included.
    Format(String),
    Transparent,
}

enum FieldsKind {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

struct Field {
    name: Option<String>,
    ty: String,
    from: bool,
}

fn expand(input: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_outer_attrs_and_vis(&tokens, &mut i);

    match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {}
        other => {
            return Err(format!(
                "thiserror stand-in: only enums are supported, found {other:?}"
            ))
        }
    }
    i += 1;
    let enum_name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected enum name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "thiserror stand-in: generic enum `{enum_name}` is not supported"
        ));
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => return Err(format!("expected enum body, found {other:?}")),
    };
    let variants = parse_variants(body)?;
    Ok(generate(&enum_name, &variants))
}

fn skip_outer_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if matches!(tokens.get(*i + 1), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 2;
                } else {
                    return;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_variants(body: TokenStream) -> Result<Vec<EnumVariant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut display = None;
        // Collect variant attributes, looking for #[error(...)].
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            let group = match tokens.get(i + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g.clone(),
                other => return Err(format!("malformed attribute: {other:?}")),
            };
            i += 2;
            let attr: Vec<TokenTree> = group.stream().into_iter().collect();
            if matches!(attr.first(), Some(TokenTree::Ident(id)) if id.to_string() == "error") {
                let args = match attr.get(1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        g.stream().into_iter().collect::<Vec<_>>()
                    }
                    other => return Err(format!("malformed #[error]: {other:?}")),
                };
                display = Some(match args.first() {
                    Some(TokenTree::Ident(id)) if id.to_string() == "transparent" => {
                        DisplayKind::Transparent
                    }
                    Some(TokenTree::Literal(lit)) => DisplayKind::Format(lit.to_string()),
                    other => {
                        return Err(format!(
                            "thiserror stand-in: unsupported #[error] argument: {other:?}"
                        ))
                    }
                });
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                FieldsKind::Tuple(parse_fields(g.stream(), false)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                FieldsKind::Named(parse_fields(g.stream(), true)?)
            }
            _ => FieldsKind::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        let display = display.ok_or_else(|| {
            format!("thiserror stand-in: variant `{name}` is missing #[error(...)]")
        })?;
        variants.push(EnumVariant {
            name,
            display,
            fields,
        });
    }
    Ok(variants)
}

/// Parses fields of a tuple (`named = false`) or braced (`named = true`) body.
fn parse_fields(stream: TokenStream, named: bool) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut from = false;
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                if g.delimiter() == Delimiter::Bracket {
                    if matches!(
                        g.stream().into_iter().next(),
                        Some(TokenTree::Ident(id)) if id.to_string() == "from"
                    ) {
                        from = true;
                    }
                    i += 2;
                    continue;
                }
            }
            return Err("malformed field attribute".to_string());
        }
        if i >= tokens.len() {
            break;
        }
        // Optional `pub` visibility.
        if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = if named {
            let field_name = match tokens.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => return Err(format!("expected field name, found {other:?}")),
            };
            i += 1;
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
                other => return Err(format!("expected `:`, found {other:?}")),
            }
            Some(field_name)
        } else {
            None
        };
        // Capture type tokens until a top-level comma. Adjacent idents and
        // literals need a separating space; punctuation (e.g. the two halves
        // of `::`) must stay glued.
        let mut ty = String::new();
        let mut angle_depth = 0i32;
        let mut prev_wordlike = false;
        while let Some(token) = tokens.get(i) {
            if let TokenTree::Punct(p) = token {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            let wordlike = matches!(token, TokenTree::Ident(_) | TokenTree::Literal(_));
            if prev_wordlike && wordlike {
                ty.push(' ');
            }
            ty.push_str(&token.to_string());
            prev_wordlike = wordlike;
            i += 1;
        }
        fields.push(Field { name, ty, from });
    }
    Ok(fields)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn generate(enum_name: &str, variants: &[EnumVariant]) -> String {
    let mut display_arms = String::new();
    let mut source_arms = String::new();
    let mut from_impls = String::new();

    for v in variants {
        let vname = &v.name;
        let (pattern, bindings): (String, Vec<String>) = match &v.fields {
            FieldsKind::Unit => (format!("{enum_name}::{vname}"), Vec::new()),
            FieldsKind::Tuple(fields) => {
                let binds: Vec<String> = (0..fields.len()).map(|k| format!("_f{k}")).collect();
                (format!("{enum_name}::{vname}({})", binds.join(", ")), binds)
            }
            FieldsKind::Named(fields) => {
                let names: Vec<String> = fields
                    .iter()
                    .map(|f| f.name.clone().unwrap_or_default())
                    .collect();
                (
                    format!("{enum_name}::{vname} {{ {} }}", names.join(", ")),
                    names,
                )
            }
        };

        match &v.display {
            DisplayKind::Format(lit) => {
                let rewritten = rewrite_positional(lit);
                display_arms.push_str(&format!(
                    "            {pattern} => {{ \
                     let _ = (&{binds_tuple}); \
                     ::std::write!(__f, {rewritten}) }}\n",
                    binds_tuple = if bindings.is_empty() {
                        "()".to_string()
                    } else {
                        format!("({},)", bindings.join(", "))
                    },
                ));
            }
            DisplayKind::Transparent => {
                let inner = bindings.first().cloned().unwrap_or_default();
                display_arms.push_str(&format!(
                    "            {pattern} => ::std::fmt::Display::fmt({inner}, __f),\n"
                ));
            }
        }

        // source(): transparent forwards to the inner error's source; a
        // #[from] field is itself the source.
        let wildcard = match &v.fields {
            FieldsKind::Unit => format!("{enum_name}::{vname}"),
            FieldsKind::Tuple(_) => format!("{enum_name}::{vname}(..)"),
            FieldsKind::Named(_) => format!("{enum_name}::{vname} {{ .. }}"),
        };
        let source_arm = match (&v.display, &v.fields) {
            (DisplayKind::Transparent, FieldsKind::Tuple(fields)) if fields.len() == 1 => {
                format!(
                    "            {enum_name}::{vname}(_f0) => ::std::error::Error::source(_f0),\n"
                )
            }
            (DisplayKind::Transparent, FieldsKind::Named(fields)) if fields.len() == 1 => {
                let fname = fields[0].name.clone().unwrap_or_default();
                format!(
                    "            {enum_name}::{vname} {{ {fname} }} => ::std::error::Error::source({fname}),\n"
                )
            }
            (_, FieldsKind::Tuple(fields)) if fields.len() == 1 && fields[0].from => format!(
                "            {enum_name}::{vname}(_f0) => ::std::option::Option::Some(_f0 as &(dyn ::std::error::Error + 'static)),\n"
            ),
            (_, FieldsKind::Named(fields)) if fields.len() == 1 && fields[0].from => {
                let fname = fields[0].name.clone().unwrap_or_default();
                format!(
                    "            {enum_name}::{vname} {{ {fname} }} => ::std::option::Option::Some({fname} as &(dyn ::std::error::Error + 'static)),\n"
                )
            }
            _ => format!("            {wildcard} => ::std::option::Option::None,\n"),
        };
        source_arms.push_str(&source_arm);

        // From impl for a single #[from] field.
        match &v.fields {
            FieldsKind::Tuple(fields) if fields.len() == 1 && fields[0].from => {
                let ty = &fields[0].ty;
                from_impls.push_str(&format!(
                    "impl ::std::convert::From<{ty}> for {enum_name} {{\n    \
                     fn from(source: {ty}) -> Self {{ {enum_name}::{vname}(source) }}\n}}\n"
                ));
            }
            FieldsKind::Named(fields) if fields.len() == 1 && fields[0].from => {
                let ty = &fields[0].ty;
                let fname = fields[0].name.clone().unwrap_or_default();
                from_impls.push_str(&format!(
                    "impl ::std::convert::From<{ty}> for {enum_name} {{\n    \
                     fn from(source: {ty}) -> Self {{ {enum_name}::{vname} {{ {fname}: source }} }}\n}}\n"
                ));
            }
            _ => {}
        }
    }

    format!(
        "impl ::std::fmt::Display for {enum_name} {{\n    \
         fn fmt(&self, __f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n        \
         match self {{\n{display_arms}        }}\n    }}\n}}\n\
         impl ::std::error::Error for {enum_name} {{\n    \
         fn source(&self) -> ::std::option::Option<&(dyn ::std::error::Error + 'static)> {{\n        \
         match self {{\n{source_arms}        }}\n    }}\n}}\n\
         {from_impls}"
    )
}

/// Rewrites positional format references (`{0}`, `{1:.2}`) in a format
/// string literal's source text to the tuple-binding names `_f0`, `_f1`…
/// Escaped braces (`{{`) are left alone.
fn rewrite_positional(literal: &str) -> String {
    let chars: Vec<char> = literal.chars().collect();
    let mut out = String::with_capacity(literal.len());
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '{' {
            if chars.get(i + 1) == Some(&'{') {
                out.push_str("{{");
                i += 2;
                continue;
            }
            let mut j = i + 1;
            let mut digits = String::new();
            while j < chars.len() && chars[j].is_ascii_digit() {
                digits.push(chars[j]);
                j += 1;
            }
            if !digits.is_empty() && matches!(chars.get(j), Some('}') | Some(':')) {
                out.push('{');
                out.push_str("_f");
                out.push_str(&digits);
                i = j;
                continue;
            }
        }
        out.push(chars[i]);
        i += 1;
    }
    out
}
