//! Offline stand-in for the `serde` crate.
//!
//! This build environment has no access to crates.io, so the workspace ships
//! a minimal serialization framework under the same crate name. Instead of
//! serde's zero-copy visitor architecture, everything funnels through one
//! dynamic [`Value`] tree: `Serialize` renders a value into the tree and
//! `Deserialize` reconstructs a value from it. The derive macros
//! (re-exported from the sibling `serde_derive` stand-in) cover the shapes
//! this workspace uses — named-field structs, tuple structs, and externally
//! tagged enums with unit/newtype/tuple/struct variants — with the same JSON
//! representation as real serde, so `serde_json` files written by one are
//! readable by the other.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically typed serialization tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (numbers written without fraction or exponent).
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// The sole `(key, value)` entry of a single-entry object (externally
    /// tagged enum encoding).
    pub fn as_single_entry(&self) -> Option<(&str, &Value)> {
        match self.as_object() {
            Some([(k, v)]) => Some((k.as_str(), v)),
            _ => None,
        }
    }

    /// Numeric coercion to `f64` (integers widen losslessly).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(i) => Some(i as f64),
            Value::U64(u) => Some(u as f64),
            Value::F64(f) => Some(f),
            _ => None,
        }
    }

    /// Numeric coercion to `u64` (floats only when integral and in range).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(i) => u64::try_from(i).ok(),
            Value::U64(u) => Some(u),
            Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// Numeric coercion to `i64` (floats only when integral and in range).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(i) => Some(i),
            Value::U64(u) => i64::try_from(u).ok(),
            Value::F64(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// An error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error(message.into())
    }

    /// A type-mismatch error: `expected` while deserializing `context`.
    pub fn expected(expected: &str, context: &str) -> Self {
        Error(format!("expected {expected} while deserializing {context}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserializes one named struct field: a missing key is treated as `null`
/// (so `Option` fields default to `None`, as with real serde).
pub fn from_field<T: Deserialize>(
    entries: &[(String, Value)],
    key: &str,
    context: &str,
) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == key) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| Error(format!("field `{key}` of {context}: {e}")))
        }
        None => T::from_value(&Value::Null)
            .map_err(|_| Error(format!("missing field `{key}` of {context}"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other.kind())),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| {
                    Error::expected("unsigned integer", v.kind())
                })?;
                <$t>::try_from(u)
                    .map_err(|_| Error::custom(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| {
                    Error::expected("integer", v.kind())
                })?;
                <$t>::try_from(i)
                    .map_err(|_| Error::custom(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::expected("number", v.kind()))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other.kind())),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-character string", "char")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::expected("2-element array", other.kind())),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::expected("object", other.kind())),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::expected("object", other.kind())),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// Matches real serde's representation: `{"secs": u64, "nanos": u32}`.
impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            (
                "nanos".to_string(),
                Value::U64(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| Error::expected("duration object", v.kind()))?;
        let secs: u64 = from_field(entries, "secs", "Duration")?;
        let nanos: u32 = from_field(entries, "nanos", "Duration")?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_none_round_trips_through_null() {
        let v: Option<u32> = None;
        assert_eq!(v.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn missing_field_is_null_for_option() {
        let entries: Vec<(String, Value)> = vec![];
        let got: Option<u32> = from_field(&entries, "absent", "T").unwrap();
        assert_eq!(got, None);
        assert!(from_field::<u32>(&entries, "absent", "T").is_err());
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::I64(5).as_u64(), Some(5));
        assert_eq!(Value::F64(5.0).as_u64(), Some(5));
        assert_eq!(Value::F64(5.5).as_u64(), None);
        assert_eq!(Value::I64(-1).as_u64(), None);
        assert_eq!(Value::U64(7).as_f64(), Some(7.0));
    }

    #[test]
    fn single_entry_object() {
        let v = Value::Object(vec![("Tag".into(), Value::Null)]);
        assert_eq!(v.as_single_entry(), Some(("Tag", &Value::Null)));
        let two = Value::Object(vec![("a".into(), Value::Null), ("b".into(), Value::Null)]);
        assert_eq!(two.as_single_entry(), None);
    }
}
