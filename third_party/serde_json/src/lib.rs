//! Offline stand-in for `serde_json`.
//!
//! Serializes the sibling `serde` stand-in's [`Value`] tree to JSON text and
//! parses JSON text back into it. Numbers are emitted with Rust's `Display`,
//! which is shortest-round-trip for floats, so `f64` fields survive a
//! serialize/deserialize cycle exactly. Integral floats print without a
//! decimal point and parse back as integers; `Deserialize` impls coerce
//! through `Value::as_f64`, so typed round trips still compare equal.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error produced while parsing or converting JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as multi-line JSON indented with two spaces.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into any deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

/// Parses a JSON string into a dynamically typed [`Value`].
pub fn from_str_value(text: &str) -> Result<Value, Error> {
    parse_value(text)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        let text = x.to_string();
        out.push_str(&text);
        // Match real serde_json: integral floats keep a trailing `.0` so
        // they parse back as floats, not integers (f64 `Display` never uses
        // exponent notation).
        if !text.contains('.') {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Infinity; match serde_json by emitting null.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            b't' => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            b'f' => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: require a following \uXXXX low half.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00));
                                    s.push(
                                        char::from_u32(combined)
                                            .ok_or_else(|| Error::new("bad surrogate pair"))?,
                                    );
                                } else {
                                    return Err(Error::new("lone surrogate in string"));
                                }
                            } else {
                                s.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::new("bad \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 character (input is a &str, so this
                    // char boundary logic is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let text = std::str::from_utf8(chunk).map_err(|_| Error::new("bad \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "42", "-7", "3.25", "\"hi\""] {
            let v = from_str_value(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn float_round_trip_is_exact() {
        let x = 0.1234567890123_f64;
        let text = to_string(&x).unwrap();
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(x, back);
    }

    #[test]
    fn integral_float_keeps_float_syntax() {
        let x = 80.0_f64;
        let text = to_string(&x).unwrap();
        assert_eq!(text, "80.0");
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(x, back);
        assert_eq!(from_str_value(&text).unwrap(), Value::F64(80.0));
    }

    #[test]
    fn nested_structures() {
        let text = r#"{"a": [1, 2.5, "x"], "b": {"c": null}}"#;
        let v = from_str_value(text).unwrap();
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, r#"{"a":[1,2.5,"x"],"b":{"c":null}}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n"));
        assert_eq!(from_str_value(&pretty).unwrap(), v);
    }

    #[test]
    fn string_escapes() {
        let s = "line\nquote\"tab\tbs\\u\u{1F600}";
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str_value("1 2").is_err());
        assert!(from_str_value("{\"a\":}").is_err());
    }
}
