//! Offline stand-in for `rand`.
//!
//! Provides the subset of the rand 0.8 API this workspace uses: the
//! [`RngCore`] / [`Rng`] / [`SeedableRng`] traits, uniform sampling over
//! ranges via [`Rng::gen_range`], [`Rng::gen`] for primitive types, and
//! [`Rng::gen_bool`]. The generator streams are high-quality (the sibling
//! `rand_chacha` stand-in implements real ChaCha8) but are **not**
//! bit-identical to the upstream crates; workspace tests assert statistical
//! properties and determinism for a fixed seed, not golden values.

pub mod rngs {
    pub use crate::small::SmallRng;
}

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a standard-distribution type: floats uniform in
    /// `[0, 1)`, integers uniform over their full range, `bool` fair.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Converts a `u64` to an `f64` uniform in `[0, 1)` using the top 53 bits.
pub(crate) fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // Top 24 bits, matching the precision of the real crate.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` via Lemire-style widening multiply with a
/// rejection step to remove modulo bias.
fn uniform_u128<R: RngCore>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // span always fits in u64 ranges used here (span <= 2^64).
    if span > u64::MAX as u128 {
        // Only reachable for full-width u64 ranges; fall back to raw draw.
        return rng.next_u64() as u128;
    }
    let span = span as u64;
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let x = rng.next_u64();
        if x <= zone {
            return (x % span) as u128;
        }
    }
}

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                start + (end - start) * u
            }
        }
    )*};
}

float_sample_range!(f32, f64);

mod small {
    use super::{RngCore, SeedableRng};

    /// Small fast generator (xorshift*-based stand-in for rand's SmallRng).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 of the seed avoids the zero-state trap.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            SmallRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64* (Vigna); passes BigCrush on the high bits.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let n = rng.gen_range(3..10);
            assert!((3..10).contains(&n));
            let m = rng.gen_range(0..=5usize);
            assert!(m <= 5);
            let x = rng.gen_range(-0.5..=0.5f64);
            assert!((-0.5..=0.5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn deterministic_for_seed() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}
