//! Fig. 1(a): accuracy and throughput (FPS) versus pruning rate for
//! CNVW2A2 on CIFAR-10 over FINN-style fixed accelerators.
//!
//! The paper's figure shows accuracy falling and FPS rising as the pruning
//! rate sweeps 0–85 %. Run with:
//!
//! ```text
//! cargo run --release -p adaflow-bench --bin fig1a
//! ```

use adaflow_bench::{header, row, Combo};
use adaflow_model::QuantSpec;
use adaflow_nn::DatasetKind;

fn main() {
    let combo = Combo {
        dataset: DatasetKind::Cifar10,
        quant: QuantSpec::w2a2(),
    };
    println!(
        "Figure 1(a) — Accuracy and FPS vs. pruning rate ({})",
        combo.label()
    );
    println!();
    let library = combo.build_library();
    println!(
        "{}",
        header(&[
            "pruning rate (%)",
            "achieved (%)",
            "accuracy (%)",
            "FPS (fixed)",
            "MACs (M)"
        ])
    );
    for entry in library.entries() {
        println!(
            "{}",
            row(&[
                format!("{:.0}", entry.requested_rate * 100.0),
                format!("{:.1}", entry.achieved_rate * 100.0),
                format!("{:.2}", entry.accuracy),
                format!("{:.0}", entry.fixed.throughput_fps),
                format!("{:.1}", entry.macs as f64 / 1e6),
            ])
        );
    }
    let first = library.unpruned();
    let last = library.entries().last().expect("nonempty library");
    println!();
    println!(
        "Shape check: accuracy {:.1}% -> {:.1}% while FPS {:.0} -> {:.0} ({}x)",
        first.accuracy,
        last.accuracy,
        first.fixed.throughput_fps,
        last.fixed.throughput_fps,
        (last.fixed.throughput_fps / first.fixed.throughput_fps).round()
    );
}
