//! Fig. 5(b,c): accuracy versus energy per inference for CNVW2A2 on
//! CIFAR-10 (b) and GTSRB (c), for Fixed- and Flexible-Pruning accelerators
//! across the pruning sweep.
//!
//! The paper highlights the 25 % operating point: 1.38× lower energy on the
//! flexible accelerator (1.64× on fixed) at a 9.9 % accuracy loss versus
//! original FINN.
//!
//! ```text
//! cargo run --release -p adaflow-bench --bin fig5bc
//! ```

use adaflow_bench::{header, row, Combo};
use adaflow_model::QuantSpec;
use adaflow_nn::DatasetKind;

fn main() {
    for (figure, dataset) in [("5(b)", DatasetKind::Cifar10), ("5(c)", DatasetKind::Gtsrb)] {
        let combo = Combo {
            dataset,
            quant: QuantSpec::w2a2(),
        };
        println!(
            "Figure {figure} — accuracy vs energy/inference ({})",
            combo.label()
        );
        println!();
        let library = combo.build_library();
        let baseline = &library.baseline;
        let base_energy_mj = baseline
            .power
            .energy_per_inference_j(baseline.throughput_fps, 1.0)
            * 1e3;

        println!(
            "{}",
            header(&[
                "pruning (%)",
                "accuracy (%)",
                "fixed E/inf (mJ)",
                "fixed vs FINN",
                "flex E/inf (mJ)",
                "flex vs FINN",
            ])
        );
        for entry in library.entries() {
            let fixed_mj = entry
                .fixed
                .power
                .energy_per_inference_j(entry.fixed.throughput_fps, 1.0)
                * 1e3;
            let flex_mj = library
                .flexible
                .power
                .energy_per_inference_j(entry.flexible_fps, entry.flexible_activity)
                * 1e3;
            println!(
                "{}",
                row(&[
                    format!("{:.0}", entry.requested_rate * 100.0),
                    format!("{:.2}", entry.accuracy),
                    format!("{fixed_mj:.3}"),
                    format!("{:.2}x", base_energy_mj / fixed_mj),
                    format!("{flex_mj:.3}"),
                    format!("{:.2}x", base_energy_mj / flex_mj),
                ])
            );
        }

        let p25 = &library.entries()[5];
        let fixed_mj = p25
            .fixed
            .power
            .energy_per_inference_j(p25.fixed.throughput_fps, 1.0)
            * 1e3;
        let flex_mj = library
            .flexible
            .power
            .energy_per_inference_j(p25.flexible_fps, p25.flexible_activity)
            * 1e3;
        println!();
        println!(
            "Shape check @25%: accuracy loss {:.1} pts (paper 9.9); fixed energy {:.2}x \
             lower (paper 1.64x); flexible {:.2}x lower (paper 1.38x); FINN = {:.3} mJ",
            library.base_accuracy() - p25.accuracy,
            base_energy_mj / fixed_mj,
            base_energy_mj / flex_mj,
            base_energy_mj
        );
        println!();
    }
}
