//! Fig. 6(a,b): frame-loss and QoE traces over the 25-second run for
//! CNVW2A2/CIFAR-10 under Scenarios 1, 2 and 1+2, with AdaFlow's model
//! switches and the change of dataflow (fabric) annotated.
//!
//! ```text
//! cargo run --release -p adaflow-bench --bin fig6
//! ```

use adaflow::RuntimeConfig;
use adaflow_bench::Combo;
use adaflow_edge::{
    trace_to_csv, AdaFlowPolicy, Experiment, OriginalFinnPolicy, Scenario, WorkloadSpec,
};
use adaflow_model::QuantSpec;
use adaflow_nn::DatasetKind;

fn main() {
    let combo = Combo {
        dataset: DatasetKind::Cifar10,
        quant: QuantSpec::w2a2(),
    };
    println!(
        "Figure 6 — frame loss (a) and QoE (b) traces ({})",
        combo.label()
    );
    let library = combo.build_library();

    for scenario in [
        Scenario::Stable,
        Scenario::Unpredictable,
        Scenario::Shifting,
    ] {
        println!();
        println!("=== {} ===", scenario.name());
        let experiment = Experiment::new(&library, WorkloadSpec::paper_edge(scenario));
        let lib = &library;
        let config = RuntimeConfig::default();
        let (ada_metrics, ada_trace) =
            experiment.trace_with(1, move || Box::new(AdaFlowPolicy::new(lib, config)));
        let (finn_metrics, finn_trace) =
            experiment.trace_with(1, move || Box::new(OriginalFinnPolicy::new(lib)));

        // Model-switch annotations: points where the serving model changes.
        println!("AdaFlow events:");
        let mut prev_model = String::new();
        let mut prev_accel = String::new();
        for p in &ada_trace {
            if p.model != prev_model || p.accelerator != prev_accel {
                if !prev_accel.is_empty() && p.accelerator != prev_accel {
                    println!(
                        "  t={:5.2}s  CHANGE OF DATAFLOW -> {}",
                        p.t_s, p.accelerator
                    );
                }
                if p.model != prev_model {
                    println!(
                        "  t={:5.2}s  switch -> {} ({})",
                        p.t_s, p.model, p.accelerator
                    );
                }
                prev_model.clone_from(&p.model);
                prev_accel.clone_from(&p.accelerator);
            }
        }

        println!();
        println!("t(s)   loss% AdaFlow  loss% FINN   QoE AdaFlow  QoE FINN");
        for i in (0..ada_trace.len()).step_by(100) {
            let a = &ada_trace[i];
            let f = &finn_trace[i];
            println!(
                "{:5.1}  {:12.2}  {:10.2}  {:11.2}  {:8.2}",
                a.t_s,
                a.cumulative_loss_pct,
                f.cumulative_loss_pct,
                a.cumulative_qoe_pct,
                f.cumulative_qoe_pct
            );
        }
        // Persist the curves for external plotting.
        let dir = std::path::Path::new("artifacts");
        if dir.is_dir() {
            let stem = scenario.name().replace('+', "-");
            let _ = std::fs::write(
                dir.join(format!("fig6_{stem}_adaflow.csv")),
                trace_to_csv(&ada_trace),
            );
            let _ = std::fs::write(
                dir.join(format!("fig6_{stem}_finn.csv")),
                trace_to_csv(&finn_trace),
            );
        }
        println!();
        println!(
            "Run summary: AdaFlow loss {:.2}% / QoE {:.2} / switches {:.0} \
             (reconf {:.0}, flexible {:.0}); FINN loss {:.2}% / QoE {:.2}",
            ada_metrics.frame_loss_pct,
            ada_metrics.qoe_pct,
            ada_metrics.model_switches,
            ada_metrics.reconfigurations,
            ada_metrics.flexible_switches,
            finn_metrics.frame_loss_pct,
            finn_metrics.qoe_pct
        );
    }
}
