//! Table I: frame loss, QoE, power and power efficiency for AdaFlow and
//! Original FINN over the full 25-second run, for all four dataset/CNN
//! combinations under Scenarios 1 and 2 (averaged over seeded runs).
//!
//! ```text
//! cargo run --release -p adaflow-bench --bin table1 [--runs N]
//! ```

use adaflow::RuntimeConfig;
use adaflow_bench::{header, row, runs_from_args, Combo};
use adaflow_edge::{Experiment, Scenario, WorkloadSpec};

fn main() {
    let runs = runs_from_args();
    println!("Table I — frame loss, QoE, power, power efficiency ({runs} runs per cell)");
    println!();
    println!(
        "{}",
        header(&[
            "Dataset / Model",
            "Scen.",
            "AdaFlow loss (%)",
            "FINN loss (%)",
            "AdaFlow QoE (%)",
            "FINN QoE (%)",
            "AdaFlow P (W)",
            "FINN P (W)",
            "Power eff. w.r.t. FINN",
        ])
    );

    let mut eff_ratios = Vec::new();
    let mut processed_ratios = Vec::new();
    let mut max_drop = 0.0f64;
    for combo in Combo::all() {
        let library = combo.build_library();
        for (scenario, label) in [(Scenario::Stable, "1"), (Scenario::Unpredictable, "2")] {
            let experiment =
                Experiment::new(&library, WorkloadSpec::paper_edge(scenario)).runs(runs);
            let ada = experiment.run_adaflow(RuntimeConfig::default());
            let finn = experiment.run_original_finn();
            let eff = ada.inferences_per_joule / finn.inferences_per_joule;
            eff_ratios.push(eff);
            processed_ratios.push(ada.processed / finn.processed);
            max_drop = max_drop.max(ada.max_accuracy_drop);
            println!(
                "{}",
                row(&[
                    combo.label(),
                    label.to_string(),
                    format!("{:.2}", ada.frame_loss_pct),
                    format!("{:.2}", finn.frame_loss_pct),
                    format!("{:.2}", ada.qoe_pct),
                    format!("{:.2}", finn.qoe_pct),
                    format!("{:.2}", ada.avg_power_w),
                    format!("{:.2}", finn.avg_power_w),
                    format!("{eff:.2}x"),
                ])
            );
        }
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!();
    println!(
        "Headline checks: mean power efficiency {:.2}x (paper: 1.27-1.4x avg); \
         mean processed-inference ratio {:.2}x (paper: ~1.3x); \
         max accuracy drop {:.1} pts (paper: 7.07 max / 4.6 avg)",
        mean(&eff_ratios),
        mean(&processed_ratios),
        max_drop
    );
}
