//! Fig. 5(a): FPGA resource usage (LUT, FF, BRAM, DSP) for the original
//! FINN accelerator, AdaFlow's Flexible-Pruning accelerator, and the
//! Fixed-Pruning accelerators across the pruning sweep — CNVW2A2/CIFAR-10
//! on the ZCU104.
//!
//! ```text
//! cargo run --release -p adaflow-bench --bin fig5a
//! ```

use adaflow_bench::{header, row, Combo};
use adaflow_hls::FpgaDevice;
use adaflow_model::QuantSpec;
use adaflow_nn::DatasetKind;

fn main() {
    let combo = Combo {
        dataset: DatasetKind::Cifar10,
        quant: QuantSpec::w2a2(),
    };
    println!(
        "Figure 5(a) — FPGA resources: FINN vs Flexible vs Fixed ({})",
        combo.label()
    );
    println!();
    let library = combo.build_library();
    let dev = FpgaDevice::zcu104();
    let pct = |used: u64, cap: u64| format!("{:.1}", used as f64 / cap as f64 * 100.0);

    println!(
        "{}",
        header(&[
            "accelerator",
            "LUT",
            "LUT %",
            "FF",
            "BRAM36",
            "BRAM %",
            "DSP"
        ])
    );
    let baseline = &library.baseline;
    println!(
        "{}",
        row(&[
            "Original FINN".into(),
            baseline.resources.lut.to_string(),
            pct(baseline.resources.lut, dev.lut),
            baseline.resources.ff.to_string(),
            baseline.resources.bram36.to_string(),
            pct(baseline.resources.bram36, dev.bram36),
            baseline.resources.dsp.to_string(),
        ])
    );
    let flexible = &library.flexible;
    println!(
        "{}",
        row(&[
            "Flexible-Pruning".into(),
            flexible.resources.lut.to_string(),
            pct(flexible.resources.lut, dev.lut),
            flexible.resources.ff.to_string(),
            flexible.resources.bram36.to_string(),
            pct(flexible.resources.bram36, dev.bram36),
            flexible.resources.dsp.to_string(),
        ])
    );
    for entry in library.entries() {
        println!(
            "{}",
            row(&[
                format!("Fixed-Pruning {:.0}%", entry.requested_rate * 100.0),
                entry.fixed.resources.lut.to_string(),
                pct(entry.fixed.resources.lut, dev.lut),
                entry.fixed.resources.ff.to_string(),
                entry.fixed.resources.bram36.to_string(),
                pct(entry.fixed.resources.bram36, dev.bram36),
                entry.fixed.resources.dsp.to_string(),
            ])
        );
    }

    println!();
    let lut_ratio = flexible.resources.lut as f64 / baseline.resources.lut as f64;
    let p05 = &library.entries()[1].fixed.resources;
    let p85 = &library.entries()[17].fixed.resources;
    println!(
        "Shape checks: Flexible/FINN LUT ratio = {:.2}x (paper: 1.92x); \
         Fixed LUT reduction {:.1}% @5% .. {:.1}% @85% (paper: 1.5% .. 46.2%); \
         Flexible BRAM delta = {} (paper: none)",
        lut_ratio,
        (1.0 - p05.lut as f64 / baseline.resources.lut as f64) * 100.0,
        (1.0 - p85.lut as f64 / baseline.resources.lut as f64) * 100.0,
        flexible.resources.bram36 as i64 - baseline.resources.bram36 as i64,
    );
}
