//! Ablation studies on AdaFlow's user-tunable design parameters, beyond the
//! paper's fixed evaluation point (threshold 10 %, criterion 10×, full
//! reconfiguration):
//!
//! 1. **Accuracy threshold** — the paper notes "for applications that
//!    tolerate accuracy thresholds larger than the one in use (10%), larger
//!    performance and efficiency gains are expected". Verified here.
//! 2. **Switch-interval criterion** — the fixed-vs-flexible rule's knob
//!    ("can be fine-tuned depending on the application and FPGA at hand").
//! 3. **Frame buffer size** — serving-stack parameter of the Edge server.
//! 4. **Partial reconfiguration** — an extension (paper ref. 16): shrink
//!    the reconfigurable region and watch fixed-accelerator switching get
//!    competitive with the flexible fabric.
//!
//! ```text
//! cargo run --release -p adaflow-bench --bin ablations [--runs N]
//! ```

use adaflow::{RuntimeConfig, RuntimeManager};
use adaflow_bench::{header, row, runs_from_args, Combo};
use adaflow_edge::{Experiment, Scenario, SimConfig, WorkloadSpec};
use adaflow_hls::ReconfigurationModel;
use adaflow_model::QuantSpec;
use adaflow_nn::DatasetKind;

fn main() {
    let runs = runs_from_args().min(50);
    let combo = Combo {
        dataset: DatasetKind::Cifar10,
        quant: QuantSpec::w2a2(),
    };
    let library = combo.build_library();
    println!("Ablations on {} ({runs} runs per point)\n", combo.label());

    // 1. Accuracy threshold sweep (Scenario 2: adaptation matters most).
    println!("## Accuracy threshold (Scenario 2)");
    println!(
        "{}",
        header(&[
            "threshold (pts)",
            "frame loss (%)",
            "QoE (%)",
            "mean acc (%)",
            "eff (inf/J)"
        ])
    );
    let experiment =
        Experiment::new(&library, WorkloadSpec::paper_edge(Scenario::Unpredictable)).runs(runs);
    for threshold in [0.0, 2.0, 5.0, 10.0, 15.0, 25.0, 40.0] {
        let config = RuntimeConfig {
            accuracy_threshold_points: threshold,
            ..RuntimeConfig::default()
        };
        let m = experiment.run_adaflow(config);
        println!(
            "{}",
            row(&[
                format!("{threshold:.0}"),
                format!("{:.2}", m.frame_loss_pct),
                format!("{:.2}", m.qoe_pct),
                format!("{:.2}", m.mean_accuracy_pct),
                format!("{:.0}", m.inferences_per_joule),
            ])
        );
    }
    println!();

    // 2. Switch-interval criterion sweep (Scenario 1+2: governs the fabric
    //    transition).
    println!("## Switch-interval criterion (Scenario 1+2)");
    println!(
        "{}",
        header(&[
            "criterion (x reconf)",
            "loss (%)",
            "reconfigs",
            "flexible switches",
            "power (W)"
        ])
    );
    let shifting =
        Experiment::new(&library, WorkloadSpec::paper_edge(Scenario::Shifting)).runs(runs);
    for multiple in [1.0, 3.0, 10.0, 30.0, 100.0] {
        let config = RuntimeConfig {
            switch_interval_multiple: multiple,
            ..RuntimeConfig::default()
        };
        let m = shifting.run_adaflow(config);
        println!(
            "{}",
            row(&[
                format!("{multiple:.0}x"),
                format!("{:.2}", m.frame_loss_pct),
                format!("{:.1}", m.reconfigurations),
                format!("{:.1}", m.flexible_switches),
                format!("{:.2}", m.avg_power_w),
            ])
        );
    }
    println!();

    // 3. Frame buffer size (Scenario 2).
    println!("## Frame buffer capacity (Scenario 2)");
    println!("{}", header(&["buffer (frames)", "loss (%)", "QoE (%)"]));
    for buffer in [8.0, 32.0, 64.0, 256.0, 1024.0] {
        let m = Experiment::new(&library, WorkloadSpec::paper_edge(Scenario::Unpredictable))
            .runs(runs)
            .sim_config(SimConfig {
                buffer_frames: buffer,
                ..SimConfig::default()
            })
            .run_adaflow(RuntimeConfig::default());
        println!(
            "{}",
            row(&[
                format!("{buffer:.0}"),
                format!("{:.2}", m.frame_loss_pct),
                format!("{:.2}", m.qoe_pct),
            ])
        );
    }
    println!();

    // 3b. Bursty on/off traffic (cameras waking on motion events): the
    //     hardest adaptation case — full-surge to near-idle transitions.
    println!("## Bursty traffic (surge +50%, idle 20%, 2.5 s phases)");
    println!(
        "{}",
        header(&["policy", "loss (%)", "QoE (%)", "switches", "power (W)"])
    );
    let bursty = Experiment::new(
        &library,
        WorkloadSpec {
            scenario: Scenario::Bursty {
                surge: 0.5,
                idle: 0.2,
                period_s: 2.5,
            },
            ..WorkloadSpec::paper_edge(Scenario::Stable)
        },
    )
    .runs(runs);
    let ada = bursty.run_adaflow(RuntimeConfig::default());
    let finn = bursty.run_original_finn();
    for (name, m) in [("adaflow", &ada), ("original-finn", &finn)] {
        println!(
            "{}",
            row(&[
                name.to_string(),
                format!("{:.2}", m.frame_loss_pct),
                format!("{:.2}", m.qoe_pct),
                format!("{:.1}", m.model_switches),
                format!("{:.2}", m.avg_power_w),
            ])
        );
    }
    println!();

    // 4. Partial reconfiguration (Scenario 2): smaller regions shrink the
    //    criterion (10 x reconfig time) and the per-switch stall, shifting
    //    the fixed/flexible balance.
    println!("## Partial reconfiguration region (Scenario 2)");
    println!(
        "{}",
        header(&[
            "region",
            "reconf time (ms)",
            "criterion (s)",
            "loss (%)",
            "reconfigs",
            "flex switches"
        ])
    );
    for fraction in [1.0, 0.5, 0.25, 0.1] {
        let reconfig = ReconfigurationModel::partial(fraction);
        let config = RuntimeConfig {
            reconfig,
            ..RuntimeConfig::default()
        };
        let manager = RuntimeManager::new(&library, config.clone());
        let criterion = manager.switch_criterion_s();
        let t_ms = reconfig
            .reconfiguration_time(&library.baseline.bitstream)
            .as_secs_f64()
            * 1e3;
        let m = experiment.run_adaflow(config);
        println!(
            "{}",
            row(&[
                format!("{:.0}%", fraction * 100.0),
                format!("{t_ms:.0}"),
                format!("{criterion:.2}"),
                format!("{:.2}", m.frame_loss_pct),
                format!("{:.1}", m.reconfigurations),
                format!("{:.1}", m.flexible_switches),
            ])
        );
    }
}
