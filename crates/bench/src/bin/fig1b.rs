//! Fig. 1(b): Edge server workload and frame loss for the "No Pruning"
//! baseline and "Pruning Reconf." servers switching models via FPGA
//! reconfigurations of varied times (0, 72, 145*, 290, 362 ms; * = the
//! original CNVW2A2 FINN reconfiguration time on a ZCU104).
//!
//! The motivation experiment: model switching is mandatory, but only pays
//! off when the switch is fast enough. Run with:
//!
//! ```text
//! cargo run --release -p adaflow-bench --bin fig1b [--runs N]
//! ```

use adaflow_bench::{header, row, runs_from_args, Combo};
use adaflow_edge::{Experiment, OriginalFinnPolicy, PruningReconfPolicy, Scenario, WorkloadSpec};
use adaflow_model::QuantSpec;
use adaflow_nn::DatasetKind;
use std::time::Duration;

fn main() {
    let runs = runs_from_args();
    let combo = Combo {
        dataset: DatasetKind::Cifar10,
        quant: QuantSpec::w2a2(),
    };
    println!(
        "Figure 1(b) — workload & frame loss vs. reconfiguration time ({}, {} runs)",
        combo.label(),
        runs
    );
    println!();
    let library = combo.build_library();
    // The figure's premise needs frequent switching: a touch more volatile
    // than Scenario 2 (the paper does not pin Fig. 1(b)'s exact workload),
    // so that slow reconfiguration (>= 290 ms) loses more frames than not
    // switching at all — the crossover the figure demonstrates.
    let mut spec = WorkloadSpec::paper_edge(Scenario::Unpredictable);
    spec.scenario = Scenario::Custom {
        deviation: 0.7,
        period_s: 0.35,
    };
    let experiment = Experiment::new(&library, spec.clone()).runs(runs);

    let finn = experiment.run_original_finn();
    println!(
        "{}",
        header(&["server", "frame loss (%)", "model switches", "processed"])
    );
    println!(
        "{}",
        row(&[
            "No Pruning (orig. FINN)".into(),
            format!("{:.2}", finn.frame_loss_pct),
            format!("{:.1}", finn.model_switches),
            format!("{:.0}", finn.processed),
        ])
    );
    for ms in [0u64, 72, 145, 290, 362] {
        let m = experiment.run_pruning_reconf(Duration::from_millis(ms));
        let star = if ms == 145 { "*" } else { "" };
        println!(
            "{}",
            row(&[
                format!("Pruning Reconf. {ms} ms{star}"),
                format!("{:.2}", m.frame_loss_pct),
                format!("{:.1}", m.model_switches),
                format!("{:.0}", m.processed),
            ])
        );
    }

    // Time series for the figure's curves (first seeded run).
    println!();
    println!(
        "Trace (seed 1, 1 s samples): t, workload, loss% [0ms], loss% [362ms], loss% [no-pruning]"
    );
    let lib = &library;
    let traces: Vec<Vec<adaflow_edge::TracePoint>> = vec![
        experiment
            .trace_with(1, move || {
                Box::new(PruningReconfPolicy::new(lib, Duration::ZERO))
            })
            .1,
        experiment
            .trace_with(1, move || {
                Box::new(PruningReconfPolicy::new(lib, Duration::from_millis(362)))
            })
            .1,
        experiment
            .trace_with(1, move || Box::new(OriginalFinnPolicy::new(lib)))
            .1,
    ];
    for i in (0..traces[0].len()).step_by(100) {
        let p = &traces[0][i];
        println!(
            "t={:5.1}s  workload={:6.1}  loss0={:5.2}%  loss362={:5.2}%  lossNP={:5.2}%",
            p.t_s,
            p.workload_fps,
            traces[0][i].cumulative_loss_pct,
            traces[1][i].cumulative_loss_pct,
            traces[2][i].cumulative_loss_pct,
        );
    }
}
