//! `adaflow_cli` — command-line front end to the framework.
//!
//! ```text
//! adaflow_cli summary  --model cnv-w2a2                     # per-layer model card
//! adaflow_cli generate --model cnv-w2a2 --dataset cifar10 \
//!                      --out library.json                   # design-time library
//! adaflow_cli inspect  --library library.json               # print the library table
//! adaflow_cli simulate --library library.json --scenario 2 \
//!                      --policy adaflow --runs 100          # serving experiment
//! adaflow_cli trace    --library library.json --scenario 2 \
//!                      --out run                            # traced single run
//! adaflow_cli explore  --model cnv-w2a2 --target-fps 600    # folding search
//! ```
//!
//! Run any subcommand with wrong/missing flags to get its usage line.

use adaflow::prelude::*;
use adaflow_edge::prelude::*;
use adaflow_hls::FpgaDevice;
use adaflow_model::prelude::*;
use adaflow_model::GraphSummary;
use adaflow_nn::DatasetKind;
use adaflow_telemetry::{
    chrome_trace_json, events_to_jsonl, to_prometheus, SinkHandle, TraceSummary,
};
use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        return Err(usage());
    };
    let flags = parse_flags(rest)?;
    match command.as_str() {
        "summary" => cmd_summary(&flags),
        "generate" => cmd_generate(&flags),
        "inspect" => cmd_inspect(&flags),
        "simulate" => cmd_simulate(&flags),
        "serve" => cmd_serve(&flags),
        "fleet" => cmd_fleet(&flags),
        "report" => cmd_report(&flags),
        "trace" => cmd_trace(&flags),
        "explore" => cmd_explore(&flags),
        "lint" => cmd_lint(&flags),
        "serve-live" => cmd_serve_live(&flags),
        "load" => cmd_load(&flags),
        "soak" => cmd_soak(&flags),
        "gateway" => cmd_gateway(&flags),
        "gateway-soak" => cmd_gateway_soak(&flags),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: adaflow_cli <command> [flags]\n\
     commands:\n\
     \x20 summary  --model <name>                  print the per-layer model card\n\
     \x20 generate --model <name> --dataset <d> [--rates a,b,..] [--out file]\n\
     \x20 inspect  --library <file>                print a generated library table\n\
     \x20 simulate --library <file> [--scenario 1|2|1+2] [--policy adaflow|finn|reconf:<ms>] [--runs N]\n\
     \x20 serve    --library <file> [--scenario 1|2|1+2] [--policy adaflow|fixed-max|flexible-only]\n\
     \x20          [--deadline-ms N] [--queue-cap N] [--shed block|oldest|newest] [--batch N]\n\
     \x20          [--batch-wait-ms N] [--seed N] [--runs N] [--format text|json] [--out prefix]\n\
     \x20          [--allow codes] [--deny codes] [--check 1]   request-level serving run\n\
     \x20 fleet    --library <file> [--scenario 1|2|1+2] [--fleet adaflow,fixed,flexible,..]\n\
     \x20          [--router rr|jsq|p2c|deadline] [--max-drains K] [--deadline-ms N] [--queue-cap N]\n\
     \x20          [--shed block|oldest|newest] [--batch N] [--batch-wait-ms N] [--seed N] [--runs N]\n\
     \x20          [--format text|json] [--out prefix] [--allow codes] [--deny codes] [--check 1]\n\
     \x20          multi-device fleet simulation behind a load-balancing router\n\
     \x20 report   [--mode serve|fleet] [--library <file>] [--scenario 1|2|1+2] [--seed N]\n\
     \x20          [--policy ...] [--fleet kinds] [--router r] [--top K] [--slo-target 0.97]\n\
     \x20          [--slo-objective deadline|latency] [--format text|json] [--out prefix] [--check 1]\n\
     \x20          per-stage latency waterfall, SLO error-budget burn and span-tree exports\n\
     \x20 trace    --library <file> [--scenario 1|2|1+2] [--policy ...] [--seed N] [--out prefix]\n\
     \x20          writes <prefix>.trace.json (Perfetto), <prefix>.jsonl, <prefix>.prom\n\
     \x20 explore  --model <name> [--target-fps F] [--cap 0.7]\n\
     \x20 lint     [--model <name>|all] [--rates a,b,..] [--fleet kinds] [--router r] [--deadline-ms N]\n\
     \x20          [--max-drains K] [--format text|json] [--allow codes] [--deny codes]\n\
     \x20          [--explain CODE|all]   static verification of graphs (AF/DF) and\n\
     \x20          fleet/serving configs (FL/SV); --explain prints a rule's catalog entry\n\
     \x20 serve-live --model <name> [--addr host:port] [--duration-s N] [--threads N]\n\
     \x20          [--metrics-port P] [--nominal-fps F] [--deadline-ms N] [--queue-cap N]\n\
     \x20          [--batch N] [--batch-wait-ms N] [--shed block|oldest|newest]\n\
     \x20          [--allow codes] [--deny codes] [--format text|json] [--out prefix]\n\
     \x20          real TCP serving over the live engine (verify-gated at startup)\n\
     \x20 load     --addr host:port --model <name> [--requests N | --rate-fps F --duration-s N]\n\
     \x20          [--connections N] [--deadline-ms N] [--seed N] [--format text|json]\n\
     \x20          seeded closed/open-loop load generator with reason-coded summary\n\
     \x20 soak     [--model <name>] [--rate-fps F] [--duration-s N] [--connections N]\n\
     \x20          [--min-hit-pct P] [--seed N]     in-process server + load soak with\n\
     \x20          hard floors (zero protocol errors, hit-rate, clean shutdown) — CI gate\n\
     \x20 gateway  --model <name> --backends h:p,h:p,.. [--addr host:port] [--router rr|jsq|p2c|deadline]\n\
     \x20          [--retry-budget N] [--warmup-iters N] [--duration-s N] [--seed N]\n\
     \x20          [--format text|json] [--out prefix]  live routing tier over running\n\
     \x20          serve-live backends (verify-gated at startup)\n\
     \x20 gateway-soak [--model <name>] [--backends N] [--router r] [--rate-fps F] [--duration-s N]\n\
     \x20          [--connections N] [--min-hit-pct P] [--failover 1] [--hetero 1]\n\
     \x20          [--load-deadline-ms N] [--seed N]\n\
     \x20          in-process backends + gateway + open-loop load with hard floors; --failover 1\n\
     \x20          kills backend 0 at t/3, restarts it at 2t/3, and requires ejection+readmission\n\
     models: cnv-w2a2, cnv-w1a2, lenet-w2a2, lenet-w1a2, tiny-w2a2; datasets: cifar10, gtsrb"
        .to_string()
}

/// Parses `--key value` pairs.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected a --flag, found `{key}`"));
        };
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn required<'f>(flags: &'f HashMap<String, String>, name: &str) -> Result<&'f str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing --{name}\n{}", usage()))
}

fn build_model(name: &str, dataset: Option<DatasetKind>) -> Result<CnnGraph, String> {
    let classes = dataset.map_or(10, |d| d.classes());
    let graph = match name {
        "cnv-w2a2" => topology::cnv(QuantSpec::w2a2(), classes).build(),
        "cnv-w1a2" => topology::cnv(QuantSpec::w1a2(), classes).build(),
        "lenet-w2a2" => topology::lenet(QuantSpec::w2a2(), classes),
        "lenet-w1a2" => topology::lenet(QuantSpec::w1a2(), classes),
        "tiny-w2a2" => topology::tiny(QuantSpec::w2a2(), classes.min(10)),
        other => return Err(format!("unknown model `{other}`")),
    };
    graph.map_err(|e| e.to_string())
}

fn parse_dataset(name: &str) -> Result<DatasetKind, String> {
    match name {
        "cifar10" => Ok(DatasetKind::Cifar10),
        "gtsrb" => Ok(DatasetKind::Gtsrb),
        other => Err(format!("unknown dataset `{other}` (cifar10 | gtsrb)")),
    }
}

fn parse_scenario(name: &str) -> Result<Scenario, String> {
    match name {
        "1" => Ok(Scenario::Stable),
        "2" => Ok(Scenario::Unpredictable),
        "1+2" => Ok(Scenario::Shifting),
        other => Err(format!("unknown scenario `{other}` (1 | 2 | 1+2)")),
    }
}

fn cmd_summary(flags: &HashMap<String, String>) -> Result<(), String> {
    let graph = build_model(required(flags, "model")?, None)?;
    print!("{}", GraphSummary::of(&graph));
    println!();
    println!("packed kernel eligibility (popcount MVTU path):");
    for d in mvtu_domains(&graph) {
        match &d.fallback {
            None => println!(
                "  {:<10} packed   W{} x {}-plane activations over fan-in {}",
                d.name, d.weight_bits, d.act_in_planes, d.fan_in
            ),
            Some(fb) => println!("  {:<10} gemm     {fb}", d.name),
        }
    }
    Ok(())
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let dataset = parse_dataset(required(flags, "dataset")?)?;
    let graph = build_model(required(flags, "model")?, Some(dataset))?;
    let mut generator = LibraryGenerator::default_edge_setup();
    if let Some(rates) = flags.get("rates") {
        generator.pruning_rates = rates
            .split(',')
            .map(|r| {
                r.trim()
                    .parse::<f64>()
                    .map_err(|e| format!("bad rate `{r}`: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
    }
    let library = generator
        .generate(&graph, dataset)
        .map_err(|e| e.to_string())?;
    println!(
        "generated {} models for {} on {} (baseline {:.0} FPS)",
        library.entries().len(),
        library.initial_model,
        library.device,
        library.baseline.throughput_fps
    );
    if let Some(path) = flags.get("out") {
        let json = library.to_json().map_err(|e| e.to_string())?;
        std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
        println!("library table written to {path} ({} bytes)", json.len());
    }
    Ok(())
}

fn load_library(flags: &HashMap<String, String>) -> Result<Library, String> {
    let path = required(flags, "library")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Library::from_json(&json).map_err(|e| e.to_string())
}

fn cmd_inspect(flags: &HashMap<String, String>) -> Result<(), String> {
    let library = load_library(flags)?;
    println!(
        "{} on {} — {} models, flexible fabric {} LUT / {} BRAM36",
        library.initial_model,
        library.device,
        library.entries().len(),
        library.flexible.resources.lut,
        library.flexible.resources.bram36
    );
    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>10} {:>8}",
        "rate%", "achieved%", "accuracy", "FPS", "LUT", "BRAM"
    );
    for e in library.entries() {
        println!(
            "{:>6.0} {:>9.1} {:>9.2} {:>9.0} {:>10} {:>8}",
            e.requested_rate * 100.0,
            e.achieved_rate * 100.0,
            e.accuracy,
            e.fixed.throughput_fps,
            e.fixed.resources.lut,
            e.fixed.resources.bram36
        );
    }
    Ok(())
}

fn cmd_simulate(flags: &HashMap<String, String>) -> Result<(), String> {
    let library = load_library(flags)?;
    let scenario = parse_scenario(flags.get("scenario").map_or("2", String::as_str))?;
    let runs: usize = flags.get("runs").map_or(Ok(100), |r| {
        r.parse().map_err(|e| format!("bad --runs: {e}"))
    })?;
    let policy = flags.get("policy").map_or("adaflow", String::as_str);
    let experiment = Experiment::new(&library, WorkloadSpec::paper_edge(scenario)).runs(runs);
    let metrics = match policy {
        "adaflow" => experiment.run_adaflow(RuntimeConfig::default()),
        "finn" => experiment.run_original_finn(),
        other => match other.strip_prefix("reconf:") {
            Some(ms) => {
                let ms: u64 = ms.parse().map_err(|e| format!("bad reconf time: {e}"))?;
                experiment.run_pruning_reconf(Duration::from_millis(ms))
            }
            None => return Err(format!("unknown policy `{other}`")),
        },
    };
    println!(
        "{policy} under {} ({runs} runs): loss {:.2}%  QoE {:.2}  power {:.2} W  \
         {:.0} inf/J  switches {:.1} (reconf {:.1}, flexible {:.1})  latency {:.1} ms",
        scenario.name(),
        metrics.frame_loss_pct,
        metrics.qoe_pct,
        metrics.avg_power_w,
        metrics.inferences_per_joule,
        metrics.model_switches,
        metrics.reconfigurations,
        metrics.flexible_switches,
        metrics.mean_latency_ms
    );
    Ok(())
}

/// Builds a pressure-driven request-level policy by name. `deadline_s`
/// arms the AdaFlow policy's deadline-aware reconfiguration guard.
fn build_serve_policy<'l>(
    name: &str,
    library: &'l Library,
    deadline_s: f64,
) -> Result<Box<dyn adaflow_serve::ServePolicy + 'l>, String> {
    use adaflow_serve::{AdaFlowServePolicy, FixedMaxPolicy, FlexibleOnlyPolicy};
    match name {
        "adaflow" => Ok(Box::new(
            AdaFlowServePolicy::new(library, RuntimeConfig::default()).with_deadline(deadline_s),
        )),
        "fixed-max" => Ok(Box::new(FixedMaxPolicy::new(library))),
        "flexible-only" => Ok(Box::new(FlexibleOnlyPolicy::new(
            library,
            RuntimeConfig::default(),
        ))),
        other => Err(format!(
            "unknown serve policy `{other}` (adaflow | fixed-max | flexible-only)"
        )),
    }
}

/// Worst-case service stall the named policy can cause — the backlog bound
/// fed to the SV002 queue-capacity rule.
fn worst_policy_stall_s(policy: &str, library: &Library) -> f64 {
    match policy {
        "fixed-max" => 0.0,
        "flexible-only" => {
            adaflow_serve::FlexibleOnlyPolicy::new(library, RuntimeConfig::default())
                .worst_stall_s()
        }
        _ => RuntimeConfig::default()
            .reconfig
            .reconfiguration_time(&library.baseline.bitstream)
            .as_secs_f64(),
    }
}

/// Request-level serving: deadline accounting, admission control and
/// dynamic batching over the paper's workload scenarios.
fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    use adaflow_serve::ServeExperiment;
    use adaflow_telemetry::Event;
    use adaflow_verify::Severity;

    let library = load_library(flags)?;
    let scenario = parse_scenario(flags.get("scenario").map_or("2", String::as_str))?;
    let policy_name = flags.get("policy").map_or("adaflow", String::as_str);
    build_serve_policy(policy_name, &library, 0.25)?; // validate the name early
    let seed: u64 = flags
        .get("seed")
        .map_or(Ok(1), |s| s.parse().map_err(|e| format!("bad --seed: {e}")))?;
    let runs: usize = flags
        .get("runs")
        .map_or(Ok(1), |r| r.parse().map_err(|e| format!("bad --runs: {e}")))?;
    let shed_name = flags.get("shed").map_or("block", String::as_str);
    let format = flags.get("format").map_or("text", String::as_str);
    if !matches!(format, "text" | "json") {
        return Err(format!("unknown --format `{format}` (text | json)"));
    }
    let check = flags.get("check").is_some_and(|v| v == "1");

    let config = parse_serve_knobs(flags)?;
    let deadline_ms = config.deadline_s * 1e3;
    let spec = WorkloadSpec::paper_edge(scenario);

    // Static SV001/SV002 validation through the shared lint machinery.
    let lint = parse_lint_flags(flags);
    let report = config.validate(
        spec.nominal_fps(),
        worst_policy_stall_s(policy_name, &library),
        lint,
    );
    if format == "text" && report.count(Severity::Warn) + report.count(Severity::Error) > 0 {
        print!("{report}");
    }
    if report.has_errors() {
        return Err("serve configuration failed SV lint (see findings above)".to_string());
    }

    let experiment = ServeExperiment::new(&library, spec)
        .runs(runs.max(1))
        .seed(seed)
        .config(config.clone());
    let execute = || -> (adaflow_serve::ServeSummary, Vec<Event>) {
        if runs <= 1 {
            let (sink, recorder) = SinkHandle::recorder(1 << 18);
            let summary = experiment.run_traced(seed, sink, || {
                build_serve_policy(policy_name, &library, config.deadline_s)
                    .expect("name validated above")
            });
            (summary, recorder.drain())
        } else {
            let summary = experiment.run_with(|| {
                build_serve_policy(policy_name, &library, config.deadline_s)
                    .expect("name validated")
            });
            (summary, Vec::new())
        }
    };
    let (summary, events) = execute();
    if !summary.conservation_holds() {
        return Err(format!(
            "request conservation violated: arrived {} != completed {} + shed {}",
            summary.arrived, summary.completed, summary.shed
        ));
    }
    if check {
        let (summary2, events2) = execute();
        if summary != summary2 || events != events2 {
            return Err("determinism check failed: repeated run diverged".to_string());
        }
    }

    if format == "json" {
        let json = serde_json::to_string(&summary).map_err(|e| e.to_string())?;
        println!(
            "{{\"summary\":{json},\"runs\":{},\"events\":{}}}",
            runs.max(1),
            events.len()
        );
    } else {
        println!(
            "{policy_name} under {} (seed {seed}, {} run{}): {:.0} requests",
            scenario.name(),
            runs.max(1),
            if runs.max(1) == 1 { "" } else { "s" },
            summary.arrived
        );
        println!(
            "  deadline: {:.2}% hits within {deadline_ms:.0} ms \
             (latency p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms, mean {:.1} ms)",
            summary.deadline_hit_pct,
            summary.latency_p50_s * 1e3,
            summary.latency_p95_s * 1e3,
            summary.latency_p99_s * 1e3,
            summary.latency_mean_s * 1e3
        );
        println!(
            "  shed: {:.2}% ({:.0} requests, overflow {shed_name})",
            summary.shed_pct, summary.shed
        );
        println!(
            "  batches: {:.0} closed, mean size {:.1}, queue wait {:.1} ms, service {:.1} ms",
            summary.batches,
            summary.mean_batch_size,
            summary.queue_wait_mean_s * 1e3,
            summary.service_mean_s * 1e3
        );
        println!(
            "  control: {:.1} switches ({:.1} reconf, {:.1} flexible), stall {:.3} s, \
             accuracy {:.2}%",
            summary.model_switches,
            summary.reconfigurations,
            summary.flexible_switches,
            summary.stall_total_s,
            summary.mean_accuracy_pct
        );
        if !events.is_empty() {
            println!("  events: {} recorded", events.len());
        }
        if check {
            println!("  determinism: repeated run identical");
        }
    }

    if let Some(prefix) = flags.get("out") {
        if events.is_empty() {
            return Err("--out requires a single run (--runs 1) to record events".to_string());
        }
        let trace_summary = TraceSummary::from_events(&events);
        let write = |suffix: &str, contents: String| -> Result<(), String> {
            let path = format!("{prefix}.{suffix}");
            std::fs::write(&path, &contents).map_err(|e| format!("writing {path}: {e}"))?;
            if format == "text" {
                println!("  wrote {path} ({} bytes)", contents.len());
            }
            Ok(())
        };
        write("trace.json", chrome_trace_json(&events))?;
        write("jsonl", events_to_jsonl(&events))?;
        write("prom", to_prometheus(&trace_summary))?;
    }
    Ok(())
}

/// Parses the shared serving knobs (`--deadline-ms`, `--queue-cap`,
/// `--batch`, `--batch-wait-ms`, `--shed`) into a [`ServeConfig`].
fn parse_serve_knobs(
    flags: &HashMap<String, String>,
) -> Result<adaflow_serve::ServeConfig, String> {
    use adaflow_serve::{OverflowPolicy, ServeConfig};
    let deadline_ms: f64 = flags.get("deadline-ms").map_or(Ok(250.0), |v| {
        v.parse().map_err(|e| format!("bad --deadline-ms: {e}"))
    })?;
    let queue_cap: usize = flags.get("queue-cap").map_or(Ok(256), |v| {
        v.parse().map_err(|e| format!("bad --queue-cap: {e}"))
    })?;
    let max_batch: usize = flags.get("batch").map_or(Ok(16), |v| {
        v.parse().map_err(|e| format!("bad --batch: {e}"))
    })?;
    let batch_wait_ms: f64 = flags.get("batch-wait-ms").map_or(Ok(20.0), |v| {
        v.parse().map_err(|e| format!("bad --batch-wait-ms: {e}"))
    })?;
    let shed_name = flags.get("shed").map_or("block", String::as_str);
    let overflow = OverflowPolicy::parse(shed_name)
        .ok_or_else(|| format!("unknown --shed `{shed_name}` (block | oldest | newest)"))?;
    Ok(ServeConfig {
        deadline_s: deadline_ms / 1e3,
        queue_capacity: queue_cap,
        max_batch,
        max_wait_s: batch_wait_ms / 1e3,
        overflow,
        ..ServeConfig::default()
    })
}

/// Parses the `--allow` / `--deny` lint policy flags.
fn parse_lint_flags(flags: &HashMap<String, String>) -> adaflow_verify::LintConfig {
    use adaflow_verify::LintConfig;
    LintConfig {
        allow: flags
            .get("allow")
            .map(|codes| LintConfig::parse_codes(codes))
            .unwrap_or_default(),
        deny: flags
            .get("deny")
            .map(|codes| LintConfig::parse_codes(codes))
            .unwrap_or_default(),
    }
}

/// Builds a [`adaflow_fleet::FleetConfig`] from the fleet CLI flags
/// (`--fleet`, `--router`, `--max-drains` plus the shared serving knobs).
fn parse_fleet_config(
    flags: &HashMap<String, String>,
) -> Result<adaflow_fleet::FleetConfig, String> {
    use adaflow_fleet::{DeviceKind, FleetConfig, RouterKind};
    let fleet_list = flags
        .get("fleet")
        .map_or("adaflow,adaflow,flexible,fixed", String::as_str);
    let devices = DeviceKind::parse_fleet(fleet_list).ok_or_else(|| {
        format!("bad --fleet `{fleet_list}` (comma-separated adaflow | fixed | flexible)")
    })?;
    let router_name = flags.get("router").map_or("deadline", String::as_str);
    let router = RouterKind::parse(router_name)
        .ok_or_else(|| format!("unknown --router `{router_name}` (rr | jsq | p2c | deadline)"))?;
    let max_drains: usize = flags.get("max-drains").map_or(Ok(1), |v| {
        v.parse().map_err(|e| format!("bad --max-drains: {e}"))
    })?;
    Ok(FleetConfig {
        devices,
        router,
        serve: parse_serve_knobs(flags)?,
        max_concurrent_drains: max_drains,
        imbalance_period_s: 1.0,
    })
}

/// Fleet-level serving: N simulated accelerator devices behind a
/// load-balancing router, with staggered reconfiguration drains.
fn cmd_fleet(flags: &HashMap<String, String>) -> Result<(), String> {
    use adaflow_fleet::{FleetExperiment, FleetSummary};
    use adaflow_telemetry::Event;
    use adaflow_verify::Severity;

    let library = load_library(flags)?;
    let scenario = parse_scenario(flags.get("scenario").map_or("2", String::as_str))?;
    let seed: u64 = flags
        .get("seed")
        .map_or(Ok(1), |s| s.parse().map_err(|e| format!("bad --seed: {e}")))?;
    let runs: usize = flags
        .get("runs")
        .map_or(Ok(1), |r| r.parse().map_err(|e| format!("bad --runs: {e}")))?;
    let format = flags.get("format").map_or("text", String::as_str);
    if !matches!(format, "text" | "json") {
        return Err(format!("unknown --format `{format}` (text | json)"));
    }
    let check = flags.get("check").is_some_and(|v| v == "1");
    let config = parse_fleet_config(flags)?;
    let spec = WorkloadSpec::paper_edge(scenario);

    // Static validation: the FL fleet rules plus the per-device SV serving
    // rules (each device sees its share of the offered load and can stall
    // as long as a full reconfiguration).
    let lint = parse_lint_flags(flags);
    let mut report = config.validate(lint.clone());
    let share_fps = spec.nominal_fps() / config.devices.len().max(1) as f64;
    report.merge(
        config
            .serve
            .validate(share_fps, worst_policy_stall_s("adaflow", &library), lint),
    );
    if format == "text" && report.count(Severity::Warn) + report.count(Severity::Error) > 0 {
        print!("{report}");
    }
    if report.has_errors() {
        return Err("fleet configuration failed FL/SV lint (see findings above)".to_string());
    }

    let experiment = FleetExperiment::new(&library, spec)
        .config(config.clone())
        .runs(runs.max(1))
        .seed(seed);
    let execute = || -> (FleetSummary, Vec<Event>) {
        if runs <= 1 {
            let (sink, recorder) = SinkHandle::recorder(1 << 18);
            (experiment.run_traced(seed, sink), recorder.drain())
        } else {
            (experiment.run(), Vec::new())
        }
    };
    let (summary, events) = execute();
    if !summary.conservation_holds() {
        return Err(format!(
            "fleet conservation violated: arrived {} != completed {} + shed {}",
            summary.arrived, summary.completed, summary.shed
        ));
    }
    if check {
        let (summary2, events2) = execute();
        if summary != summary2 || events != events2 {
            return Err("determinism check failed: repeated fleet run diverged".to_string());
        }
    }

    if format == "json" {
        let json = serde_json::to_string(&summary).map_err(|e| e.to_string())?;
        println!(
            "{{\"summary\":{json},\"runs\":{},\"events\":{}}}",
            runs.max(1),
            events.len()
        );
    } else {
        let kinds: Vec<&str> = config.devices.iter().map(|k| k.name()).collect();
        println!(
            "fleet of {} [{}] under {} via {} (seed {seed}, {} run{}): {:.0} requests",
            config.devices.len(),
            kinds.join(","),
            scenario.name(),
            summary.router,
            runs.max(1),
            if runs.max(1) == 1 { "" } else { "s" },
            summary.arrived
        );
        println!(
            "  deadline: {:.2}% hits within {:.0} ms (latency p50 {:.1} ms, p95 {:.1} ms, \
             p99 {:.1} ms, mean {:.1} ms)",
            summary.deadline_hit_pct,
            config.serve.deadline_s * 1e3,
            summary.latency_p50_s * 1e3,
            summary.latency_p95_s * 1e3,
            summary.latency_p99_s * 1e3,
            summary.latency_mean_s * 1e3
        );
        println!(
            "  shed: {:.2}% ({:.0} requests); batches {:.0}, mean size {:.1}",
            summary.shed_pct, summary.shed, summary.batches, summary.mean_batch_size
        );
        println!(
            "  balance: imbalance cv mean {:.3} / max {:.3}, routed-share cv {:.3}",
            summary.imbalance_cv_mean, summary.imbalance_cv_max, summary.routed_share_cv
        );
        println!(
            "  stagger: max {:.0} concurrent drain(s) under a budget of {}; \
             {:.1} switches ({:.1} reconf, {:.1} flexible), stall {:.3} s",
            summary.observed_max_drains,
            config.max_concurrent_drains,
            summary.model_switches,
            summary.reconfigurations,
            summary.flexible_switches,
            summary.stall_total_s
        );
        for (idx, d) in summary.per_device.iter().enumerate() {
            println!(
                "  device {idx} {:>13}: {:>6.0} routed, hit {:>6.2}%, util {:>5.1}%, \
                 shed {:.0}, reconf {:.1}",
                d.kind,
                d.arrived,
                d.deadline_hit_pct,
                d.utilization_pct,
                d.shed,
                d.reconfigurations
            );
        }
        if check {
            println!("  determinism: repeated run identical");
        }
    }

    if let Some(prefix) = flags.get("out") {
        if events.is_empty() {
            return Err("--out requires a single run (--runs 1) to record events".to_string());
        }
        let trace_summary = TraceSummary::from_events(&events);
        let write = |suffix: &str, contents: String| -> Result<(), String> {
            let path = format!("{prefix}.{suffix}");
            std::fs::write(&path, &contents).map_err(|e| format!("writing {path}: {e}"))?;
            if format == "text" {
                println!("  wrote {path} ({} bytes)", contents.len());
            }
            Ok(())
        };
        write("trace.json", chrome_trace_json(&events))?;
        write("jsonl", events_to_jsonl(&events))?;
        write("prom", to_prometheus(&trace_summary))?;
    }
    Ok(())
}

/// Causal latency attribution: runs one traced serve or fleet simulation,
/// reconstructs the span forest, and reports the per-stage waterfall plus
/// the SLO error-budget burn — bit-identical per seed.
#[allow(clippy::too_many_lines)]
fn cmd_report(flags: &HashMap<String, String>) -> Result<(), String> {
    use adaflow_telemetry::{
        Event, MetricsRegistry, Objective, RegistryConfig, SloConfig, SloEngine, TraceForest,
        Waterfall,
    };

    let mode = flags.get("mode").map_or("serve", String::as_str);
    if !matches!(mode, "serve" | "fleet") {
        return Err(format!("unknown --mode `{mode}` (serve | fleet)"));
    }
    let scenario_name = flags.get("scenario").map_or("2", String::as_str);
    let scenario = parse_scenario(scenario_name)?;
    let seed: u64 = flags
        .get("seed")
        .map_or(Ok(7), |s| s.parse().map_err(|e| format!("bad --seed: {e}")))?;
    let top: usize = flags
        .get("top")
        .map_or(Ok(3), |v| v.parse().map_err(|e| format!("bad --top: {e}")))?;
    let format = flags.get("format").map_or("text", String::as_str);
    if !matches!(format, "text" | "json") {
        return Err(format!("unknown --format `{format}` (text | json)"));
    }
    let check = flags.get("check").is_some_and(|v| v == "1");
    let target: f64 = flags.get("slo-target").map_or(Ok(0.97), |v| {
        v.parse().map_err(|e| format!("bad --slo-target: {e}"))
    })?;
    if !(target > 0.0 && target < 1.0) {
        return Err("--slo-target must lie strictly inside (0, 1)".to_string());
    }
    let objective_name = flags
        .get("slo-objective")
        .map_or("deadline", String::as_str);
    let objective = Objective::from_label(objective_name).ok_or_else(|| {
        format!("unknown --slo-objective `{objective_name}` (deadline | latency)")
    })?;

    // An explicit library wins; otherwise generate the default edge setup
    // in process so `report` works standalone.
    let library = match flags.get("library") {
        Some(_) => load_library(flags)?,
        None => LibraryGenerator::default_edge_setup()
            .generate(
                &build_model("cnv-w2a2", Some(DatasetKind::Cifar10))?,
                DatasetKind::Cifar10,
            )
            .map_err(|e| e.to_string())?,
    };
    let spec = WorkloadSpec::paper_edge(scenario);
    let config = parse_serve_knobs(flags)?;

    // One traced run; returns (summary JSON, headline, events).
    let run_once = || -> Result<(String, String, Vec<Event>), String> {
        let (sink, recorder) = SinkHandle::recorder(1 << 20);
        if mode == "serve" {
            let policy_name = flags.get("policy").map_or("adaflow", String::as_str);
            build_serve_policy(policy_name, &library, config.deadline_s)?;
            let experiment = adaflow_serve::ServeExperiment::new(&library, spec.clone())
                .runs(1)
                .seed(seed)
                .config(config.clone());
            let summary = experiment.run_traced(seed, sink, || {
                build_serve_policy(policy_name, &library, config.deadline_s)
                    .expect("name validated above")
            });
            if !summary.conservation_holds() {
                return Err("request conservation violated in traced run".to_string());
            }
            let headline = format!(
                "serve/{policy_name} under {} (seed {seed}): {:.0} arrived, {:.0} completed \
                 ({:.2}% deadline hits), {:.0} shed",
                scenario.name(),
                summary.arrived,
                summary.completed,
                summary.deadline_hit_pct,
                summary.shed
            );
            let json = serde_json::to_string(&summary).map_err(|e| e.to_string())?;
            Ok((json, headline, recorder.drain()))
        } else {
            let fleet_config = parse_fleet_config(flags)?;
            let experiment = adaflow_fleet::FleetExperiment::new(&library, spec.clone())
                .config(fleet_config.clone())
                .runs(1)
                .seed(seed);
            let summary = experiment.run_traced(seed, sink);
            if !summary.conservation_holds() {
                return Err("fleet conservation violated in traced run".to_string());
            }
            let headline = format!(
                "fleet of {} via {} under {} (seed {seed}): {:.0} arrived, {:.0} completed \
                 ({:.2}% deadline hits), {:.0} shed; stage means queue {:.2} ms / \
                 batch-wait {:.2} ms (stall {:.2} ms) / service {:.2} ms",
                fleet_config.devices.len(),
                summary.router,
                scenario.name(),
                summary.arrived,
                summary.completed,
                summary.deadline_hit_pct,
                summary.shed,
                summary.queue_wait_mean_s * 1e3,
                summary.batch_wait_mean_s * 1e3,
                summary.stall_mean_s * 1e3,
                summary.service_mean_s * 1e3
            );
            let json = serde_json::to_string(&summary).map_err(|e| e.to_string())?;
            Ok((json, headline, recorder.drain()))
        }
    };

    let (summary_json, headline, events) = run_once()?;
    let forest = TraceForest::from_events(&events);
    forest
        .validate()
        .map_err(|e| format!("invalid span forest: {e}"))?;
    let waterfall = Waterfall::from_forest(&forest, top);
    let mut registry = MetricsRegistry::new(RegistryConfig {
        latency_objective_s: config.deadline_s,
        ..RegistryConfig::default()
    });
    registry.observe_all(&events);
    let slo = SloEngine::new(SloConfig {
        objective,
        target,
        ..SloConfig::default()
    })
    .evaluate(&registry);
    let waterfall_json = serde_json::to_string(&waterfall).map_err(|e| e.to_string())?;
    let slo_json = serde_json::to_string(&slo).map_err(|e| e.to_string())?;

    if check {
        let (summary2, _, events2) = run_once()?;
        if summary_json != summary2 || events != events2 {
            return Err("determinism check failed: repeated traced run diverged".to_string());
        }
    }

    if format == "json" {
        println!(
            "{{\"mode\":\"{mode}\",\"scenario\":\"{scenario_name}\",\"seed\":{seed},\
             \"summary\":{summary_json},\"waterfall\":{waterfall_json},\"slo\":{slo_json}}}"
        );
    } else {
        println!("{headline}");
        print!("{}", waterfall.render_text());
        println!(
            "slo ({}, target {:.2}%): good {:.2}%, error budget {:.1} requests, consumed {:.1}%",
            slo.objective,
            slo.target * 100.0,
            slo.good_fraction * 100.0,
            slo.error_budget,
            slo.budget_consumed_pct
        );
        println!(
            "  burn: overall {:.2}x, worst short({:.0}s) {:.2}x, worst long({:.0}s) {:.2}x, \
             alert threshold {:.1}x, alerts {}",
            slo.overall_burn_rate,
            slo.short_window_s,
            slo.worst_short_burn,
            slo.long_window_s,
            slo.worst_long_burn,
            slo.alert_burn_rate,
            slo.alerts.len()
        );
        if check {
            println!("  determinism: repeated run identical");
        }
    }

    if let Some(prefix) = flags.get("out") {
        // Fold the SLO alerts into the exported stream (they carry their
        // own sim timestamps), so the Perfetto view shows burns in place.
        let mut exported = events.clone();
        exported.extend(slo.alerts.iter().cloned());
        let trace_summary = TraceSummary::from_events(&exported);
        let write = |suffix: &str, contents: String| -> Result<(), String> {
            let path = format!("{prefix}.{suffix}");
            std::fs::write(&path, &contents).map_err(|e| format!("writing {path}: {e}"))?;
            if format == "text" {
                println!("  wrote {path} ({} bytes)", contents.len());
            }
            Ok(())
        };
        write("trace.json", chrome_trace_json(&exported))?;
        write("jsonl", events_to_jsonl(&exported))?;
        write("prom", to_prometheus(&trace_summary))?;
        write("metrics.prom", registry.to_prometheus())?;
    }
    Ok(())
}

/// Builds a serving policy by name, attaching a telemetry sink.
fn build_policy<'l>(
    name: &str,
    library: &'l Library,
    sink: &SinkHandle,
) -> Result<Box<dyn ServerPolicy + 'l>, String> {
    match name {
        "adaflow" => Ok(Box::new(
            AdaFlowPolicy::new(library, RuntimeConfig::default()).with_sink(sink.clone()),
        )),
        "finn" => Ok(Box::new(
            OriginalFinnPolicy::new(library).with_sink(sink.clone()),
        )),
        other => match other.strip_prefix("reconf:") {
            Some(ms) => {
                let ms: u64 = ms.parse().map_err(|e| format!("bad reconf time: {e}"))?;
                Ok(Box::new(
                    PruningReconfPolicy::new(library, Duration::from_millis(ms))
                        .with_sink(sink.clone()),
                ))
            }
            None => Err(format!("unknown policy `{other}`")),
        },
    }
}

/// One fully-traced serving run: records every telemetry event, prints a
/// summary and (with `--out prefix`) writes the Chrome trace, JSONL and
/// Prometheus exports.
fn cmd_trace(flags: &HashMap<String, String>) -> Result<(), String> {
    let library = load_library(flags)?;
    let scenario = parse_scenario(flags.get("scenario").map_or("2", String::as_str))?;
    let seed: u64 = flags
        .get("seed")
        .map_or(Ok(1), |s| s.parse().map_err(|e| format!("bad --seed: {e}")))?;
    let policy_name = flags.get("policy").map_or("adaflow", String::as_str);

    let (sink, recorder) = SinkHandle::recorder(1 << 18);
    let mut policy = build_policy(policy_name, &library, &sink)?;
    let segments = WorkloadSpec::paper_edge(scenario).generate(seed);
    let sim = EdgeSim::new(SimConfig::default()).with_sink(sink);
    let (metrics, _) = sim.run(policy.as_mut(), &segments);

    let events = recorder.drain();
    let summary = TraceSummary::from_events(&events);
    println!(
        "{policy_name} under {} (seed {seed}): {} events over {:.1} s{}",
        scenario.name(),
        events.len(),
        summary.horizon_s,
        if recorder.overwritten() > 0 {
            format!(
                " ({} overwritten — raise the ring capacity)",
                recorder.overwritten()
            )
        } else {
            String::new()
        }
    );
    println!(
        "  frames: {:.0} arrived, {:.1} dropped (run lost {:.1}, {:.2}%)",
        summary.frames_arrived, summary.frames_dropped, metrics.lost, metrics.frame_loss_pct
    );
    println!(
        "  control: {} decisions, {} reconfigurations, {} model switches ({} flexible), stall {:.3} s",
        summary.decisions,
        summary.reconfigurations,
        summary.model_switches,
        summary.flexible_switches,
        summary.stall_s
    );
    println!(
        "  latency: mean {:.1} ms, p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms",
        metrics.mean_latency_ms,
        metrics.latency_p50_ms,
        metrics.latency_p95_ms,
        metrics.latency_p99_ms
    );
    println!(
        "  queue depth: p50 {:.1}, p95 {:.1}, p99 {:.1} frames",
        summary.queue_depth.p50(),
        summary.queue_depth.p95(),
        summary.queue_depth.p99()
    );

    if let Some(prefix) = flags.get("out") {
        let write = |suffix: &str, contents: String| -> Result<(), String> {
            let path = format!("{prefix}.{suffix}");
            std::fs::write(&path, &contents).map_err(|e| format!("writing {path}: {e}"))?;
            println!("  wrote {path} ({} bytes)", contents.len());
            Ok(())
        };
        write("trace.json", chrome_trace_json(&events))?;
        write("jsonl", events_to_jsonl(&events))?;
        write("prom", to_prometheus(&summary))?;
    }
    Ok(())
}

/// All model names `lint --model all` expands to.
const LINT_MODELS: [&str; 5] = [
    "cnv-w2a2",
    "cnv-w1a2",
    "lenet-w2a2",
    "lenet-w1a2",
    "tiny-w2a2",
];

/// Lints one graph end to end: the `AF` graph rules, the `DF` folding rule
/// against the model's reference folding, and — when the accelerator
/// compiles — the `DF` pipeline rules. Returns one merged report.
fn lint_graph(
    graph: &adaflow_model::CnnGraph,
    lint: &adaflow_verify::LintConfig,
) -> Result<adaflow_verify::Report, String> {
    use adaflow_dataflow::{verify_dataflow, AcceleratorKind, DataflowAccelerator};
    use adaflow_pruning::FinnConfig;

    let verifier = adaflow_verify::Verifier::new().with_config(lint.clone());
    let mut report = verifier.verify(graph);
    let config = FinnConfig::cnv_reference(graph).map_err(|e| e.to_string())?;
    let accel = DataflowAccelerator::compile(graph, &config, AcceleratorKind::Finn)
        .map_err(|e| format!("{}: compiling accelerator: {e}", graph.name()))?;
    report.merge(verify_dataflow(graph, &config, Some(&accel), lint.clone()));
    Ok(report)
}

/// `lint --explain <CODE|all>`: prints the rule-catalog entry (summary,
/// severity range, paper provenance, example fix) for one diagnostic code,
/// or for every registered code.
fn cmd_explain(code: &str) -> Result<(), String> {
    let docs: Vec<&adaflow_verify::RuleDoc> = if code.eq_ignore_ascii_case("all") {
        adaflow_verify::rule_docs().iter().collect()
    } else {
        vec![adaflow_verify::explain(code).ok_or_else(|| {
            format!("unknown rule code `{code}` — `--explain all` lists every code")
        })?]
    };
    for (i, doc) in docs.iter().enumerate() {
        if i > 0 {
            println!();
        }
        println!("{} — {}", doc.code, doc.summary);
        println!("  severity:   {}", doc.severities);
        println!("  provenance: {}", doc.provenance);
        println!("  fix:        {}", doc.example_fix);
    }
    Ok(())
}

fn cmd_lint(flags: &HashMap<String, String>) -> Result<(), String> {
    use adaflow_pruning::{DataflowAwarePruner, FinnConfig};
    use adaflow_verify::Severity;

    if let Some(code) = flags.get("explain") {
        return cmd_explain(code);
    }

    // Fleet/serving config linting (FL + SV rule families) rides on the
    // same allow/deny policy and error exit as the graph rules. It is
    // requested by any fleet-shaped flag; `--model` is then optional.
    let fleet_requested = ["fleet", "router", "deadline-ms", "max-drains"]
        .iter()
        .any(|f| flags.contains_key(*f));
    let models: Vec<&str> = match flags.get("model").map(String::as_str) {
        Some("all") => LINT_MODELS.to_vec(),
        Some(name) => vec![name],
        None if fleet_requested => Vec::new(),
        None => return Err(format!("missing --model\n{}", usage())),
    };
    let rates: Vec<f64> = flags.get("rates").map_or(Ok(vec![0.0]), |rates| {
        rates
            .split(',')
            .map(|r| {
                r.trim()
                    .parse::<f64>()
                    .map_err(|e| format!("bad rate `{r}`: {e}"))
            })
            .collect()
    })?;
    let format = flags.get("format").map_or("text", String::as_str);
    if !matches!(format, "text" | "json") {
        return Err(format!("unknown --format `{format}` (text | json)"));
    }
    let lint = parse_lint_flags(flags);

    let mut reports = Vec::new();
    if fleet_requested {
        let config = parse_fleet_config(flags)?;
        reports.push(config.validate(lint.clone()));
        // SV serving rules on the per-device share of the paper's edge
        // load. The worst-case stall needs a concrete library; without
        // `--library` only the deadline-local SV001 can fire.
        let worst_stall_s = match flags.get("library") {
            Some(_) => worst_policy_stall_s("adaflow", &load_library(flags)?),
            None => 0.0,
        };
        let share_fps = WorkloadSpec::paper_edge(Scenario::Unpredictable).nominal_fps()
            / config.devices.len().max(1) as f64;
        reports.push(
            config
                .serve
                .validate(share_fps, worst_stall_s, lint.clone()),
        );
    }
    for name in models {
        let graph = build_model(name, None)?;
        reports.push(lint_graph(&graph, &lint)?);
        let config = FinnConfig::cnv_reference(&graph).map_err(|e| e.to_string())?;
        let pruner = DataflowAwarePruner::new(config);
        for &rate in &rates {
            if rate == 0.0 {
                continue;
            }
            let pruned = pruner.prune(&graph, rate).map_err(|e| e.to_string())?;
            reports.push(lint_graph(&pruned.graph, &lint)?);
        }
    }

    let errors: usize = reports.iter().map(|r| r.count(Severity::Error)).sum();
    if format == "json" {
        let docs: Result<Vec<String>, _> = reports
            .iter()
            .map(adaflow_verify::Report::to_json)
            .collect();
        println!("[{}]", docs.map_err(|e| e.to_string())?.join(",\n"));
    } else {
        for report in &reports {
            print!("{report}");
        }
        let warnings: usize = reports.iter().map(|r| r.count(Severity::Warn)).sum();
        println!(
            "lint: {} subject(s), {errors} error(s), {warnings} warning(s)",
            reports.len()
        );
    }
    if errors > 0 {
        return Err(format!("lint found {errors} error(s)"));
    }
    Ok(())
}

fn cmd_explore(flags: &HashMap<String, String>) -> Result<(), String> {
    let graph = build_model(required(flags, "model")?, None)?;
    let target_fps: f64 = flags.get("target-fps").map_or(Ok(600.0), |v| {
        v.parse().map_err(|e| format!("bad --target-fps: {e}"))
    })?;
    let cap: f64 = flags.get("cap").map_or(Ok(0.7), |v| {
        v.parse().map_err(|e| format!("bad --cap: {e}"))
    })?;
    let goal = ExplorationGoal {
        target_fps,
        device: FpgaDevice::zcu104(),
        utilization_cap: cap,
    };
    let result = FoldingExplorer::new(goal)
        .explore(&graph)
        .map_err(|e| e.to_string())?;
    println!(
        "explored folding in {} moves: {:.0} FPS (target {}) — {} LUT, {} BRAM36",
        result.moves,
        result.throughput_fps,
        if result.target_met { "met" } else { "NOT met" },
        result.resources.lut,
        result.resources.bram36
    );
    for (id, f) in result.folding.entries() {
        println!(
            "  {}: PE {}, SIMD {}",
            graph.nodes()[id.0].name,
            f.pe,
            f.simd
        );
    }
    Ok(())
}

/// Parses an optional numeric flag, falling back to `default`.
fn parse_num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    flags.get(name).map_or(Ok(default), |v| {
        v.parse().map_err(|e| format!("bad --{name}: {e}"))
    })
}

/// Serves a model over real TCP sockets on the live inference engine.
///
/// The startup path is verify-gated: the full graph lint plus the serving
/// config lint run first, and any Error-level diagnostic refuses to open
/// the socket (nonzero exit) — the live counterpart of `serve`'s SV gate.
fn cmd_serve_live(flags: &HashMap<String, String>) -> Result<(), String> {
    use adaflow_net::{preflight, LiveConfig, LiveServer, MetricsEndpoint};
    use adaflow_telemetry::{RegistryConfig, RegistrySink};
    use adaflow_verify::Severity;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let model_name = required(flags, "model")?.to_string();
    let graph = build_model(&model_name, None)?;
    let serve = parse_serve_knobs(flags)?;
    let lint = parse_lint_flags(flags);
    let nominal_fps: f64 = parse_num(flags, "nominal-fps", 100.0)?;
    let duration_s: f64 = parse_num(flags, "duration-s", 0.0)?;
    let threads: usize = parse_num(flags, "threads", 0)?;
    let addr = flags.get("addr").map_or("127.0.0.1:7878", String::as_str);
    let format = flags.get("format").map_or("text", String::as_str);
    if !matches!(format, "text" | "json") {
        return Err(format!("unknown --format `{format}` (text | json)"));
    }

    // Hard gate: a live endpoint must not come up on a config the verifier
    // rejects. Worst stall is zero — live serving runs a single model.
    let report = preflight(&graph, &serve, nominal_fps, 0.0, &lint).map_err(|e| e.to_string())?;
    if format == "text" && report.count(Severity::Warn) > 0 {
        print!("{report}");
    }

    let (trace_sink, recorder) = SinkHandle::recorder(1 << 18);
    let registry = RegistrySink::new(RegistryConfig::default());
    let sink = SinkHandle::fanout(vec![trace_sink, SinkHandle::new(registry.clone())]);
    let config = LiveConfig {
        serve: serve.clone(),
        model_id: model_name.clone(),
        threads,
        ..LiveConfig::default()
    };
    let server = LiveServer::bind(addr, &graph, config, sink).map_err(|e| e.to_string())?;
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    let handle = server.handle();

    // Optional Prometheus scrape endpoint, on its own thread.
    let metrics_stop = Arc::new(AtomicBool::new(false));
    let metrics_thread = match flags.get("metrics-port") {
        Some(port) => {
            let port: u16 = port
                .parse()
                .map_err(|e| format!("bad --metrics-port: {e}"))?;
            let endpoint =
                MetricsEndpoint::bind(("127.0.0.1", port), registry, metrics_stop.clone())
                    .map_err(|e| format!("binding metrics endpoint: {e}"))?;
            let metrics_addr = endpoint.local_addr().map_err(|e| e.to_string())?;
            if format == "text" {
                println!("metrics: http://{metrics_addr}/metrics");
            }
            Some(std::thread::spawn(move || endpoint.serve()))
        }
        None => None,
    };

    if format == "text" {
        println!(
            "serving {model_name} on {bound}: deadline {:.0} ms, queue {}, batch {} / {:.0} ms{}",
            serve.deadline_s * 1e3,
            serve.queue_capacity,
            serve.max_batch,
            serve.max_wait_s * 1e3,
            if duration_s > 0.0 {
                format!(", for {duration_s:.0} s")
            } else {
                String::new()
            }
        );
    }
    if duration_s > 0.0 {
        let timer = handle.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_secs_f64(duration_s));
            timer.shutdown();
        });
    }

    let report = server.run().map_err(|e| e.to_string())?;
    metrics_stop.store(true, Ordering::SeqCst);
    if let Some(t) = metrics_thread {
        let _ = t.join();
    }
    let events = recorder.drain();

    if format == "json" {
        println!(
            "{}",
            serde_json::to_string(&report).map_err(|e| e.to_string())?
        );
    } else {
        let s = &report.summary;
        println!(
            "live: {:.0} arrived over {:.1} s — {:.0} served ({:.1} req/s), {:.0} shed",
            s.arrived, report.duration_s, s.completed, report.throughput_rps, s.shed
        );
        println!(
            "  deadline: {:.2}% hits (latency p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms)",
            s.deadline_hit_pct,
            s.latency_p50_s * 1e3,
            s.latency_p95_s * 1e3,
            s.latency_p99_s * 1e3
        );
        println!(
            "  batches: {:.0} closed, mean size {:.1}, queue wait {:.1} ms, service {:.1} ms \
             (floor {:.2} ms)",
            s.batches,
            s.mean_batch_size,
            s.queue_wait_mean_s * 1e3,
            s.service_mean_s * 1e3,
            report.min_service_s * 1e3
        );
        let r = &report.rejects;
        println!(
            "  rejects: queue-full {}, deadline-infeasible {}, shutting-down {}, \
             unknown-model {}, bad-request {}",
            r.queue_full, r.deadline_infeasible, r.shutting_down, r.unknown_model, r.bad_request
        );
        println!(
            "  wire: {} connection(s), {} protocol error(s), {} send error(s), \
             {} event(s) recorded",
            report.connections,
            report.protocol_errors,
            report.send_errors,
            events.len()
        );
    }

    if let Some(prefix) = flags.get("out") {
        let trace_summary = TraceSummary::from_events(&events);
        let write = |suffix: &str, contents: String| -> Result<(), String> {
            let path = format!("{prefix}.{suffix}");
            std::fs::write(&path, &contents).map_err(|e| format!("writing {path}: {e}"))?;
            if format == "text" {
                println!("  wrote {path} ({} bytes)", contents.len());
            }
            Ok(())
        };
        write("trace.json", chrome_trace_json(&events))?;
        write("jsonl", events_to_jsonl(&events))?;
        write("prom", to_prometheus(&trace_summary))?;
        write(
            "report.json",
            serde_json::to_string(&report).map_err(|e| e.to_string())?,
        )?;
    }
    Ok(())
}

/// Drives seeded load against a live endpoint and prints the
/// reason-coded summary.
fn cmd_load(flags: &HashMap<String, String>) -> Result<(), String> {
    use adaflow_net::{run_load, LoadConfig, LoadMode};

    let addr_str = required(flags, "addr")?;
    let addr: std::net::SocketAddr = addr_str
        .parse()
        .map_err(|e| format!("bad --addr `{addr_str}`: {e}"))?;
    let model_name = required(flags, "model")?.to_string();
    let graph = build_model(&model_name, None)?;
    let connections: usize = parse_num(flags, "connections", 1)?;
    let seed: u64 = parse_num(flags, "seed", 7)?;
    let deadline_ms: f64 = parse_num(flags, "deadline-ms", 0.0)?;
    let format = flags.get("format").map_or("text", String::as_str);
    if !matches!(format, "text" | "json") {
        return Err(format!("unknown --format `{format}` (text | json)"));
    }
    let mode = if let Some(requests) = flags.get("requests") {
        LoadMode::Closed {
            requests: requests
                .parse()
                .map_err(|e| format!("bad --requests: {e}"))?,
        }
    } else {
        LoadMode::Open {
            rate_fps: parse_num(flags, "rate-fps", 100.0)?,
            duration_s: parse_num(flags, "duration-s", 5.0)?,
        }
    };
    let config = LoadConfig {
        addr,
        model: model_name,
        shape: graph.input_shape(),
        connections,
        mode,
        deadline_us: (deadline_ms * 1e3).max(0.0) as u64,
        seed,
        recv_grace: Duration::from_secs(5),
    };
    let summary = run_load(&config);
    print_load_summary(&summary, format)
}

fn print_load_summary(summary: &adaflow_net::LoadSummary, format: &str) -> Result<(), String> {
    if format == "json" {
        println!(
            "{}",
            serde_json::to_string(summary).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    println!(
        "load: {} sent — {} ok, {} rejected, {} missing ({:.2}% hit within budget)",
        summary.sent,
        summary.ok,
        summary.rejected(),
        summary.missing,
        summary.hit_pct()
    );
    println!(
        "  rejects: queue-full {}, deadline-infeasible {}, shutting-down {}, \
         unknown-model {}, bad-request {}",
        summary.rejected_queue_full,
        summary.rejected_deadline_infeasible,
        summary.rejected_shutting_down,
        summary.rejected_unknown_model,
        summary.rejected_bad_request
    );
    println!(
        "  errors: protocol {}, io {}",
        summary.protocol_errors, summary.io_errors
    );
    println!(
        "  rtt: p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms — {:.1} req/s over {:.1} s",
        summary.rtt_p50_s * 1e3,
        summary.rtt_p95_s * 1e3,
        summary.rtt_p99_s * 1e3,
        summary.throughput_rps,
        summary.elapsed_s
    );
    Ok(())
}

/// In-process server + seeded load with hard pass/fail floors — the CI
/// gate for the live serving path.
fn cmd_soak(flags: &HashMap<String, String>) -> Result<(), String> {
    use adaflow_net::{preflight, run_load, LiveConfig, LiveServer, LoadConfig, LoadMode};

    let model_name = flags
        .get("model")
        .map_or("tiny-w2a2", String::as_str)
        .to_string();
    let graph = build_model(&model_name, None)?;
    let serve = parse_serve_knobs(flags)?;
    let lint = parse_lint_flags(flags);
    let rate_fps: f64 = parse_num(flags, "rate-fps", 200.0)?;
    let duration_s: f64 = parse_num(flags, "duration-s", 3.0)?;
    let connections: usize = parse_num(flags, "connections", 2)?;
    let min_hit_pct: f64 = parse_num(flags, "min-hit-pct", 50.0)?;
    let seed: u64 = parse_num(flags, "seed", 7)?;

    preflight(&graph, &serve, rate_fps, 0.0, &lint).map_err(|e| e.to_string())?;

    let (sink, recorder) = SinkHandle::recorder(1 << 18);
    let config = LiveConfig {
        serve,
        model_id: model_name.clone(),
        ..LiveConfig::default()
    };
    let server =
        LiveServer::bind("127.0.0.1:0", &graph, config, sink).map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    let handle = server.handle();
    let shape = graph.input_shape();

    println!(
        "soak: {model_name} on {addr}, {rate_fps:.0} req/s x {duration_s:.0} s \
         over {connections} connection(s), seed {seed}"
    );
    let (server_result, summary) = std::thread::scope(|scope| {
        let server_thread = scope.spawn(move || server.run());
        let load = LoadConfig {
            addr,
            model: model_name,
            shape,
            connections,
            mode: LoadMode::Open {
                rate_fps,
                duration_s,
            },
            deadline_us: 0,
            seed,
            recv_grace: Duration::from_secs(5),
        };
        let summary = run_load(&load);
        handle.shutdown();
        (server_thread.join().expect("server thread"), summary)
    });
    let report = server_result.map_err(|e| format!("server failed: {e}"))?;
    let events = recorder.drain();

    print_load_summary(&summary, "text")?;
    println!(
        "  server: {:.0} arrived, {:.0} served, {:.0} shed, {} event(s) recorded",
        report.summary.arrived,
        report.summary.completed,
        report.summary.shed,
        events.len()
    );

    // The floors. Any violation is a red CI.
    let mut failures: Vec<String> = Vec::new();
    if summary.protocol_errors > 0 {
        failures.push(format!(
            "client decoded {} malformed frame(s)",
            summary.protocol_errors
        ));
    }
    if report.protocol_errors > 0 {
        failures.push(format!(
            "server dropped {} connection(s) on protocol errors",
            report.protocol_errors
        ));
    }
    if summary.io_errors > 0 {
        failures.push(format!(
            "{} socket error(s) on the client",
            summary.io_errors
        ));
    }
    if summary.missing > 0 {
        failures.push(format!(
            "{} request(s) never got a response",
            summary.missing
        ));
    }
    if !report.summary.conservation_holds() {
        failures.push(format!(
            "request conservation violated: arrived {:.0} != completed {:.0} + shed {:.0}",
            report.summary.arrived, report.summary.completed, report.summary.shed
        ));
    }
    if summary.hit_pct() < min_hit_pct {
        failures.push(format!(
            "hit rate {:.2}% below the {min_hit_pct:.2}% floor",
            summary.hit_pct()
        ));
    }
    if failures.is_empty() {
        println!(
            "soak: PASS ({:.2}% hits >= {min_hit_pct:.2}% floor, zero protocol errors, \
             clean shutdown)",
            summary.hit_pct()
        );
        Ok(())
    } else {
        Err(format!("soak FAILED: {}", failures.join("; ")))
    }
}

fn parse_router_flag(flags: &HashMap<String, String>) -> Result<adaflow_fleet::RouterKind, String> {
    let name = flags.get("router").map_or("deadline", String::as_str);
    adaflow_fleet::RouterKind::parse(name)
        .ok_or_else(|| format!("unknown --router `{name}` (rr | jsq | p2c | deadline)"))
}

fn gateway_warmup(
    model: &str,
    shape: adaflow_model::TensorShape,
    iters: u32,
) -> Option<adaflow_gateway::WarmupSpec> {
    (iters > 0).then(|| adaflow_gateway::WarmupSpec {
        model: model.to_string(),
        channels: shape.channels as u16,
        height: shape.height as u16,
        width: shape.width as u16,
        iters,
    })
}

fn print_gateway_report(
    report: &adaflow_gateway::GatewayReport,
    format: &str,
) -> Result<(), String> {
    if format == "json" {
        println!(
            "{}",
            serde_json::to_string(report).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    println!(
        "gateway: {} received over {:.1} s — {} ok, {} rejected, {} retries ({} router)",
        report.received,
        report.duration_s,
        report.answered_ok,
        report.rejects.total(),
        report.retries,
        report.router
    );
    let r = &report.rejects;
    println!(
        "  rejects: queue-full {}, deadline-infeasible {}, shutting-down {} ({} with no backend), \
         unknown-model {}, bad-request {}",
        r.queue_full,
        r.deadline_infeasible,
        r.shutting_down,
        report.no_backend,
        r.unknown_model,
        r.bad_request
    );
    println!(
        "  wire: {} connection(s), {} protocol error(s), {} send error(s), {} accept error(s)",
        report.connections, report.protocol_errors, report.send_errors, report.accept_errors
    );
    for (idx, b) in report.backends.iter().enumerate() {
        println!(
            "  backend[{idx}] {}: {} routed, {} ok, {} retryable, {} ejection(s), \
             {} readmission(s), floor {:.2} ms, rtt p50 {:.1} ms / p95 {:.1} ms / p99 {:.1} ms{}",
            b.addr,
            b.routed,
            b.ok,
            b.retryable,
            b.ejections,
            b.readmissions,
            b.floor_s * 1e3,
            b.rtt_p50_s * 1e3,
            b.rtt_p95_s * 1e3,
            b.rtt_p99_s * 1e3,
            if b.healthy_at_exit { "" } else { " [ejected]" }
        );
    }
    Ok(())
}

/// Live routing tier over already-running `serve-live` backends.
fn cmd_gateway(flags: &HashMap<String, String>) -> Result<(), String> {
    use adaflow_gateway::{Gateway, GatewayConfig};
    use adaflow_net::preflight;
    use adaflow_verify::Severity;

    let model_name = required(flags, "model")?.to_string();
    let graph = build_model(&model_name, None)?;
    let serve = parse_serve_knobs(flags)?;
    let lint = parse_lint_flags(flags);
    let nominal_fps: f64 = parse_num(flags, "nominal-fps", 100.0)?;
    let duration_s: f64 = parse_num(flags, "duration-s", 0.0)?;
    let retry_budget: u32 = parse_num(flags, "retry-budget", 1)?;
    let warmup_iters: u32 = parse_num(flags, "warmup-iters", 3)?;
    let seed: u64 = parse_num(flags, "seed", 7)?;
    let addr = flags.get("addr").map_or("127.0.0.1:7979", String::as_str);
    let format = flags.get("format").map_or("text", String::as_str);
    if !matches!(format, "text" | "json") {
        return Err(format!("unknown --format `{format}` (text | json)"));
    }
    let backends_flag = required(flags, "backends")?;
    let backends: Vec<std::net::SocketAddr> = backends_flag
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse()
                .map_err(|e| format!("bad backend address `{s}`: {e}"))
        })
        .collect::<Result<_, _>>()?;

    // Same hard gate as serve-live: the routing tier refuses to front a
    // model/serve configuration the verifier rejects.
    let report = preflight(&graph, &serve, nominal_fps, 0.0, &lint).map_err(|e| e.to_string())?;
    if format == "text" && report.count(Severity::Warn) > 0 {
        print!("{report}");
    }

    let config = GatewayConfig {
        model_id: model_name.clone(),
        router: parse_router_flag(flags)?,
        seed,
        retry_budget,
        warmup: gateway_warmup(&model_name, graph.input_shape(), warmup_iters),
        ..GatewayConfig::default()
    };
    let (sink, recorder) = SinkHandle::recorder(1 << 18);
    let gateway = Gateway::bind(addr, &backends, config, sink).map_err(|e| e.to_string())?;
    let bound = gateway.local_addr().map_err(|e| e.to_string())?;
    let handle = gateway.handle();

    if format == "text" {
        println!(
            "gateway for {model_name} on {bound}: {} backend(s), retry budget {retry_budget}{}",
            backends.len(),
            if duration_s > 0.0 {
                format!(", for {duration_s:.0} s")
            } else {
                String::new()
            }
        );
    }
    if duration_s > 0.0 {
        let timer = handle.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_secs_f64(duration_s));
            timer.shutdown();
        });
    }

    let report = gateway.run().map_err(|e| e.to_string())?;
    print_gateway_report(&report, format)?;

    if let Some(prefix) = flags.get("out") {
        let events = recorder.drain();
        let trace_summary = TraceSummary::from_events(&events);
        let write = |suffix: &str, contents: String| -> Result<(), String> {
            let path = format!("{prefix}.{suffix}");
            std::fs::write(&path, &contents).map_err(|e| format!("writing {path}: {e}"))?;
            if format == "text" {
                println!("  wrote {path} ({} bytes)", contents.len());
            }
            Ok(())
        };
        write("trace.json", chrome_trace_json(&events))?;
        write("jsonl", events_to_jsonl(&events))?;
        write("prom", to_prometheus(&trace_summary))?;
        write(
            "report.json",
            serde_json::to_string(&report).map_err(|e| e.to_string())?,
        )?;
    }
    Ok(())
}

/// In-process backends + gateway + seeded open-loop load with hard
/// pass/fail floors — the CI gate for the routing tier. With
/// `--failover 1`, backend 0 is killed a third of the way in and
/// restarted at two thirds; the run then also requires at least one
/// ejection and one readmission.
fn cmd_gateway_soak(flags: &HashMap<String, String>) -> Result<(), String> {
    use adaflow_gateway::{Gateway, GatewayConfig};
    use adaflow_net::{preflight, run_load, LiveConfig, LiveServer, LoadConfig, LoadMode};
    use std::time::Instant;

    let model_name = flags
        .get("model")
        .map_or("tiny-w2a2", String::as_str)
        .to_string();
    let graph = build_model(&model_name, None)?;
    let serve = parse_serve_knobs(flags)?;
    let lint = parse_lint_flags(flags);
    let rate_fps: f64 = parse_num(flags, "rate-fps", 300.0)?;
    let duration_s: f64 = parse_num(flags, "duration-s", 3.0)?;
    let connections: usize = parse_num(flags, "connections", 2)?;
    let min_hit_pct: f64 = parse_num(flags, "min-hit-pct", 50.0)?;
    let seed: u64 = parse_num(flags, "seed", 7)?;
    let backends_n: usize = parse_num(flags, "backends", 2)?;
    // Per-request wire deadline for the generated load (0 = none): with a
    // budget set, the client's hit rate measures RTT against it, so the
    // floor becomes a latency gate rather than an answered-ok gate.
    let load_deadline_ms: f64 = parse_num(flags, "load-deadline-ms", 0.0)?;
    let failover = flags.get("failover").map(String::as_str) == Some("1");
    let hetero = flags.get("hetero").map(String::as_str) == Some("1");
    let router = parse_router_flag(flags)?;
    if backends_n == 0 {
        return Err("--backends must be at least 1".to_string());
    }
    if failover && backends_n < 2 {
        return Err("--failover 1 needs at least 2 backends".to_string());
    }

    preflight(&graph, &serve, rate_fps, 0.0, &lint).map_err(|e| e.to_string())?;

    // With --hetero 1, backends past index 0 serve unbatched — a slower
    // tier the router has to notice and route around.
    let backend_cfg = |idx: usize| {
        let mut cfg = LiveConfig {
            serve: serve.clone(),
            model_id: model_name.clone(),
            ..LiveConfig::default()
        };
        if hetero && idx > 0 {
            cfg.serve.max_batch = 1;
        }
        cfg
    };
    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    for idx in 0..backends_n {
        let server = LiveServer::bind("127.0.0.1:0", &graph, backend_cfg(idx), SinkHandle::null())
            .map_err(|e| e.to_string())?;
        addrs.push(server.local_addr().map_err(|e| e.to_string())?);
        handles.push(server.handle());
        servers.push(server);
    }

    let config = GatewayConfig {
        model_id: model_name.clone(),
        router,
        seed,
        retry_budget: 1,
        warmup: gateway_warmup(&model_name, graph.input_shape(), 3),
        probe_interval: Duration::from_millis(50),
        probe_timeout: Duration::from_millis(500),
        ..GatewayConfig::default()
    };
    let (sink, recorder) = SinkHandle::recorder(1 << 18);
    let gateway = Gateway::bind("127.0.0.1:0", &addrs, config, sink).map_err(|e| e.to_string())?;
    let front = gateway.local_addr().map_err(|e| e.to_string())?;
    let gh = gateway.handle();

    println!(
        "gateway-soak: {model_name} x {backends_n} backend(s) behind {front} ({} router), \
         {rate_fps:.0} req/s x {duration_s:.0} s over {connections} connection(s), seed {seed}{}{}",
        router.name(),
        if failover { ", failover drill" } else { "" },
        if hetero { ", heterogeneous" } else { "" },
    );

    let shape = graph.input_shape();
    let (gateway_result, summary) = std::thread::scope(|scope| {
        let mut backend_threads: Vec<Option<std::thread::ScopedJoinHandle<'_, _>>> = servers
            .into_iter()
            .map(|server| Some(scope.spawn(move || server.run())))
            .collect();
        let gateway_thread = scope.spawn(move || gateway.run());

        // The failover drill runs on its own thread so the load below is
        // uninterrupted: kill backend 0 at t/3, restart it at 2t/3.
        let drill = failover.then(|| {
            let bt0 = backend_threads[0].take().expect("backend 0 thread");
            let h0 = handles[0].clone();
            let addr0 = addrs[0];
            let cfg0 = backend_cfg(0);
            let graph = &graph;
            scope.spawn(move || {
                std::thread::sleep(Duration::from_secs_f64(duration_s / 3.0));
                h0.shutdown();
                bt0.join()
                    .expect("backend 0 thread")
                    .expect("backend 0 serves");
                std::thread::sleep(Duration::from_secs_f64(duration_s / 3.0));
                let server = LiveServer::bind(addr0, graph, cfg0, SinkHandle::null())
                    .expect("rebinding backend 0's address");
                let handle = server.handle();
                let thread = scope.spawn(move || server.run());
                (handle, thread)
            })
        });

        let summary = run_load(&LoadConfig {
            addr: front,
            model: model_name.clone(),
            shape,
            connections,
            mode: LoadMode::Open {
                rate_fps,
                duration_s,
            },
            deadline_us: (load_deadline_ms * 1e3).max(0.0) as u64,
            seed,
            recv_grace: Duration::from_secs(5),
        });

        // Under the drill, give the probes a chance to readmit the
        // restarted backend before the books close.
        if failover {
            let deadline = Instant::now() + Duration::from_secs(10);
            while Instant::now() < deadline && !gh.backend_healthy(0) {
                std::thread::sleep(Duration::from_millis(20));
            }
        }
        gh.shutdown();
        let gateway_result = gateway_thread.join().expect("gateway thread");

        if let Some(drill) = drill {
            let (handle, thread) = drill.join().expect("failover drill thread");
            handle.shutdown();
            thread
                .join()
                .expect("restarted backend thread")
                .expect("restarted backend serves");
        }
        for (handle, thread) in handles.iter().zip(backend_threads) {
            if let Some(thread) = thread {
                handle.shutdown();
                thread
                    .join()
                    .expect("backend thread")
                    .expect("backend serves");
            }
        }
        (gateway_result, summary)
    });
    let report = gateway_result.map_err(|e| format!("gateway failed: {e}"))?;
    let events = recorder.drain();

    print_load_summary(&summary, "text")?;
    print_gateway_report(&report, "text")?;
    println!("  {} event(s) recorded", events.len());

    // The floors. Any violation is a red CI.
    let mut failures: Vec<String> = Vec::new();
    if summary.protocol_errors > 0 {
        failures.push(format!(
            "client decoded {} malformed frame(s)",
            summary.protocol_errors
        ));
    }
    if report.protocol_errors > 0 {
        failures.push(format!(
            "gateway dropped {} connection(s) on protocol errors",
            report.protocol_errors
        ));
    }
    if summary.io_errors > 0 {
        failures.push(format!(
            "{} socket error(s) on the client",
            summary.io_errors
        ));
    }
    if summary.missing > 0 {
        failures.push(format!(
            "{} request(s) never got a response",
            summary.missing
        ));
    }
    if !report.conservation_holds() {
        failures.push(format!(
            "request conservation violated: received {} != ok {} + rejected {}",
            report.received,
            report.answered_ok,
            report.rejects.total()
        ));
    }
    if summary.hit_pct() < min_hit_pct {
        failures.push(format!(
            "hit rate {:.2}% below the {min_hit_pct:.2}% floor",
            summary.hit_pct()
        ));
    }
    if failover {
        if report.backends[0].ejections == 0 {
            failures.push("killed backend was never ejected".to_string());
        }
        if report.backends[0].readmissions == 0 {
            failures.push("restarted backend was never readmitted".to_string());
        }
        if !report.backends[0].healthy_at_exit {
            failures.push("restarted backend not healthy at exit".to_string());
        }
    }
    if failures.is_empty() {
        println!(
            "gateway-soak: PASS ({:.2}% hits >= {min_hit_pct:.2}% floor, zero protocol errors, \
             conservation holds{})",
            summary.hit_pct(),
            if failover {
                ", failover drill survived"
            } else {
                ""
            }
        );
        Ok(())
    } else {
        Err(format!("gateway-soak FAILED: {}", failures.join("; ")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["--model", "cnv-w2a2", "--runs", "5"]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let parsed = parse_flags(&args).expect("parses");
        assert_eq!(parsed.get("model").map(String::as_str), Some("cnv-w2a2"));
        assert_eq!(parsed.get("runs").map(String::as_str), Some("5"));
        assert!(parse_flags(&["oops".to_string()]).is_err());
        assert!(parse_flags(&["--dangling".to_string()]).is_err());
    }

    #[test]
    fn model_and_dataset_lookup() {
        assert!(build_model("cnv-w2a2", Some(DatasetKind::Gtsrb)).is_ok());
        assert!(build_model("lenet-w1a2", None).is_ok());
        assert!(build_model("resnet", None).is_err());
        assert!(parse_dataset("cifar10").is_ok());
        assert!(parse_dataset("imagenet").is_err());
        assert!(parse_scenario("1+2").is_ok());
        assert!(parse_scenario("3").is_err());
    }

    #[test]
    fn summary_command_runs() {
        assert!(cmd_summary(&flags(&[("model", "tiny-w2a2")])).is_ok());
        assert!(cmd_summary(&flags(&[])).is_err());
    }

    #[test]
    fn generate_inspect_simulate_round_trip() {
        let out = std::env::temp_dir().join("adaflow_cli_test_library.json");
        let out_str = out.to_string_lossy().to_string();
        cmd_generate(&flags(&[
            ("model", "cnv-w2a2"),
            ("dataset", "cifar10"),
            ("rates", "0,0.25"),
            ("out", &out_str),
        ]))
        .expect("generate");
        cmd_inspect(&flags(&[("library", &out_str)])).expect("inspect");
        cmd_simulate(&flags(&[
            ("library", &out_str),
            ("scenario", "1"),
            ("policy", "adaflow"),
            ("runs", "2"),
        ]))
        .expect("simulate");
        cmd_simulate(&flags(&[
            ("library", &out_str),
            ("policy", "reconf:145"),
            ("runs", "2"),
        ]))
        .expect("simulate reconf");
        let _ = std::fs::remove_file(out);
    }

    #[test]
    fn trace_command_writes_exports() {
        let lib_path = std::env::temp_dir().join("adaflow_cli_trace_test_library.json");
        let lib_str = lib_path.to_string_lossy().to_string();
        cmd_generate(&flags(&[
            ("model", "cnv-w2a2"),
            ("dataset", "cifar10"),
            ("rates", "0,0.25,0.5"),
            ("out", &lib_str),
        ]))
        .expect("generate");
        let prefix = std::env::temp_dir().join("adaflow_cli_trace_test_run");
        let prefix_str = prefix.to_string_lossy().to_string();
        cmd_trace(&flags(&[
            ("library", &lib_str),
            ("scenario", "2"),
            ("out", &prefix_str),
        ]))
        .expect("trace");
        let chrome = std::fs::read_to_string(format!("{prefix_str}.trace.json")).expect("chrome");
        assert!(chrome.trim_start().starts_with('['));
        assert!(chrome.contains("decision_made"));
        let prom = std::fs::read_to_string(format!("{prefix_str}.prom")).expect("prom");
        assert!(prom.contains("adaflow_decisions_total"));
        let jsonl = std::fs::read_to_string(format!("{prefix_str}.jsonl")).expect("jsonl");
        assert!(jsonl.lines().count() > 10);
        let _ = std::fs::remove_file(lib_path);
        for suffix in ["trace.json", "jsonl", "prom"] {
            let _ = std::fs::remove_file(format!("{prefix_str}.{suffix}"));
        }
    }

    #[test]
    fn serve_command_runs_all_policies() {
        let lib_path = std::env::temp_dir().join("adaflow_cli_serve_test_library.json");
        let lib_str = lib_path.to_string_lossy().to_string();
        cmd_generate(&flags(&[
            ("model", "cnv-w2a2"),
            ("dataset", "cifar10"),
            ("rates", "0,0.25,0.5"),
            ("out", &lib_str),
        ]))
        .expect("generate");
        for policy in ["adaflow", "fixed-max", "flexible-only"] {
            cmd_serve(&flags(&[
                ("library", &lib_str),
                ("scenario", "2"),
                ("policy", policy),
                ("seed", "7"),
                ("check", "1"),
            ]))
            .unwrap_or_else(|e| panic!("serve {policy}: {e}"));
        }
        // Multi-run mean in JSON, custom knobs, shed policies.
        cmd_serve(&flags(&[
            ("library", &lib_str),
            ("scenario", "1+2"),
            ("runs", "2"),
            ("deadline-ms", "200"),
            ("queue-cap", "128"),
            ("shed", "oldest"),
            ("format", "json"),
        ]))
        .expect("serve json");
        assert!(cmd_serve(&flags(&[("library", &lib_str), ("policy", "turbo")])).is_err());
        assert!(cmd_serve(&flags(&[("library", &lib_str), ("shed", "lifo")])).is_err());
        // SV001 hard failure: max-wait beyond the deadline budget.
        assert!(cmd_serve(&flags(&[
            ("library", &lib_str),
            ("deadline-ms", "10"),
            ("batch-wait-ms", "20"),
        ]))
        .is_err());
        let _ = std::fs::remove_file(lib_path);
    }

    #[test]
    fn serve_command_writes_trace_exports() {
        let lib_path = std::env::temp_dir().join("adaflow_cli_serve_trace_library.json");
        let lib_str = lib_path.to_string_lossy().to_string();
        cmd_generate(&flags(&[
            ("model", "cnv-w2a2"),
            ("dataset", "cifar10"),
            ("rates", "0,0.5"),
            ("out", &lib_str),
        ]))
        .expect("generate");
        let prefix = std::env::temp_dir().join("adaflow_cli_serve_trace_run");
        let prefix_str = prefix.to_string_lossy().to_string();
        cmd_serve(&flags(&[
            ("library", &lib_str),
            ("scenario", "2"),
            ("seed", "3"),
            ("out", &prefix_str),
        ]))
        .expect("serve with exports");
        let prom = std::fs::read_to_string(format!("{prefix_str}.prom")).expect("prom");
        assert!(prom.contains("adaflow_requests_enqueued_total"));
        assert!(prom.contains("adaflow_batches_closed_total"));
        let jsonl = std::fs::read_to_string(format!("{prefix_str}.jsonl")).expect("jsonl");
        assert!(jsonl.contains("RequestCompleted"));
        let _ = std::fs::remove_file(lib_path);
        for suffix in ["trace.json", "jsonl", "prom"] {
            let _ = std::fs::remove_file(format!("{prefix_str}.{suffix}"));
        }
    }

    #[test]
    fn fleet_command_runs_routers_and_replays() {
        let lib_path = std::env::temp_dir().join("adaflow_cli_fleet_test_library.json");
        let lib_str = lib_path.to_string_lossy().to_string();
        cmd_generate(&flags(&[
            ("model", "cnv-w2a2"),
            ("dataset", "cifar10"),
            ("rates", "0,0.25,0.5"),
            ("out", &lib_str),
        ]))
        .expect("generate");
        // Heterogeneous fleet, deadline-aware router, bit-determinism
        // replay (`--check`).
        cmd_fleet(&flags(&[
            ("library", &lib_str),
            ("scenario", "2"),
            ("fleet", "adaflow,adaflow,flexible,fixed"),
            ("router", "deadline"),
            ("seed", "7"),
            ("check", "1"),
        ]))
        .expect("fleet deadline-aware with replay");
        // Remaining routers, JSON output, multi-run mean. Round-robin
        // with a deadline warns under FL002, so allow it explicitly.
        for router in ["rr", "jsq", "p2c"] {
            cmd_fleet(&flags(&[
                ("library", &lib_str),
                ("router", router),
                ("runs", "2"),
                ("format", "json"),
                ("allow", "FL002"),
            ]))
            .unwrap_or_else(|e| panic!("fleet {router}: {e}"));
        }
        assert!(cmd_fleet(&flags(&[("library", &lib_str), ("router", "hash")])).is_err());
        assert!(cmd_fleet(&flags(&[("library", &lib_str), ("fleet", "gpu")])).is_err());
        // FL001 hard failure: a zero-device fleet.
        assert!(cmd_fleet(&flags(&[("library", &lib_str), ("fleet", ",")])).is_err());
        let _ = std::fs::remove_file(lib_path);
    }

    #[test]
    fn fleet_command_writes_trace_exports() {
        let lib_path = std::env::temp_dir().join("adaflow_cli_fleet_trace_library.json");
        let lib_str = lib_path.to_string_lossy().to_string();
        cmd_generate(&flags(&[
            ("model", "cnv-w2a2"),
            ("dataset", "cifar10"),
            ("rates", "0,0.5"),
            ("out", &lib_str),
        ]))
        .expect("generate");
        let prefix = std::env::temp_dir().join("adaflow_cli_fleet_trace_run");
        let prefix_str = prefix.to_string_lossy().to_string();
        cmd_fleet(&flags(&[
            ("library", &lib_str),
            ("scenario", "2"),
            ("seed", "3"),
            ("out", &prefix_str),
        ]))
        .expect("fleet with exports");
        let prom = std::fs::read_to_string(format!("{prefix_str}.prom")).expect("prom");
        assert!(prom.contains("adaflow_requests_routed_total"));
        let jsonl = std::fs::read_to_string(format!("{prefix_str}.jsonl")).expect("jsonl");
        assert!(jsonl.contains("RequestRouted"));
        let chrome = std::fs::read_to_string(format!("{prefix_str}.trace.json")).expect("chrome");
        assert!(chrome.trim_start().starts_with('['));
        let _ = std::fs::remove_file(lib_path);
        for suffix in ["trace.json", "jsonl", "prom"] {
            let _ = std::fs::remove_file(format!("{prefix_str}.{suffix}"));
        }
    }

    #[test]
    fn report_command_covers_serve_and_fleet_modes() {
        let lib_path = std::env::temp_dir().join("adaflow_cli_report_test_library.json");
        let lib_str = lib_path.to_string_lossy().to_string();
        cmd_generate(&flags(&[
            ("model", "cnv-w2a2"),
            ("dataset", "cifar10"),
            ("rates", "0,0.5"),
            ("out", &lib_str),
        ]))
        .expect("generate");
        // Serve mode with the determinism replay.
        cmd_report(&flags(&[
            ("library", &lib_str),
            ("mode", "serve"),
            ("scenario", "2"),
            ("seed", "7"),
            ("check", "1"),
        ]))
        .expect("serve report with replay");
        // Fleet mode in JSON with full exports.
        let prefix = std::env::temp_dir().join("adaflow_cli_report_test_run");
        let prefix_str = prefix.to_string_lossy().to_string();
        cmd_report(&flags(&[
            ("library", &lib_str),
            ("mode", "fleet"),
            ("scenario", "2"),
            ("seed", "7"),
            ("format", "json"),
            ("out", &prefix_str),
        ]))
        .expect("fleet report with exports");
        let chrome = std::fs::read_to_string(format!("{prefix_str}.trace.json")).expect("chrome");
        assert!(chrome.contains("\"b\""), "async span begins exported");
        assert!(chrome.contains("\"e\""), "async span ends exported");
        assert!(chrome.contains("queue_wait"), "stage spans exported");
        let jsonl = std::fs::read_to_string(format!("{prefix_str}.jsonl")).expect("jsonl");
        assert!(jsonl.contains("TraceSpan"));
        let metrics =
            std::fs::read_to_string(format!("{prefix_str}.metrics.prom")).expect("metrics");
        assert!(metrics.contains("adaflow_requests_completed_total"));
        assert!(metrics.contains("quantile"));
        // Flag validation.
        assert!(cmd_report(&flags(&[("library", &lib_str), ("mode", "edge")])).is_err());
        assert!(cmd_report(&flags(&[("library", &lib_str), ("slo-target", "1.5")])).is_err());
        assert!(cmd_report(&flags(&[
            ("library", &lib_str),
            ("slo-objective", "uptime")
        ]))
        .is_err());
        let _ = std::fs::remove_file(lib_path);
        for suffix in ["trace.json", "jsonl", "prom", "metrics.prom"] {
            let _ = std::fs::remove_file(format!("{prefix_str}.{suffix}"));
        }
    }

    #[test]
    fn lint_covers_fleet_config_rules() {
        // FL002 error: deadline-aware router without a deadline budget.
        assert!(cmd_lint(&flags(&[("router", "deadline"), ("deadline-ms", "0")])).is_err());
        // ... which --allow suppresses (SV001 also fires on a zero
        // budget: the 20 ms batch wait cannot fit inside it).
        assert!(cmd_lint(&flags(&[
            ("router", "deadline"),
            ("deadline-ms", "0"),
            ("allow", "FL002,SV001"),
        ]))
        .is_ok());
        // FL002 warn (round-robin + deadline) stays green by default and
        // escalates under --deny.
        assert!(cmd_lint(&flags(&[("router", "rr")])).is_ok());
        assert!(cmd_lint(&flags(&[("router", "rr"), ("deny", "FL002")])).is_err());
        // FL001 error: empty fleet.
        assert!(cmd_lint(&flags(&[("fleet", ",")])).is_err());
        // Fleet and graph rules combine into one run.
        assert!(cmd_lint(&flags(&[("model", "tiny-w2a2"), ("router", "jsq")])).is_ok());
        // Without fleet flags, --model stays mandatory.
        assert!(cmd_lint(&flags(&[])).is_err());
    }

    #[test]
    fn lint_explain_resolves_every_code() {
        // Single code, case-insensitive, and the full catalog.
        assert!(cmd_lint(&flags(&[("explain", "AF006")])).is_ok());
        assert!(cmd_lint(&flags(&[("explain", "df005")])).is_ok());
        assert!(cmd_lint(&flags(&[("explain", "all")])).is_ok());
        // Unknown codes fail with a pointer to `--explain all`.
        let err = cmd_lint(&flags(&[("explain", "ZZ999")])).unwrap_err();
        assert!(err.contains("unknown rule code"), "{err}");
    }

    #[test]
    fn every_registered_code_has_an_explanation() {
        // Graph rules: straight from the loaded catalog.
        for (code, _) in adaflow_verify::Verifier::new().catalog() {
            assert!(adaflow_verify::explain(code).is_some(), "no doc for {code}");
        }
        // Dataflow, serving and fleet rules emit by code string; lint a
        // model plus a deliberately broken fleet/serving config and check
        // every fired code resolves (covers DF001–DF005, FL and SV codes).
        let graph = build_model("cnv-w2a2", None).expect("builds");
        let report = lint_graph(&graph, &adaflow_verify::LintConfig::default()).expect("lints");
        let fleet = parse_fleet_config(&flags(&[("router", "deadline"), ("deadline-ms", "0")]))
            .expect("parses");
        let mut fired: std::collections::BTreeSet<String> =
            report.codes().iter().map(ToString::to_string).collect();
        let fleet_report = fleet.validate(adaflow_verify::LintConfig::default());
        let serve_report = fleet
            .serve
            .validate(1000.0, 1.0, adaflow_verify::LintConfig::default());
        fired.extend(fleet_report.codes().iter().map(ToString::to_string));
        fired.extend(serve_report.codes().iter().map(ToString::to_string));
        assert!(fired.iter().any(|c| c.starts_with("DF")));
        assert!(fired.iter().any(|c| c.starts_with("FL")));
        for code in &fired {
            assert!(
                adaflow_verify::explain(code).is_some(),
                "emitted code {code} has no --explain entry"
            );
        }
    }

    #[test]
    fn lint_passes_builtin_models() {
        assert!(cmd_lint(&flags(&[("model", "tiny-w2a2")])).is_ok());
        assert!(cmd_lint(&flags(&[
            ("model", "cnv-w2a2"),
            ("rates", "0,0.25"),
            ("format", "json"),
        ]))
        .is_ok());
        assert!(cmd_lint(&flags(&[("model", "resnet")])).is_err());
        assert!(cmd_lint(&flags(&[("model", "tiny-w2a2"), ("format", "yaml")])).is_err());
    }

    #[test]
    fn lint_policy_flags_are_plumbed_through() {
        // Built-in models carry no warnings, so deny cannot fail them; the
        // flags must still parse and the lint stay clean either way.
        assert!(cmd_lint(&flags(&[("model", "cnv-w1a2"), ("deny", "AF003,DF001")])).is_ok());
        assert!(cmd_lint(&flags(&[("model", "cnv-w1a2"), ("allow", "af006,df003")])).is_ok());
    }

    #[test]
    fn unknown_command_reports_usage() {
        let err = run(&["frobnicate".to_string()]).unwrap_err();
        assert!(err.contains("unknown command"));
        assert!(err.contains("usage:"));
    }

    #[test]
    fn serve_live_gate_refuses_denied_config() {
        // Batch wait over half the deadline fires SV001 at Warn; denying
        // the code must refuse to open the socket at all.
        let err = cmd_serve_live(&flags(&[
            ("model", "tiny-w2a2"),
            ("addr", "127.0.0.1:0"),
            ("deadline-ms", "250"),
            ("batch-wait-ms", "150"),
            ("deny", "SV001"),
        ]))
        .expect_err("denied SV001 must block startup");
        assert!(err.contains("refusing to serve"), "{err}");
    }

    #[test]
    fn load_command_validates_flags() {
        assert!(
            cmd_load(&flags(&[("model", "tiny-w2a2")])).is_err(),
            "addr required"
        );
        let err = cmd_load(&flags(&[("addr", "not-an-addr"), ("model", "tiny-w2a2")]))
            .expect_err("bad addr");
        assert!(err.contains("bad --addr"), "{err}");
        assert!(cmd_load(&flags(&[
            ("addr", "127.0.0.1:1"),
            ("model", "tiny-w2a2"),
            ("format", "yaml"),
        ]))
        .is_err());
    }

    #[test]
    fn soak_command_passes_its_floors_on_tiny() {
        // A short real soak: in-process server, open-loop load, floors on.
        cmd_soak(&flags(&[
            ("model", "tiny-w2a2"),
            ("rate-fps", "60"),
            ("duration-s", "1"),
            ("connections", "2"),
            ("min-hit-pct", "50"),
            ("seed", "11"),
        ]))
        .expect("soak floors hold");
    }
}
