//! Oracle vs. monitored workload knowledge.
//!
//! The paper's Runtime Manager is driven by "performance monitors" that
//! estimate the incoming FPS; the headline experiments (like most such
//! evaluations) give the manager oracle knowledge of each workload segment.
//! This study quantifies the estimation gap: the same AdaFlow policy driven
//! by a sliding-window FPS monitor with change-detection hysteresis.
//!
//! ```text
//! cargo run --release -p adaflow-bench --bin monitoring [--runs N]
//! ```

use adaflow::RuntimeConfig;
use adaflow_bench::{header, row, runs_from_args, Combo};
use adaflow_edge::{
    AdaFlowPolicy, Experiment, MonitoredPolicy, RateMonitor, Scenario, WorkloadSpec,
};
use adaflow_model::QuantSpec;
use adaflow_nn::DatasetKind;

fn main() {
    let runs = runs_from_args().min(50);
    let combo = Combo {
        dataset: DatasetKind::Cifar10,
        quant: QuantSpec::w2a2(),
    };
    let library = combo.build_library();
    println!(
        "Oracle vs monitored workload estimation ({}, {runs} runs)\n",
        combo.label()
    );
    println!(
        "{}",
        header(&[
            "scenario",
            "estimator",
            "loss (%)",
            "QoE (%)",
            "switches",
            "eff (inf/J)"
        ])
    );

    for scenario in [
        Scenario::Stable,
        Scenario::Unpredictable,
        Scenario::Shifting,
    ] {
        let experiment = Experiment::new(&library, WorkloadSpec::paper_edge(scenario)).runs(runs);
        let oracle = experiment.run_adaflow(RuntimeConfig::default());
        let lib = &library;
        let monitored = experiment.run_with(|| {
            Box::new(MonitoredPolicy::new(
                AdaFlowPolicy::new(lib, RuntimeConfig::default()),
                RateMonitor::default_edge(),
            ))
        });
        for (name, m) in [("oracle", &oracle), ("monitored", &monitored)] {
            println!(
                "{}",
                row(&[
                    scenario.name().to_string(),
                    name.to_string(),
                    format!("{:.2}", m.frame_loss_pct),
                    format!("{:.2}", m.qoe_pct),
                    format!("{:.1}", m.model_switches),
                    format!("{:.0}", m.inferences_per_joule),
                ])
            );
        }
    }
    println!();
    println!(
        "Reading: the monitored manager reacts with one estimation window of lag and \
         filters small fluctuations through its hysteresis, trading a little frame loss \
         for fewer switches."
    );
}
