//! # adaflow-bench — benchmark harness for every table and figure
//!
//! One binary per evaluation artifact of the paper, plus Criterion benches
//! of the framework's hot paths:
//!
//! | Paper artifact | Binary | What it prints |
//! |---|---|---|
//! | Fig. 1(a) | `fig1a` | accuracy & FPS vs pruning rate, CNVW2A2/CIFAR-10 |
//! | Fig. 1(b) | `fig1b` | frame-loss traces at reconfiguration times 0–362 ms |
//! | Fig. 5(a) | `fig5a` | LUT/FF/BRAM/DSP for FINN vs Flexible vs Fixed sweep |
//! | Fig. 5(b,c) | `fig5bc` | accuracy vs energy/inference, CIFAR-10 & GTSRB |
//! | Table I | `table1` | frame loss, QoE, power, power efficiency for all four dataset/model pairs × both scenarios |
//! | Fig. 6(a,b) | `fig6` | frame-loss and QoE traces for Scenarios 1, 2, 1+2 with model-switch annotations |
//!
//! Run a binary with `cargo run --release -p adaflow-bench --bin table1`.
//! All binaries accept `--runs N` where applicable (default: the paper's
//! 100 repetitions).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use adaflow::{Library, LibraryGenerator};
use adaflow_model::{topology, CnnGraph, QuantSpec};
use adaflow_nn::DatasetKind;

/// A dataset/model combination evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Combo {
    /// Dataset.
    pub dataset: DatasetKind,
    /// Quantization variant.
    pub quant: QuantSpec,
}

impl Combo {
    /// The four combinations of Table I, in the paper's row order.
    #[must_use]
    pub fn all() -> [Combo; 4] {
        [
            Combo {
                dataset: DatasetKind::Cifar10,
                quant: QuantSpec::w2a2(),
            },
            Combo {
                dataset: DatasetKind::Gtsrb,
                quant: QuantSpec::w2a2(),
            },
            Combo {
                dataset: DatasetKind::Cifar10,
                quant: QuantSpec::w1a2(),
            },
            Combo {
                dataset: DatasetKind::Gtsrb,
                quant: QuantSpec::w1a2(),
            },
        ]
    }

    /// Paper-style display name, e.g. `CIFAR-10 / CNVW2A2`.
    #[must_use]
    pub fn label(&self) -> String {
        let ds = match self.dataset {
            DatasetKind::Cifar10 => "CIFAR-10",
            DatasetKind::Gtsrb => "GTSRB",
        };
        format!("{ds} / CNV{}", self.quant)
    }

    /// Builds the initial (unpruned) CNN graph of this combination.
    ///
    /// # Panics
    ///
    /// Never panics for the four paper combinations.
    #[must_use]
    pub fn initial_graph(&self) -> CnnGraph {
        let classes = self.dataset.classes();
        topology::cnv(self.quant, classes)
            .build()
            .expect("CNV reference topology builds")
            .renamed(format!(
                "cnv-{}-{}",
                self.quant.to_string().to_lowercase(),
                self.dataset.short_name()
            ))
    }

    /// Generates the AdaFlow library for this combination with the paper's
    /// evaluation setup (18 pruning rates, ZCU104).
    ///
    /// # Panics
    ///
    /// Panics if generation fails (cannot happen for the reference setups).
    #[must_use]
    pub fn build_library(&self) -> Library {
        LibraryGenerator::default_edge_setup()
            .generate(&self.initial_graph(), self.dataset)
            .expect("library generation succeeds for reference setups")
    }
}

/// Parses a `--runs N` argument from the process args, defaulting to the
/// paper's 100 repetitions.
#[must_use]
pub fn runs_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--runs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(100)
}

/// Formats a markdown-style table row.
#[must_use]
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Formats a header + separator for a markdown-style table.
#[must_use]
pub fn header(cells: &[&str]) -> String {
    let head = row(&cells.iter().map(|c| (*c).to_string()).collect::<Vec<_>>());
    let sep = format!("|{}", cells.iter().map(|_| "---|").collect::<String>());
    format!("{head}\n{sep}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_combos_in_paper_order() {
        let combos = Combo::all();
        assert_eq!(combos[0].label(), "CIFAR-10 / CNVW2A2");
        assert_eq!(combos[1].label(), "GTSRB / CNVW2A2");
        assert_eq!(combos[3].label(), "GTSRB / CNVW1A2");
    }

    #[test]
    fn initial_graphs_build() {
        for combo in Combo::all() {
            let g = combo.initial_graph();
            assert_eq!(g.conv_layers().count(), 6);
        }
    }

    #[test]
    fn table_formatting() {
        let h = header(&["a", "b"]);
        assert!(h.contains("| a | b |"));
        assert!(h.contains("|---|---|"));
        assert_eq!(row(&["1".into(), "2".into()]), "| 1 | 2 |");
    }
}
