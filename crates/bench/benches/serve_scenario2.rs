//! Criterion bench: the request-level serving loop on Scenario 2 — the
//! discrete-event engine (arrival generation, admission, dynamic batching,
//! pressure-driven control) per policy, plus arrival generation alone.
//!
//! Set `ADAFLOW_BENCH_SMOKE=1` to run a fast configuration (short horizon,
//! fewer devices, tight measurement window) — used as the CI smoke check.
//! The default full mode serves the paper's 20-device 25-second trace
//! (~15 k requests per run).

use adaflow::{LibraryGenerator, RuntimeConfig};
use adaflow_edge::{Scenario, WorkloadSpec};
use adaflow_nn::DatasetKind;
use adaflow_serve::{
    generate_requests, AdaFlowServePolicy, FixedMaxPolicy, FlexibleOnlyPolicy, ServeConfig,
    ServeEngine, ServePolicy,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn smoke_mode() -> bool {
    std::env::var("ADAFLOW_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

fn spec() -> WorkloadSpec {
    if smoke_mode() {
        WorkloadSpec {
            devices: 5,
            fps_per_device: 30.0,
            duration_s: 3.0,
            scenario: Scenario::Unpredictable,
        }
    } else {
        WorkloadSpec::paper_edge(Scenario::Unpredictable)
    }
}

fn bench_serve(c: &mut Criterion) {
    let library = LibraryGenerator::default_edge_setup()
        .generate(
            &adaflow_model::topology::cnv_w2a2_cifar10().expect("builds"),
            DatasetKind::Cifar10,
        )
        .expect("generates");
    let spec = spec();
    let engine = ServeEngine::new(ServeConfig::default());
    let tag = if smoke_mode() { "smoke" } else { "paper" };

    for name in ["adaflow", "fixed-max", "flexible-only"] {
        c.bench_function(&format!("serve_requests_{name}_scenario-2_{tag}"), |b| {
            b.iter(|| {
                let mut policy: Box<dyn ServePolicy + '_> = match name {
                    "adaflow" => Box::new(
                        AdaFlowServePolicy::new(&library, RuntimeConfig::default())
                            .with_deadline(ServeConfig::default().deadline_s),
                    ),
                    "fixed-max" => Box::new(FixedMaxPolicy::new(&library)),
                    _ => Box::new(FlexibleOnlyPolicy::new(&library, RuntimeConfig::default())),
                };
                let summary = engine.run(&spec, black_box(7), policy.as_mut());
                assert!(summary.conservation_holds());
                summary
            });
        });
    }

    c.bench_function(&format!("serve_generate_requests_{tag}"), |b| {
        b.iter(|| generate_requests(&spec, black_box(7)).len());
    });
}

criterion_group! {
    name = benches;
    // Full serving runs are macro-benchmarks; keep sampling CI-friendly,
    // and tighter still in smoke mode.
    config = {
        let c = Criterion::default().sample_size(10);
        if smoke_mode() {
            c.measurement_time(Duration::from_millis(400))
                .warm_up_time(Duration::from_millis(100))
        } else {
            c
        }
    };
    targets = bench_serve
}
criterion_main!(benches);
