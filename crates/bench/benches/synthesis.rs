//! Criterion bench: the dataflow compilation + synthesis path behind
//! Fig. 5(a) (per-accelerator resource/timing/power estimation), plus the
//! streaming pipeline simulation standing in for Verilator runs.

use adaflow_dataflow::{AcceleratorKind, DataflowAccelerator, StreamSimulator};
use adaflow_hls::{synthesize, FpgaDevice};
use adaflow_model::topology;
use adaflow_pruning::FinnConfig;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_synthesis(c: &mut Criterion) {
    let graph = topology::cnv_w2a2_cifar10().expect("builds");
    let folding = FinnConfig::cnv_reference(&graph).expect("valid");
    let device = FpgaDevice::zcu104();

    c.bench_function("compile_finn_cnv", |b| {
        b.iter(|| {
            DataflowAccelerator::compile(
                black_box(&graph),
                black_box(&folding),
                AcceleratorKind::Finn,
            )
            .expect("compiles")
        });
    });

    let accel =
        DataflowAccelerator::compile(&graph, &folding, AcceleratorKind::Finn).expect("compiles");
    c.bench_function("synthesize_cnv_zcu104", |b| {
        b.iter(|| synthesize(black_box(&accel), black_box(&device)).expect("synthesizes"));
    });

    let flexible = DataflowAccelerator::compile(&graph, &folding, AcceleratorKind::FlexiblePruning)
        .expect("compiles");
    c.bench_function("synthesize_flexible_cnv_zcu104", |b| {
        b.iter(|| synthesize(black_box(&flexible), black_box(&device)).expect("synthesizes"));
    });

    c.bench_function("stream_simulate_64_frames", |b| {
        let sim = StreamSimulator::new(&accel, 2);
        b.iter(|| sim.run(black_box(64)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_synthesis
}
criterion_main!(benches);
