//! Criterion bench: the design-time pipeline behind Fig. 1(a) — the
//! dataflow-aware pruning sweep and accuracy scoring.

use adaflow_model::{topology, QuantSpec};
use adaflow_nn::{
    AccuracyModel, BatchRunner, ConvStrategy, DatasetKind, DatasetSpec, Engine, SyntheticDataset,
};
use adaflow_pruning::{DataflowAwarePruner, FinnConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_pruning(c: &mut Criterion) {
    let graph = topology::cnv_w2a2_cifar10().expect("builds");
    let folding = FinnConfig::cnv_reference(&graph).expect("valid");
    let pruner = DataflowAwarePruner::new(folding);

    c.bench_function("prune_cnv_25pct", |b| {
        b.iter(|| {
            pruner
                .prune(black_box(&graph), black_box(0.25))
                .expect("prunes");
        });
    });

    c.bench_function("prune_cnv_sweep_18_rates", |b| {
        let rates: Vec<f64> = (0..18).map(|s| s as f64 * 0.05).collect();
        b.iter(|| {
            pruner
                .prune_sweep(black_box(&graph), black_box(&rates))
                .expect("sweeps");
        });
    });

    c.bench_function("accuracy_model_eval", |b| {
        let curve = AccuracyModel::calibrated(DatasetKind::Cifar10, QuantSpec::w2a2());
        b.iter(|| {
            let mut acc = 0.0;
            for step in 0..18 {
                acc += curve.accuracy_at(black_box(step as f64 * 0.05));
            }
            acc
        });
    });

    // Batched inference over the pruned model: the design-time accuracy
    // check a pruning sweep performs per candidate, now through the
    // multi-threaded batch runner.
    c.bench_function("pruned_cnv_batch16_inference", |b| {
        let pruned = pruner.prune(&graph, 0.25).expect("prunes");
        let data = SyntheticDataset::new(DatasetSpec::cifar10_like(), 7);
        let images: Vec<_> = data.batch(0, 16).into_iter().map(|s| s.image).collect();
        let runner = BatchRunner::new(
            Engine::new(&pruned.graph)
                .expect("engine")
                .with_strategy(ConvStrategy::Im2col),
        );
        b.iter(|| runner.run(black_box(&images)).expect("batch"));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pruning
}
criterion_main!(benches);
