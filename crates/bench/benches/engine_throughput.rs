//! Criterion bench: batched inference throughput of the integer engine.
//!
//! Compares the execution paths over the same image batch:
//!
//! 1. `baseline` — the pre-optimization default: direct convolution with a
//!    fresh allocation set per image (`Engine::run` on `ConvStrategy::Direct`);
//! 2. `scratch` — im2col + blocked integer GEMM with one reusable
//!    [`EngineScratch`] arena (`run_with_scratch`, zero per-image allocation);
//! 3. `packed` — bit-packed popcount MVTU kernels (`ConvStrategy::Packed`)
//!    on the runtime-dispatched backend, same reused scratch arena;
//! 4. `batch_runner` — the packed path sharded across scoped worker
//!    threads ([`BatchRunner`] with one scratch per worker).
//!
//! All paths are asserted bit-identical before any timing starts.
//!
//! Set `ADAFLOW_BENCH_SMOKE=1` to run a fast configuration (tiny topology,
//! batch 8, short measurement window) — used as the CI smoke check. The
//! default full mode measures CNV-W2A2 on a CIFAR-10-like batch of 64.
//! `ADAFLOW_FORCE_SCALAR=1` pins the packed variants to the portable SWAR
//! kernels for an apples-to-apples SIMD ablation.

use adaflow_model::prelude::*;
use adaflow_nn::prelude::*;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn smoke_mode() -> bool {
    std::env::var("ADAFLOW_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

struct Setup {
    graph: CnnGraph,
    images: Vec<Activations>,
    tag: &'static str,
}

fn setup() -> Setup {
    if smoke_mode() {
        let graph = topology::tiny(QuantSpec::w2a2(), 4).expect("builds");
        let data = SyntheticDataset::new(DatasetSpec::tiny(4), 42);
        let images = data.batch(0, 8).into_iter().map(|s| s.image).collect();
        Setup {
            graph,
            images,
            tag: "tiny_batch8",
        }
    } else {
        let graph = topology::cnv_w2a2_cifar10().expect("builds");
        let data = SyntheticDataset::new(DatasetSpec::cifar10_like(), 42);
        let images = data.batch(0, 64).into_iter().map(|s| s.image).collect();
        Setup {
            graph,
            images,
            tag: "cnv_batch64",
        }
    }
}

fn engine(graph: &CnnGraph, strategy: ConvStrategy) -> Engine<'_> {
    Engine::new(graph).expect("engine").with_strategy(strategy)
}

/// Labels via one engine with a reused scratch arena.
fn scratch_labels(engine: &Engine, images: &[Activations]) -> Vec<usize> {
    let mut scratch = engine.scratch();
    images
        .iter()
        .map(|img| {
            engine
                .run_with_scratch(img, &mut scratch)
                .expect("runs")
                .label
        })
        .collect()
}

/// The pre-optimization path: direct convolution, fresh allocations per run.
fn baseline_labels(graph: &CnnGraph, images: &[Activations]) -> Vec<usize> {
    let engine = engine(graph, ConvStrategy::Direct);
    images
        .iter()
        .map(|img| engine.run(img).expect("runs").label)
        .collect()
}

fn bench_engine_throughput(c: &mut Criterion) {
    let Setup { graph, images, tag } = setup();
    let backend = Engine::new(&graph).expect("engine").packed_backend();

    // Bit-exactness gate: every path must agree before timing means
    // anything. The direct path is the oracle.
    let baseline = baseline_labels(&graph, &images);
    for strategy in [
        ConvStrategy::Im2col,
        ConvStrategy::Packed,
        ConvStrategy::Auto,
    ] {
        let labels = scratch_labels(&engine(&graph, strategy), &images);
        assert_eq!(baseline, labels, "{strategy:?} diverged from baseline");
    }
    for threads in [1, 2, 0] {
        let runner = BatchRunner::new(engine(&graph, ConvStrategy::Packed)).with_threads(threads);
        let labels = runner.run(&images).expect("batch");
        assert_eq!(
            baseline, labels,
            "batch runner with {threads} threads diverged from baseline"
        );
    }

    c.bench_function(&format!("engine_baseline_direct_{tag}"), |b| {
        b.iter(|| baseline_labels(black_box(&graph), black_box(&images)));
    });

    c.bench_function(&format!("engine_scratch_im2col_{tag}"), |b| {
        let engine = engine(&graph, ConvStrategy::Im2col);
        let mut scratch = engine.scratch();
        b.iter(|| {
            black_box(&images)
                .iter()
                .map(|img| {
                    engine
                        .run_with_scratch(img, &mut scratch)
                        .expect("runs")
                        .label
                })
                .collect::<Vec<_>>()
        });
    });

    c.bench_function(
        &format!("engine_scratch_packed_{}_{tag}", backend.label()),
        |b| {
            let engine = engine(&graph, ConvStrategy::Packed);
            let mut scratch = engine.scratch();
            b.iter(|| {
                black_box(&images)
                    .iter()
                    .map(|img| {
                        engine
                            .run_with_scratch(img, &mut scratch)
                            .expect("runs")
                            .label
                    })
                    .collect::<Vec<_>>()
            });
        },
    );

    c.bench_function(
        &format!("engine_batch_runner_packed_{}_{tag}", backend.label()),
        |b| {
            let runner = BatchRunner::new(engine(&graph, ConvStrategy::Packed));
            b.iter(|| runner.run(black_box(&images)).expect("batch"));
        },
    );
}

fn config() -> Criterion {
    if smoke_mode() {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(20))
            .measurement_time(Duration::from_millis(200))
    } else {
        Criterion::default()
            .sample_size(10)
            .warm_up_time(Duration::from_millis(500))
            .measurement_time(Duration::from_secs(8))
    }
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_engine_throughput
}
criterion_main!(benches);
