//! Criterion bench: the cost of causal request tracing.
//!
//! Measures the serving engine on Scenario 2 under three telemetry
//! configurations:
//!
//! * `disabled` — the default [`SinkHandle`] (null sink): span emission is
//!   a single `enabled()` branch per completed batch. Budget: < 2× the
//!   PR 1 `telemetry_overhead` NullSink cost — i.e. indistinguishable from
//!   the untraced engine.
//! * `recorder` — a ring-buffer recorder receiving the full lifecycle
//!   stream plus one span tree per completed request.
//! * `registry` — a live [`RegistrySink`] folding every event into the
//!   streaming metrics registry (counters, histograms, tumbling windows).
//!
//! Set `ADAFLOW_BENCH_SMOKE=1` for the fast CI configuration.

use adaflow::{LibraryGenerator, RuntimeConfig};
use adaflow_edge::{Scenario, WorkloadSpec};
use adaflow_nn::DatasetKind;
use adaflow_serve::{AdaFlowServePolicy, ServeConfig, ServeEngine};
use adaflow_telemetry::{RegistryConfig, RegistrySink, SinkHandle};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn smoke_mode() -> bool {
    std::env::var("ADAFLOW_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

fn spec() -> WorkloadSpec {
    if smoke_mode() {
        WorkloadSpec {
            devices: 5,
            fps_per_device: 30.0,
            duration_s: 3.0,
            scenario: Scenario::Unpredictable,
        }
    } else {
        WorkloadSpec::paper_edge(Scenario::Unpredictable)
    }
}

fn bench_tracing(c: &mut Criterion) {
    let library = LibraryGenerator::default_edge_setup()
        .generate(
            &adaflow_model::topology::cnv_w2a2_cifar10().expect("builds"),
            DatasetKind::Cifar10,
        )
        .expect("generates");
    let spec = spec();
    let tag = if smoke_mode() { "smoke" } else { "paper" };
    let run = |engine: &ServeEngine| {
        let mut policy = AdaFlowServePolicy::new(&library, RuntimeConfig::default())
            .with_deadline(ServeConfig::default().deadline_s);
        let summary = engine.run(&spec, black_box(7), &mut policy);
        assert!(summary.conservation_holds());
        summary
    };

    c.bench_function(&format!("tracing_disabled_scenario-2_{tag}"), |b| {
        let engine = ServeEngine::new(ServeConfig::default());
        b.iter(|| run(&engine));
    });

    c.bench_function(&format!("tracing_recorder_scenario-2_{tag}"), |b| {
        b.iter(|| {
            let (sink, recorder) = SinkHandle::recorder(1 << 18);
            let engine = ServeEngine::new(ServeConfig::default()).with_sink(sink);
            let summary = run(&engine);
            black_box(recorder.drain().len());
            summary
        });
    });

    c.bench_function(&format!("tracing_registry_scenario-2_{tag}"), |b| {
        b.iter(|| {
            let registry = RegistrySink::new(RegistryConfig::default());
            let engine = ServeEngine::new(ServeConfig::default())
                .with_sink(SinkHandle::new(registry.clone()));
            let summary = run(&engine);
            black_box(registry.snapshot().counter("requests_completed"));
            summary
        });
    });
}

criterion_group! {
    name = benches;
    config = {
        let c = Criterion::default().sample_size(10);
        if smoke_mode() {
            c.measurement_time(Duration::from_millis(400))
                .warm_up_time(Duration::from_millis(100))
        } else {
            c
        }
    };
    targets = bench_tracing
}
criterion_main!(benches);
