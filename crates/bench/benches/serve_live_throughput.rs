//! Criterion bench: end-to-end live serving throughput over localhost —
//! wire encode, TCP, admission, dynamic batching and real engine execution
//! per closed-loop batch, measured against one persistent `LiveServer`.
//!
//! Set `ADAFLOW_BENCH_SMOKE=1` for a fast configuration (tiny model, small
//! batches, tight measurement window) — used as the CI smoke check. The
//! default full mode serves CNV-W2A2 on CIFAR-10 shapes.

use adaflow_model::{topology, QuantSpec};
use adaflow_net::{run_load, LiveConfig, LiveServer, LoadConfig};
use adaflow_telemetry::SinkHandle;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn smoke_mode() -> bool {
    std::env::var("ADAFLOW_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

fn bench_live(c: &mut Criterion) {
    let smoke = smoke_mode();
    let tag = if smoke { "smoke" } else { "paper" };
    let graph = if smoke {
        topology::tiny(QuantSpec::w2a2(), 10).expect("builds")
    } else {
        topology::cnv(QuantSpec::w2a2(), 10)
            .build()
            .expect("builds")
    };
    let requests: u64 = if smoke { 8 } else { 64 };

    let config = LiveConfig {
        model_id: "bench".to_string(),
        ..LiveConfig::default()
    };
    let server =
        LiveServer::bind("127.0.0.1:0", &graph, config, SinkHandle::null()).expect("binds");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    let shape = graph.input_shape();

    std::thread::scope(|scope| {
        let server_thread = scope.spawn(move || server.run());

        c.bench_function(
            &format!("serve_live_closed_loop_{requests}req_{tag}"),
            |b| {
                b.iter(|| {
                    let load = LoadConfig::closed(addr, "bench", shape, black_box(requests));
                    let summary = run_load(&load);
                    assert_eq!(summary.ok, requests, "every request served");
                    summary.throughput_rps
                });
            },
        );

        handle.shutdown();
        let report = server_thread
            .join()
            .expect("server thread")
            .expect("clean shutdown");
        assert!(report.summary.conservation_holds());
        assert_eq!(report.protocol_errors, 0);
    });
}

criterion_group! {
    name = benches;
    // Each iteration is a full closed-loop batch over real sockets; keep
    // sampling CI-friendly, and tighter still in smoke mode.
    config = {
        let c = Criterion::default().sample_size(10);
        if smoke_mode() {
            c.measurement_time(Duration::from_millis(400))
                .warm_up_time(Duration::from_millis(100))
        } else {
            c
        }
    };
    targets = bench_live
}
criterion_main!(benches);
