//! Criterion bench: the run-time side behind Table I and Fig. 6 — one full
//! 25-second Edge serving simulation per policy and scenario, plus the
//! Runtime Manager's decision path in isolation.

use adaflow::{LibraryGenerator, RuntimeConfig, RuntimeManager};
use adaflow_dataflow::AcceleratorKind;
use adaflow_edge::{AdaFlowPolicy, EdgeSim, OriginalFinnPolicy, Scenario, SimConfig, WorkloadSpec};
use adaflow_model::topology;
use adaflow_nn::DatasetKind;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_edge(c: &mut Criterion) {
    let library = LibraryGenerator::default_edge_setup()
        .generate(
            &topology::cnv_w2a2_cifar10().expect("builds"),
            DatasetKind::Cifar10,
        )
        .expect("generates");

    for scenario in [
        Scenario::Stable,
        Scenario::Unpredictable,
        Scenario::Shifting,
    ] {
        let spec = WorkloadSpec::paper_edge(scenario);
        let segments = spec.generate(1);
        c.bench_function(&format!("serve_adaflow_{}", scenario.name()), |b| {
            b.iter(|| {
                let mut policy = AdaFlowPolicy::new(&library, RuntimeConfig::default());
                EdgeSim::new(SimConfig::default())
                    .run(&mut policy, black_box(&segments))
                    .0
            });
        });
    }

    let spec = WorkloadSpec::paper_edge(Scenario::Stable);
    let segments = spec.generate(1);
    c.bench_function("serve_original_finn_scenario-1", |b| {
        b.iter(|| {
            let mut policy = OriginalFinnPolicy::new(&library);
            EdgeSim::new(SimConfig::default())
                .run(&mut policy, black_box(&segments))
                .0
        });
    });

    c.bench_function("runtime_manager_decide", |b| {
        let mut manager = RuntimeManager::new(&library, RuntimeConfig::default());
        let mut t = 0.0;
        b.iter(|| {
            t += 0.5;
            manager.decide(black_box(t), black_box(600.0 + (t * 73.0) % 400.0));
        });
    });

    c.bench_function("runtime_manager_select_model", |b| {
        let manager = RuntimeManager::new(&library, RuntimeConfig::default());
        b.iter(|| manager.select_model(black_box(750.0), AcceleratorKind::FixedPruning));
    });

    c.bench_function("generate_library_cnv_cifar10", |b| {
        b.iter(|| {
            LibraryGenerator::default_edge_setup()
                .generate(
                    &topology::cnv_w2a2_cifar10().expect("builds"),
                    DatasetKind::Cifar10,
                )
                .expect("generates");
        });
    });
}

criterion_group! {
    name = benches;
    // Full serving runs and library generation are macro-benchmarks; keep
    // the sample count low so `cargo bench` stays in CI-friendly time.
    config = Criterion::default().sample_size(10);
    targets = bench_edge
}
criterion_main!(benches);
