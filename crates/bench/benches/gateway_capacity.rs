//! Criterion bench: closed-loop capacity through the `adaflow-gateway`
//! routing tier over two live backends, against a direct single-backend
//! baseline — the measured cost (and win) of the extra hop.
//!
//! Set `ADAFLOW_BENCH_SMOKE=1` for a fast configuration (tiny model,
//! few requests, tight measurement window) — used as the CI smoke check.
//! The default full mode serves CNV-W2A2 shapes and sweeps the offered
//! concurrency, tracing the gateway's capacity curve.

use adaflow_gateway::{Gateway, GatewayConfig, GatewayHandle, WarmupSpec};
use adaflow_model::{topology, QuantSpec};
use adaflow_net::{run_load, LiveConfig, LiveServer, LoadConfig, ServerHandle};
use adaflow_telemetry::SinkHandle;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn smoke_mode() -> bool {
    std::env::var("ADAFLOW_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

/// Shuts the gateway and backends down even when a bench assertion
/// panics — otherwise `thread::scope` would wait forever on server
/// threads that nobody asked to stop.
struct ShutdownGuard {
    gateway: GatewayHandle,
    backends: Vec<ServerHandle>,
}

impl Drop for ShutdownGuard {
    fn drop(&mut self) {
        self.gateway.shutdown();
        for handle in &self.backends {
            handle.shutdown();
        }
    }
}

fn bench_gateway(c: &mut Criterion) {
    let smoke = smoke_mode();
    let tag = if smoke { "smoke" } else { "paper" };
    let graph = if smoke {
        topology::tiny(QuantSpec::w2a2(), 10).expect("builds")
    } else {
        topology::cnv(QuantSpec::w2a2(), 10)
            .build()
            .expect("builds")
    };
    let requests: u64 = if smoke { 8 } else { 64 };
    // Closed-loop concurrency sweep: each point drives K parallel
    // connections through the gateway.
    let sweep: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let shape = graph.input_shape();

    let backend_config = || LiveConfig {
        model_id: "bench".to_string(),
        ..LiveConfig::default()
    };
    let b0 = LiveServer::bind("127.0.0.1:0", &graph, backend_config(), SinkHandle::null())
        .expect("binds");
    let b1 = LiveServer::bind("127.0.0.1:0", &graph, backend_config(), SinkHandle::null())
        .expect("binds");
    let backends = [
        b0.local_addr().expect("addr"),
        b1.local_addr().expect("addr"),
    ];
    let (h0, h1) = (b0.handle(), b1.handle());

    let gateway = Gateway::bind(
        "127.0.0.1:0",
        &backends,
        GatewayConfig {
            model_id: "bench".to_string(),
            warmup: Some(WarmupSpec {
                model: "bench".to_string(),
                channels: shape.channels as u16,
                height: shape.height as u16,
                width: shape.width as u16,
                iters: 2,
            }),
            ..GatewayConfig::default()
        },
        SinkHandle::null(),
    )
    .expect("binds");
    let front = gateway.local_addr().expect("addr");
    let gh = gateway.handle();

    std::thread::scope(|scope| {
        let bt0 = scope.spawn(move || b0.run());
        let bt1 = scope.spawn(move || b1.run());
        let gt = scope.spawn(move || gateway.run());
        let guard = ShutdownGuard {
            gateway: gh,
            backends: vec![h0, h1],
        };

        // Baseline: the same closed loop straight at one backend.
        c.bench_function(&format!("direct_1backend_{requests}req_{tag}"), |b| {
            b.iter(|| {
                let load = LoadConfig::closed(backends[0], "bench", shape, black_box(requests));
                let summary = run_load(&load);
                assert_eq!(summary.ok, requests, "every request served: {summary:?}");
                summary.throughput_rps
            });
        });

        for &conns in sweep {
            // Closed-loop `requests` is per connection: K connections
            // each drive their own request chain.
            let expected = requests * conns as u64;
            c.bench_function(
                &format!("gateway_2backends_{conns}conn_{requests}req_{tag}"),
                |b| {
                    b.iter(|| {
                        let mut load =
                            LoadConfig::closed(front, "bench", shape, black_box(requests));
                        load.connections = conns;
                        let summary = run_load(&load);
                        assert_eq!(summary.ok, expected, "every request served: {summary:?}");
                        summary.throughput_rps
                    });
                },
            );
        }

        // Ordering matters on the happy path: drain the gateway fully
        // before the backends go away, or its workers would see the
        // connection drop and record a spurious ejection.
        guard.gateway.shutdown();
        let report = gt.join().expect("gateway thread").expect("clean shutdown");
        assert!(report.conservation_holds());
        assert_eq!(report.protocol_errors, 0);
        assert!(report.backends.iter().all(|b| b.healthy_at_exit));

        drop(guard);
        bt0.join().expect("backend thread").expect("clean shutdown");
        bt1.join().expect("backend thread").expect("clean shutdown");
    });
}

criterion_group! {
    name = benches;
    // Each iteration is a full closed-loop batch over real sockets; keep
    // sampling CI-friendly, and tighter still in smoke mode.
    config = {
        let c = Criterion::default().sample_size(10);
        if smoke_mode() {
            c.measurement_time(Duration::from_millis(400))
                .warm_up_time(Duration::from_millis(100))
        } else {
            c
        }
    };
    targets = bench_gateway
}
criterion_main!(benches);
