//! Criterion bench: telemetry overhead on the serving hot path.
//!
//! Compares a full 25-second `EdgeSim::run` of the AdaFlow policy under
//! Scenario 2 with (a) the default `NullSink` (instrumentation compiled in
//! but disabled — must stay within noise of the pre-telemetry simulator)
//! and (b) a live ring-buffer `Recorder` capturing every event.

use adaflow::{LibraryGenerator, RuntimeConfig};
use adaflow_edge::{AdaFlowPolicy, EdgeSim, Scenario, SimConfig, WorkloadSpec};
use adaflow_model::topology;
use adaflow_nn::DatasetKind;
use adaflow_telemetry::SinkHandle;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_telemetry(c: &mut Criterion) {
    let library = LibraryGenerator::default_edge_setup()
        .generate(
            &topology::cnv_w2a2_cifar10().expect("builds"),
            DatasetKind::Cifar10,
        )
        .expect("generates");
    let segments = WorkloadSpec::paper_edge(Scenario::Unpredictable).generate(1);

    c.bench_function("edge_run_null_sink", |b| {
        b.iter(|| {
            let mut policy = AdaFlowPolicy::new(&library, RuntimeConfig::default());
            EdgeSim::new(SimConfig::default())
                .run(&mut policy, black_box(&segments))
                .0
        });
    });

    c.bench_function("edge_run_recording_sink", |b| {
        b.iter(|| {
            let (sink, recorder) = SinkHandle::recorder(1 << 16);
            let mut policy =
                AdaFlowPolicy::new(&library, RuntimeConfig::default()).with_sink(sink.clone());
            let metrics = EdgeSim::new(SimConfig::default())
                .with_sink(sink)
                .run(&mut policy, black_box(&segments))
                .0;
            black_box(recorder.len());
            metrics
        });
    });
}

criterion_group! {
    name = benches;
    // Each iteration is a full 25 s serving simulation; keep samples low.
    config = Criterion::default().sample_size(20);
    targets = bench_telemetry
}
criterion_main!(benches);
