//! Criterion bench: the fleet discrete-event loop on Scenario 2 — N
//! device cores behind each routing policy, plus the single-device
//! engine as the routing-overhead baseline.
//!
//! Set `ADAFLOW_BENCH_SMOKE=1` to run a fast configuration (short
//! horizon, fewer IoT devices, tight measurement window) — used as the
//! CI fleet smoke check. The default full mode routes the paper's
//! 20-device 25-second trace (~15 k requests per run) across a 4-device
//! heterogeneous fleet.

use adaflow::LibraryGenerator;
use adaflow_edge::{Scenario, WorkloadSpec};
use adaflow_fleet::{FleetConfig, FleetEngine, RouterKind};
use adaflow_nn::DatasetKind;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn smoke_mode() -> bool {
    std::env::var("ADAFLOW_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

fn spec() -> WorkloadSpec {
    if smoke_mode() {
        WorkloadSpec {
            devices: 5,
            fps_per_device: 30.0,
            duration_s: 3.0,
            scenario: Scenario::Unpredictable,
        }
    } else {
        WorkloadSpec::paper_edge(Scenario::Unpredictable)
    }
}

fn bench_fleet(c: &mut Criterion) {
    let library = LibraryGenerator::default_edge_setup()
        .generate(
            &adaflow_model::topology::cnv_w2a2_cifar10().expect("builds"),
            DatasetKind::Cifar10,
        )
        .expect("generates");
    let spec = spec();
    let tag = if smoke_mode() { "smoke" } else { "paper" };

    for router in RouterKind::ALL {
        let config = FleetConfig {
            router,
            ..FleetConfig::default()
        };
        let engine = FleetEngine::new(config);
        c.bench_function(
            &format!("fleet_4dev_{}_scenario-2_{tag}", router.name()),
            |b| {
                b.iter(|| {
                    let summary = engine.run(&library, &spec, black_box(7));
                    assert!(summary.conservation_holds());
                    summary
                });
            },
        );
    }

    // Routing overhead baseline: the same trace through a 1-device fleet.
    let single = FleetEngine::new(FleetConfig {
        devices: vec![adaflow_fleet::DeviceKind::AdaFlow],
        router: RouterKind::RoundRobin,
        ..FleetConfig::default()
    });
    c.bench_function(&format!("fleet_1dev_baseline_scenario-2_{tag}"), |b| {
        b.iter(|| single.run(&library, &spec, black_box(7)).completed);
    });
}

criterion_group! {
    name = benches;
    // Full fleet runs are macro-benchmarks; keep sampling CI-friendly,
    // and tighter still in smoke mode.
    config = {
        let c = Criterion::default().sample_size(10);
        if smoke_mode() {
            c.measurement_time(Duration::from_millis(400))
                .warm_up_time(Duration::from_millis(100))
        } else {
            c
        }
    };
    targets = bench_fleet
}
criterion_main!(benches);
