//! The span taxonomy and the builder that emits span trees.
//!
//! Every request trace is built from the same fixed stage vocabulary, so
//! span ids can simply *be* the stage ordinals: deterministic, unique
//! within a trace, and free of any id-allocator state that could differ
//! between runs. The engines measure all stage boundaries first and emit
//! the whole tree at request completion, which keeps shed requests from
//! leaving orphan spans behind.

use crate::event::EventKind;
use crate::sink::SinkHandle;
use crate::trace::{SpanId, TraceId};
use serde::{Deserialize, Serialize};

/// The causal stages of a request's lifecycle.
///
/// The discriminants are the wire span ids. `Request` is the root; every
/// other stage is its direct child, and the child intervals tile the root:
/// `queue_wait + batch_form + reconfig_stall + compute` equals the
/// end-to-end latency exactly (`route` is a zero-width decision marker at
/// the arrival instant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Root span: arrival to completion.
    Request = 0,
    /// Fleet routing decision (zero-width, at the arrival instant).
    Route = 1,
    /// Arrival to batch close: time spent queued for admission to a batch.
    QueueWait = 2,
    /// Batch close to drain start: coordinator deferral while the batch
    /// waits for a reconfiguration slot (zero when no fabric switch).
    BatchForm = 3,
    /// Drain start to service start: the fabric reconfiguration stall.
    ReconfigStall = 4,
    /// Service start to completion: accelerator compute.
    Compute = 5,
}

impl Stage {
    /// Every stage, in span-id order.
    pub const ALL: [Stage; 6] = [
        Stage::Request,
        Stage::Route,
        Stage::QueueWait,
        Stage::BatchForm,
        Stage::ReconfigStall,
        Stage::Compute,
    ];

    /// The stages that tile the root interval (everything but the root
    /// and the zero-width route marker).
    pub const LEAVES: [Stage; 4] = [
        Stage::QueueWait,
        Stage::BatchForm,
        Stage::ReconfigStall,
        Stage::Compute,
    ];

    /// Stable wire label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Stage::Request => "request",
            Stage::Route => "route",
            Stage::QueueWait => "queue_wait",
            Stage::BatchForm => "batch_form",
            Stage::ReconfigStall => "reconfig_stall",
            Stage::Compute => "compute",
        }
    }

    /// The wire span id (the discriminant).
    #[must_use]
    pub fn span_id(self) -> SpanId {
        SpanId(self as u64)
    }

    /// Parses a wire label back into a stage.
    #[must_use]
    pub fn from_label(label: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.label() == label)
    }
}

/// One closed span, as reconstructed from a [`EventKind::TraceSpan`] event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Owning trace.
    pub trace: TraceId,
    /// This span's id (a [`Stage`] ordinal).
    pub span: SpanId,
    /// Parent span id; `None` marks the root.
    pub parent: Option<SpanId>,
    /// Stage label (see [`Stage::label`]).
    pub stage: String,
    /// Span begin, simulation seconds.
    pub begin_s: f64,
    /// Span end, simulation seconds.
    pub end_s: f64,
    /// Fleet device index that served the request (0 in single-device mode).
    pub device_idx: u32,
}

impl SpanRecord {
    /// The span's length in seconds.
    #[must_use]
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.begin_s
    }

    /// The parsed stage, when the label is one of the fixed taxonomy.
    #[must_use]
    pub fn stage_kind(&self) -> Option<Stage> {
        Stage::from_label(&self.stage)
    }
}

/// Builds one request's span tree and emits it as telemetry events.
///
/// Spans are emitted in span-id order (root first), each as a single
/// [`EventKind::TraceSpan`] event stamped at the span's *end* time, so a
/// recorded stream stays causally readable and replays bit-identically.
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    trace: TraceId,
    device_idx: u32,
    spans: Vec<(Stage, Option<Stage>, f64, f64)>,
}

impl TraceBuilder {
    /// Starts a tree for `trace` served by fleet device `device_idx`.
    #[must_use]
    pub fn new(trace: TraceId, device_idx: u32) -> Self {
        TraceBuilder {
            trace,
            device_idx,
            spans: Vec::with_capacity(Stage::ALL.len()),
        }
    }

    /// Adds the root `request` span covering `[begin_s, end_s]`.
    #[must_use]
    pub fn root(mut self, begin_s: f64, end_s: f64) -> Self {
        self.spans.push((Stage::Request, None, begin_s, end_s));
        self
    }

    /// Adds `stage` as a direct child of the root.
    #[must_use]
    pub fn child(mut self, stage: Stage, begin_s: f64, end_s: f64) -> Self {
        self.spans
            .push((stage, Some(Stage::Request), begin_s, end_s));
        self
    }

    /// Emits the tree (no-op when the sink is disabled).
    pub fn emit(mut self, sink: &SinkHandle) {
        if !sink.enabled() {
            return;
        }
        self.spans.sort_by_key(|(stage, ..)| stage.span_id());
        for (stage, parent, begin_s, end_s) in self.spans {
            sink.emit(
                end_s,
                EventKind::TraceSpan {
                    trace: self.trace.0,
                    span: stage.span_id().0,
                    parent: parent.map(|p| p.span_id().0),
                    stage: stage.label().to_string(),
                    begin_s,
                    device_idx: self.device_idx,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    #[test]
    fn labels_round_trip_and_ids_are_ordinals() {
        for stage in Stage::ALL {
            assert_eq!(Stage::from_label(stage.label()), Some(stage));
        }
        assert_eq!(Stage::Request.span_id(), SpanId(0));
        assert_eq!(Stage::Compute.span_id(), SpanId(5));
        assert_eq!(Stage::from_label("nope"), None);
    }

    #[test]
    fn builder_emits_root_first_at_end_times() {
        let (sink, recorder) = SinkHandle::recorder(16);
        TraceBuilder::new(TraceId(42), 3)
            .child(Stage::Compute, 1.2, 1.5)
            .root(1.0, 1.5)
            .child(Stage::QueueWait, 1.0, 1.2)
            .emit(&sink);
        let events: Vec<Event> = recorder.drain();
        assert_eq!(events.len(), 3);
        let stages: Vec<&str> = events
            .iter()
            .map(|e| match &e.kind {
                EventKind::TraceSpan { stage, .. } => stage.as_str(),
                _ => panic!("unexpected event"),
            })
            .collect();
        assert_eq!(stages, ["request", "queue_wait", "compute"]);
        // Events are stamped at span end.
        assert_eq!(events[0].t_s, 1.5);
        assert_eq!(events[1].t_s, 1.2);
        match &events[2].kind {
            EventKind::TraceSpan {
                trace,
                span,
                parent,
                begin_s,
                device_idx,
                ..
            } => {
                assert_eq!(*trace, 42);
                assert_eq!(*span, 5);
                assert_eq!(*parent, Some(0));
                assert_eq!(*begin_s, 1.2);
                assert_eq!(*device_idx, 3);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn builder_is_free_on_disabled_sinks() {
        let sink = SinkHandle::null();
        TraceBuilder::new(TraceId(1), 0).root(0.0, 1.0).emit(&sink);
    }
}
