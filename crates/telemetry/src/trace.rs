//! Trace identity and trace-forest reconstruction.
//!
//! A *trace* is the causal record of one request's journey through the
//! serving stack; a *span* is one stage of that journey with a parent link.
//! Spans travel as ordinary [`EventKind::TraceSpan`] telemetry events (flat
//! ids and numbers, like every other event), and this module rebuilds the
//! tree structure — a [`TraceForest`] — from a recorded event stream and
//! checks it is well-formed.
//!
//! Everything is stamped with the simulation clock, so a forest rebuilt
//! from a run with the same seed is bit-identical.

use crate::event::{Event, EventKind};
use crate::span::SpanRecord;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one trace (one request). Equal to the request id assigned at
/// workload-generation time, which is unique within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TraceId(pub u64);

/// Identifies one span within a trace. Span ids are the stage ordinals of
/// [`crate::span::Stage`], so they are deterministic and unique per trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SpanId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace#{}", self.0)
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "span#{}", self.0)
    }
}

/// Interval-containment slack when checking that child spans nest inside
/// their parent: generous relative to the sub-nanosecond noise of summing
/// a handful of `f64` stage durations.
pub const NEST_EPS_S: f64 = 1e-6;

/// One reconstructed trace: the spans of a single request, sorted by span
/// id (i.e. by stage ordinal).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Trace {
    /// The trace id (request id).
    pub id: TraceId,
    /// All spans of this trace, sorted by span id.
    pub spans: Vec<SpanRecord>,
}

impl Trace {
    /// The root span (the one without a parent), if the trace has exactly
    /// the expected shape.
    #[must_use]
    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.parent.is_none())
    }

    /// End-to-end duration: the root span's length (0 if malformed).
    #[must_use]
    pub fn duration_s(&self) -> f64 {
        self.root().map_or(0.0, SpanRecord::duration_s)
    }

    /// The direct children of `parent`, in span-id order.
    pub fn children_of(&self, parent: SpanId) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(move |s| s.parent == Some(parent))
    }

    /// Checks this trace is well-formed: exactly one root, every parent
    /// link resolves to a span of the same trace, no duplicate span ids,
    /// no negative durations, and every child interval nests inside its
    /// parent (within [`NEST_EPS_S`]).
    pub fn validate(&self) -> Result<(), TraceError> {
        let mut roots = 0usize;
        for (i, s) in self.spans.iter().enumerate() {
            if self.spans[..i].iter().any(|p| p.span == s.span) {
                return Err(TraceError::DuplicateSpan {
                    trace: self.id,
                    span: s.span,
                });
            }
            if s.end_s < s.begin_s - NEST_EPS_S {
                return Err(TraceError::NegativeDuration {
                    trace: self.id,
                    span: s.span,
                });
            }
            match s.parent {
                None => roots += 1,
                Some(p) => {
                    let Some(parent) = self.spans.iter().find(|c| c.span == p) else {
                        return Err(TraceError::OrphanSpan {
                            trace: self.id,
                            span: s.span,
                        });
                    };
                    if s.begin_s < parent.begin_s - NEST_EPS_S
                        || s.end_s > parent.end_s + NEST_EPS_S
                    {
                        return Err(TraceError::EscapesParent {
                            trace: self.id,
                            span: s.span,
                        });
                    }
                }
            }
        }
        match roots {
            1 => Ok(()),
            0 => Err(TraceError::NoRoot { trace: self.id }),
            _ => Err(TraceError::MultipleRoots { trace: self.id }),
        }
    }
}

/// All traces reconstructed from an event stream, sorted by trace id.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct TraceForest {
    /// The traces, sorted by [`TraceId`].
    pub traces: Vec<Trace>,
}

impl TraceForest {
    /// Collects every [`EventKind::TraceSpan`] event into per-trace span
    /// lists. Spans arrive in completion order; the result is sorted by
    /// trace id and, within a trace, by span id, so the forest depends only
    /// on the set of spans, not their arrival order.
    #[must_use]
    pub fn from_events(events: &[Event]) -> Self {
        let mut traces: Vec<Trace> = Vec::new();
        for e in events {
            if let EventKind::TraceSpan {
                trace,
                span,
                parent,
                stage,
                begin_s,
                device_idx,
            } = &e.kind
            {
                let record = SpanRecord {
                    trace: TraceId(*trace),
                    span: SpanId(*span),
                    parent: parent.map(SpanId),
                    stage: stage.clone(),
                    begin_s: *begin_s,
                    end_s: e.t_s,
                    device_idx: *device_idx,
                };
                match traces.binary_search_by_key(&record.trace, |t| t.id) {
                    Ok(i) => traces[i].spans.push(record),
                    Err(i) => traces.insert(
                        i,
                        Trace {
                            id: record.trace,
                            spans: vec![record],
                        },
                    ),
                }
            }
        }
        for t in &mut traces {
            t.spans.sort_by_key(|s| s.span);
        }
        TraceForest { traces }
    }

    /// Number of traces.
    #[must_use]
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the forest holds no traces.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Looks up a trace by id.
    #[must_use]
    pub fn get(&self, id: TraceId) -> Option<&Trace> {
        self.traces
            .binary_search_by_key(&id, |t| t.id)
            .ok()
            .map(|i| &self.traces[i])
    }

    /// Validates every trace; the first malformed trace wins.
    pub fn validate(&self) -> Result<(), TraceError> {
        self.traces.iter().try_for_each(Trace::validate)
    }
}

/// Why a trace is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// No span with `parent: None`.
    NoRoot { trace: TraceId },
    /// More than one span with `parent: None`.
    MultipleRoots { trace: TraceId },
    /// A span's parent id resolves to no span of the same trace.
    OrphanSpan { trace: TraceId, span: SpanId },
    /// Two spans share an id.
    DuplicateSpan { trace: TraceId, span: SpanId },
    /// A span ends before it begins.
    NegativeDuration { trace: TraceId, span: SpanId },
    /// A child interval is not contained in its parent's interval.
    EscapesParent { trace: TraceId, span: SpanId },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::NoRoot { trace } => write!(f, "{trace}: no root span"),
            TraceError::MultipleRoots { trace } => write!(f, "{trace}: multiple root spans"),
            TraceError::OrphanSpan { trace, span } => {
                write!(f, "{trace}: {span} references a missing parent")
            }
            TraceError::DuplicateSpan { trace, span } => {
                write!(f, "{trace}: duplicate {span}")
            }
            TraceError::NegativeDuration { trace, span } => {
                write!(f, "{trace}: {span} ends before it begins")
            }
            TraceError::EscapesParent { trace, span } => {
                write!(f, "{trace}: {span} escapes its parent interval")
            }
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::SinkHandle;
    use crate::span::{Stage, TraceBuilder};

    fn well_formed_events() -> Vec<Event> {
        let (sink, recorder) = SinkHandle::recorder(64);
        TraceBuilder::new(TraceId(7), 2)
            .root(1.0, 1.5)
            .child(Stage::QueueWait, 1.0, 1.2)
            .child(Stage::Compute, 1.2, 1.5)
            .emit(&sink);
        TraceBuilder::new(TraceId(3), 0)
            .root(0.5, 0.9)
            .child(Stage::Compute, 0.5, 0.9)
            .emit(&sink);
        recorder.drain()
    }

    #[test]
    fn forest_rebuilds_sorted_and_validates() {
        let forest = TraceForest::from_events(&well_formed_events());
        assert_eq!(forest.len(), 2);
        assert_eq!(forest.traces[0].id, TraceId(3));
        assert_eq!(forest.traces[1].id, TraceId(7));
        forest.validate().expect("well-formed");
        let t7 = forest.get(TraceId(7)).expect("trace 7");
        assert!((t7.duration_s() - 0.5).abs() < 1e-12);
        assert_eq!(t7.root().expect("root").stage, Stage::Request.label());
        assert_eq!(t7.children_of(Stage::Request.span_id()).count(), 2);
    }

    #[test]
    fn forest_is_arrival_order_invariant() {
        let mut events = well_formed_events();
        let forward = TraceForest::from_events(&events);
        events.reverse();
        let reversed = TraceForest::from_events(&events);
        assert_eq!(forward, reversed);
    }

    #[test]
    fn orphan_and_duplicate_spans_are_rejected() {
        let span = |span, parent, begin_s, end_s| SpanRecord {
            trace: TraceId(1),
            span: SpanId(span),
            parent,
            stage: "x".into(),
            begin_s,
            end_s,
            device_idx: 0,
        };
        let orphan = Trace {
            id: TraceId(1),
            spans: vec![span(0, None, 0.0, 1.0), span(2, Some(SpanId(9)), 0.0, 0.5)],
        };
        assert!(matches!(
            orphan.validate(),
            Err(TraceError::OrphanSpan { .. })
        ));
        let duplicate = Trace {
            id: TraceId(1),
            spans: vec![span(0, None, 0.0, 1.0), span(0, None, 0.0, 1.0)],
        };
        assert!(matches!(
            duplicate.validate(),
            Err(TraceError::DuplicateSpan { .. })
        ));
        let escaping = Trace {
            id: TraceId(1),
            spans: vec![span(0, None, 0.0, 1.0), span(2, Some(SpanId(0)), 0.0, 1.5)],
        };
        assert!(matches!(
            escaping.validate(),
            Err(TraceError::EscapesParent { .. })
        ));
        let rootless = Trace {
            id: TraceId(1),
            spans: vec![span(2, Some(SpanId(2)), 0.0, 1.0)],
        };
        assert!(matches!(
            rootless.validate(),
            Err(TraceError::NoRoot { .. })
        ));
    }
}
