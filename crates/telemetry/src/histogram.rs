//! Log-bucketed histograms with percentile extraction.

/// A histogram over positive values with geometrically growing buckets.
///
/// Bucket `i` covers `[min · g^i, min · g^(i+1))`; values below `min` land
/// in bucket 0 and values beyond the last bound in the final bucket, so
/// recording never fails. Counts are `f64` weights: the fluid-queue
/// simulator records each step's latency estimate weighted by the number of
/// frames served in that step.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    min: f64,
    inv_log_growth: f64,
    log_growth: f64,
    counts: Vec<f64>,
    total: f64,
    weighted_sum: f64,
    min_seen: f64,
    max_seen: f64,
}

impl LogHistogram {
    /// Creates a histogram starting at `min` with `buckets` buckets growing
    /// by factor `growth`.
    #[must_use]
    pub fn new(min: f64, growth: f64, buckets: usize) -> Self {
        assert!(min > 0.0, "histogram min must be positive");
        assert!(growth > 1.0, "bucket growth must exceed 1");
        assert!(buckets > 0, "need at least one bucket");
        LogHistogram {
            min,
            inv_log_growth: 1.0 / growth.ln(),
            log_growth: growth.ln(),
            counts: vec![0.0; buckets],
            total: 0.0,
            weighted_sum: 0.0,
            min_seen: f64::INFINITY,
            max_seen: f64::NEG_INFINITY,
        }
    }

    /// Latency histogram: 1 µs to ~1.2 h in quarter-octave buckets (~9 %
    /// relative resolution), values in seconds.
    #[must_use]
    pub fn latency_s() -> Self {
        LogHistogram::new(1e-6, 2f64.powf(0.25), 128)
    }

    /// Queue-depth histogram: 0.01 to ~10⁵ frames in half-octave buckets.
    #[must_use]
    pub fn queue_frames() -> Self {
        LogHistogram::new(0.01, 2f64.powf(0.5), 48)
    }

    /// Records one observation with weight 1.
    pub fn record(&mut self, value: f64) {
        self.record_weighted(value, 1.0);
    }

    /// Records an observation carrying `weight` samples (e.g. frames).
    /// Non-positive or NaN weights are ignored.
    pub fn record_weighted(&mut self, value: f64, weight: f64) {
        if weight <= 0.0 || weight.is_nan() || value.is_nan() {
            return;
        }
        let idx = self.bucket_index(value);
        self.counts[idx] += weight;
        self.total += weight;
        self.weighted_sum += value * weight;
        self.min_seen = self.min_seen.min(value);
        self.max_seen = self.max_seen.max(value);
    }

    fn bucket_index(&self, value: f64) -> usize {
        if value <= self.min {
            return 0;
        }
        let idx = ((value / self.min).ln() * self.inv_log_growth).floor();
        (idx as usize).min(self.counts.len() - 1)
    }

    /// Total recorded weight.
    #[must_use]
    pub fn count(&self) -> f64 {
        self.total
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total <= 0.0
    }

    /// Weighted mean of the recorded values (exact, not bucketed).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total > 0.0 {
            self.weighted_sum / self.total
        } else {
            0.0
        }
    }

    /// The value at quantile `q ∈ [0, 1]`, estimated as the geometric
    /// midpoint of the bucket containing the quantile and clamped to the
    /// observed value range. Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.is_empty() {
            return 0.0;
        }
        let target = q * self.total;
        let mut cumulative = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target && c > 0.0 {
                let lower = self.min * (self.log_growth * i as f64).exp();
                let upper = self.min * (self.log_growth * (i + 1) as f64).exp();
                let mid = (lower * upper).sqrt();
                return mid.clamp(self.min_seen, self.max_seen);
            }
        }
        self.max_seen
    }

    /// Convenience accessors for the standard reporting percentiles.
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    #[must_use]
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    #[must_use]
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Merges another histogram with identical bucketing into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket layouts differ.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.counts.len(), other.counts.len(), "bucket count");
        assert!(
            (self.min - other.min).abs() < 1e-12
                && (self.log_growth - other.log_growth).abs() < 1e-12,
            "bucket layout mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.weighted_sum += other.weighted_sum;
        self.min_seen = self.min_seen.min(other.min_seen);
        self.max_seen = self.max_seen.max(other.max_seen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LogHistogram::latency_s();
        assert!(h.is_empty());
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_value_is_every_percentile() {
        let mut h = LogHistogram::latency_s();
        h.record(0.010);
        // Quarter-octave buckets: ±9 % relative error at worst.
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!((v - 0.010).abs() / 0.010 < 0.10, "q{q}: {v}");
        }
        assert!((h.mean() - 0.010).abs() < 1e-12);
    }

    #[test]
    fn percentiles_order_and_bracket() {
        let mut h = LogHistogram::latency_s();
        // 90 fast observations, 10 slow ones.
        for _ in 0..90 {
            h.record(0.001);
        }
        for _ in 0..10 {
            h.record(0.1);
        }
        let (p50, p95, p99) = (h.p50(), h.p95(), h.p99());
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p50 < 0.002, "p50 = {p50}");
        assert!(p95 > 0.05, "p95 = {p95}");
    }

    #[test]
    fn weights_shift_the_median() {
        let mut h = LogHistogram::latency_s();
        h.record_weighted(0.001, 1.0);
        h.record_weighted(0.5, 100.0);
        assert!(h.p50() > 0.4, "p50 = {}", h.p50());
        assert!((h.count() - 101.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let mut h = LogHistogram::new(1.0, 2.0, 4);
        h.record(1e-9);
        h.record(1e9);
        assert_eq!(h.count(), 2.0);
        assert!(h.quantile(0.0) >= 1e-9);
        assert!(h.quantile(1.0) <= 1e9);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LogHistogram::queue_frames();
        let mut b = LogHistogram::queue_frames();
        a.record(2.0);
        b.record(64.0);
        b.record(64.0);
        a.merge(&b);
        assert_eq!(a.count(), 3.0);
        assert!(a.p99() > 30.0);
    }

    #[test]
    fn zero_and_negative_weight_ignored() {
        let mut h = LogHistogram::latency_s();
        h.record_weighted(0.01, 0.0);
        h.record_weighted(0.01, -5.0);
        h.record_weighted(f64::NAN, 1.0);
        assert!(h.is_empty());
    }
}
