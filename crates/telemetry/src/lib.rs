//! Structured telemetry for the AdaFlow serving stack.
//!
//! The paper's Runtime Manager is driven by "performance monitors added to
//! the software in charge of the incoming inferences" (§IV-B2); this crate
//! is the reproduction's equivalent. It provides:
//!
//! * a typed [`Event`] model stamped with the **simulation clock** (seconds
//!   since run start), never wall time, so traces are deterministic in the
//!   workload seed;
//! * recording behind the [`TelemetrySink`] trait — [`NullSink`] is a
//!   statically-known no-op whose `enabled()` lets hot paths skip building
//!   event payloads entirely, [`Recorder`] is a bounded ring buffer;
//! * log-bucketed [`LogHistogram`]s with p50/p95/p99 extraction for latency
//!   and queue-depth distributions;
//! * exporters in [`export`]: JSONL, Chrome trace-event JSON (loadable in
//!   Perfetto / `chrome://tracing`) and Prometheus-style text exposition;
//! * causal request tracing: [`trace`] / [`span`] give every request a
//!   deterministic span tree (admit → queue-wait → batch-form →
//!   reconfig-stall → compute), [`analysis`] decomposes end-to-end latency
//!   into a per-stage waterfall, and [`metrics`] / [`slo`] fold the event
//!   stream into a windowed registry with error-budget burn-rate alerting.
//!
//! Design-time stages (retraining, synthesis) have no simulation clock; they
//! stamp events with a stage-local ordinal clock (e.g. the epoch index),
//! which keeps traces ordered without inventing a fake wall time.

#![forbid(unsafe_code)]

pub mod analysis;
pub mod event;
pub mod export;
pub mod histogram;
pub mod metrics;
pub mod sink;
pub mod slo;
pub mod span;
pub mod trace;

pub use analysis::{DeviceBreakdown, SlowTrace, StageAttribution, Waterfall};
pub use event::{Event, EventKind};
pub use export::{
    chrome_trace_json, events_from_jsonl, events_to_jsonl, to_prometheus, ChromeTraceEvent,
    TraceSummary,
};
pub use histogram::LogHistogram;
pub use metrics::{MetricsRegistry, RegistryConfig, RegistrySink, WindowStats};
pub use sink::{Fanout, NullSink, Recorder, SinkHandle, TelemetrySink};
pub use slo::{Objective, SloConfig, SloEngine, SloReport, WindowBurn};
pub use span::{SpanRecord, Stage, TraceBuilder};
pub use trace::{SpanId, Trace, TraceError, TraceForest, TraceId};
