//! The typed event model.
//!
//! Events carry plain strings and numbers rather than crate types so that
//! `adaflow-telemetry` sits at the bottom of the workspace dependency graph:
//! every other crate can emit events without cycles.

use serde::{Deserialize, Serialize};

/// One telemetry event, stamped with the simulation clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Simulation time in seconds (or a stage-local ordinal for design-time
    /// events such as retraining epochs).
    pub t_s: f64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    #[must_use]
    pub fn new(t_s: f64, kind: EventKind) -> Self {
        Event { t_s, kind }
    }
}

/// Everything the stack reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// Frames offered by the workload during one simulation step. `count`
    /// is fractional: the fluid model offers `rate × dt` frames per step.
    FrameArrived { count: f64 },
    /// Frames lost to buffer overflow during one simulation step.
    FrameDropped { count: f64, queue_frames: f64 },
    /// Periodic queue-occupancy sample.
    QueueDepth { frames: f64 },
    /// The Runtime Manager chose a serving configuration.
    DecisionMade {
        model: String,
        accelerator: String,
        /// `"none"`, `"flexible-switch"` or `"reconfiguration"`.
        switch: String,
        /// Serving stall charged to this decision, seconds.
        stall_s: f64,
        /// Incoming workload that triggered the decision, FPS.
        incoming_fps: f64,
    },
    /// An FPGA reconfiguration began (serving stalls until `ReconfigEnd`).
    ReconfigStart { model: String },
    /// The matching end of a reconfiguration stall.
    ReconfigEnd { model: String, stall_s: f64 },
    /// A CNN model switch (flexible switches don't stall the fabric).
    ModelSwitch {
        from: String,
        to: String,
        flexible: bool,
    },
    /// One epoch of a retraining run (design time; `t_s` is the epoch
    /// ordinal).
    RetrainEpoch {
        model: String,
        epoch: u64,
        loss: f64,
    },
    /// Outcome of synthesizing one accelerator (design time).
    SynthReport {
        accelerator: String,
        fmax_mhz: f64,
        lut: u64,
        bram36: u64,
        fits: bool,
    },
    /// Start of a named interval (pairs with `SpanEnd` of the same name).
    SpanBegin { name: String },
    /// End of a named interval.
    SpanEnd { name: String },
    /// A request was admitted into the serving queue (request-level mode).
    RequestEnqueued {
        /// Monotonic request id, unique within one serving run.
        id: u64,
        /// Originating IoT device index.
        device: u32,
        /// Queue occupancy after admission, requests.
        queue_depth: u64,
    },
    /// The dynamic batcher closed a batch and handed it to the accelerator.
    BatchClosed {
        /// Number of requests in the batch.
        size: u64,
        /// How long the oldest request of the batch waited in the queue,
        /// seconds.
        oldest_wait_s: f64,
        /// Model serving the batch.
        model: String,
    },
    /// A request finished service (request-level mode).
    RequestCompleted {
        /// The request id assigned at generation time.
        id: u64,
        /// End-to-end sojourn (arrival to completion), seconds.
        latency_s: f64,
        /// Whether the request completed within its deadline budget.
        deadline_met: bool,
    },
    /// A request was shed by admission control (request-level mode).
    RequestShed {
        /// The request id assigned at generation time.
        id: u64,
        /// Why it was shed (`"queue-full"`, `"shed-oldest"`,
        /// `"shed-newest"`).
        reason: String,
        /// Queue occupancy at the shed decision, requests.
        queue_depth: u64,
    },
    /// The fleet router dispatched a request to a device (fleet mode).
    RequestRouted {
        /// The request id assigned at generation time.
        id: u64,
        /// Index of the chosen fleet device.
        device_idx: u32,
        /// The chosen device's queue occupancy at dispatch, requests.
        queue_depth: u64,
    },
    /// A fleet device began draining for a fabric switch (fleet mode;
    /// pairs with `DeviceReconfigEnd` on the same device).
    DeviceReconfigStart {
        /// Index of the reconfiguring fleet device.
        device_idx: u32,
        /// Model the fabric is switching to.
        model: String,
    },
    /// The matching end of a fleet device's fabric switch.
    DeviceReconfigEnd {
        /// Index of the reconfiguring fleet device.
        device_idx: u32,
        /// Model the fabric switched to.
        model: String,
        /// Serving stall charged to this switch, seconds.
        stall_s: f64,
    },
    /// One closed causal span of a request's lifecycle. `t_s` is the span
    /// *end*; the interval is `[begin_s, t_s]`. The whole tree of a request
    /// is emitted at its completion, so shed requests leave no orphans.
    TraceSpan {
        /// Owning trace: the request id assigned at generation time.
        trace: u64,
        /// Span id, unique within the trace (a stage ordinal, see
        /// `span::Stage`).
        span: u64,
        /// Parent span id; `None` marks the trace root.
        parent: Option<u64>,
        /// Stage label (`"request"`, `"route"`, `"queue_wait"`,
        /// `"batch_form"`, `"reconfig_stall"`, `"compute"`).
        stage: String,
        /// Span begin, simulation seconds.
        begin_s: f64,
        /// Fleet device index that served the request (0 single-device).
        device_idx: u32,
    },
    /// The SLO engine detected sustained error-budget burn over both of
    /// its alert windows.
    SloBurnAlert {
        /// Objective name (`"deadline"`).
        objective: String,
        /// Short alert window, seconds.
        short_window_s: f64,
        /// Long alert window, seconds.
        long_window_s: f64,
        /// Burn rate over the short window (1 = burning exactly the
        /// budget).
        short_burn: f64,
        /// Burn rate over the long window.
        long_burn: f64,
        /// Cumulative error budget consumed at the alert, percent.
        budget_consumed_pct: f64,
    },
    /// The gateway ejected a live backend from its healthy rotation
    /// (gateway mode; pairs with `BackendReadmitted` on the same backend).
    BackendEjected {
        /// Index of the ejected backend.
        backend: u32,
        /// Why it was ejected (`"probe-timeout"`, `"connection-lost"`).
        reason: String,
    },
    /// The gateway readmitted a previously ejected backend after
    /// consecutive probe successes (gateway mode).
    BackendReadmitted {
        /// Index of the readmitted backend.
        backend: u32,
        /// How long the backend was out of rotation, seconds.
        downtime_s: f64,
    },
    /// Periodic fleet load-balance sample (fleet mode).
    FleetImbalanceSample {
        /// Coefficient of variation of per-device queue depths
        /// (0 = perfectly balanced).
        cv: f64,
        /// Deepest per-device queue at the sample, requests.
        max_queue: u64,
        /// Shallowest per-device queue at the sample, requests.
        min_queue: u64,
    },
}

impl EventKind {
    /// Short stable label, used as the Chrome trace event name and the
    /// Prometheus counter key.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::FrameArrived { .. } => "frame_arrived",
            EventKind::FrameDropped { .. } => "frame_dropped",
            EventKind::QueueDepth { .. } => "queue_depth",
            EventKind::DecisionMade { .. } => "decision_made",
            EventKind::ReconfigStart { .. } => "reconfig",
            EventKind::ReconfigEnd { .. } => "reconfig",
            EventKind::ModelSwitch { .. } => "model_switch",
            EventKind::RetrainEpoch { .. } => "retrain_epoch",
            EventKind::SynthReport { .. } => "synth_report",
            EventKind::SpanBegin { .. } => "span",
            EventKind::SpanEnd { .. } => "span",
            EventKind::RequestEnqueued { .. } => "request_enqueued",
            EventKind::BatchClosed { .. } => "batch_closed",
            EventKind::RequestCompleted { .. } => "request_completed",
            EventKind::RequestShed { .. } => "request_shed",
            EventKind::RequestRouted { .. } => "request_routed",
            EventKind::DeviceReconfigStart { .. } => "device_reconfig",
            EventKind::DeviceReconfigEnd { .. } => "device_reconfig",
            EventKind::TraceSpan { .. } => "trace_span",
            EventKind::SloBurnAlert { .. } => "slo_burn_alert",
            EventKind::BackendEjected { .. } => "backend_ejected",
            EventKind::BackendReadmitted { .. } => "backend_readmitted",
            EventKind::FleetImbalanceSample { .. } => "fleet_imbalance",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_json() {
        let events = vec![
            Event::new(0.25, EventKind::FrameArrived { count: 6.0 }),
            Event::new(
                0.5,
                EventKind::DecisionMade {
                    model: "cnv_p25".into(),
                    accelerator: "flexible".into(),
                    switch: "flexible-switch".into(),
                    stall_s: 0.0,
                    incoming_fps: 612.5,
                },
            ),
            Event::new(
                1.0,
                EventKind::ReconfigStart {
                    model: "cnv".into(),
                },
            ),
            Event::new(
                1.145,
                EventKind::ReconfigEnd {
                    model: "cnv".into(),
                    stall_s: 0.145,
                },
            ),
        ];
        for e in &events {
            let text = serde_json::to_string(e).expect("serializes");
            let back: Event = serde_json::from_str(&text).expect("parses");
            assert_eq!(*e, back);
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(EventKind::QueueDepth { frames: 1.0 }.label(), "queue_depth");
        assert_eq!(EventKind::SpanBegin { name: "x".into() }.label(), "span");
        assert_eq!(
            EventKind::RequestShed {
                id: 1,
                reason: "queue-full".into(),
                queue_depth: 64,
            }
            .label(),
            "request_shed"
        );
    }

    #[test]
    fn request_lifecycle_events_round_trip() {
        let events = vec![
            Event::new(
                0.1,
                EventKind::RequestEnqueued {
                    id: 17,
                    device: 3,
                    queue_depth: 5,
                },
            ),
            Event::new(
                0.2,
                EventKind::BatchClosed {
                    size: 16,
                    oldest_wait_s: 0.012,
                    model: "cnv_p25".into(),
                },
            ),
            Event::new(
                0.25,
                EventKind::RequestCompleted {
                    id: 17,
                    latency_s: 0.15,
                    deadline_met: true,
                },
            ),
            Event::new(
                0.3,
                EventKind::RequestShed {
                    id: 18,
                    reason: "shed-oldest".into(),
                    queue_depth: 256,
                },
            ),
        ];
        for e in &events {
            let text = serde_json::to_string(e).expect("serializes");
            let back: Event = serde_json::from_str(&text).expect("parses");
            assert_eq!(*e, back);
        }
    }

    #[test]
    fn fleet_events_round_trip_and_label() {
        let events = vec![
            Event::new(
                0.1,
                EventKind::RequestRouted {
                    id: 42,
                    device_idx: 2,
                    queue_depth: 7,
                },
            ),
            Event::new(
                0.2,
                EventKind::DeviceReconfigStart {
                    device_idx: 2,
                    model: "cnv_p25".into(),
                },
            ),
            Event::new(
                0.345,
                EventKind::DeviceReconfigEnd {
                    device_idx: 2,
                    model: "cnv_p25".into(),
                    stall_s: 0.145,
                },
            ),
            Event::new(
                0.5,
                EventKind::FleetImbalanceSample {
                    cv: 0.33,
                    max_queue: 12,
                    min_queue: 3,
                },
            ),
        ];
        for e in &events {
            let text = serde_json::to_string(e).expect("serializes");
            let back: Event = serde_json::from_str(&text).expect("parses");
            assert_eq!(*e, back);
        }
        assert_eq!(events[0].kind.label(), "request_routed");
        assert_eq!(events[1].kind.label(), "device_reconfig");
        assert_eq!(events[2].kind.label(), "device_reconfig");
        assert_eq!(events[3].kind.label(), "fleet_imbalance");
    }

    #[test]
    fn gateway_health_events_round_trip_and_label() {
        let events = vec![
            Event::new(
                2.0,
                EventKind::BackendEjected {
                    backend: 1,
                    reason: "probe-timeout".into(),
                },
            ),
            Event::new(
                4.5,
                EventKind::BackendReadmitted {
                    backend: 1,
                    downtime_s: 2.5,
                },
            ),
        ];
        for e in &events {
            let text = serde_json::to_string(e).expect("serializes");
            let back: Event = serde_json::from_str(&text).expect("parses");
            assert_eq!(*e, back);
        }
        assert_eq!(events[0].kind.label(), "backend_ejected");
        assert_eq!(events[1].kind.label(), "backend_readmitted");
    }

    #[test]
    fn tracing_events_round_trip_and_label() {
        let events = vec![
            Event::new(
                0.25,
                EventKind::TraceSpan {
                    trace: 17,
                    span: 0,
                    parent: None,
                    stage: "request".into(),
                    begin_s: 0.1,
                    device_idx: 2,
                },
            ),
            Event::new(
                0.25,
                EventKind::TraceSpan {
                    trace: 17,
                    span: 5,
                    parent: Some(0),
                    stage: "compute".into(),
                    begin_s: 0.2,
                    device_idx: 2,
                },
            ),
            Event::new(
                5.0,
                EventKind::SloBurnAlert {
                    objective: "deadline".into(),
                    short_window_s: 5.0,
                    long_window_s: 25.0,
                    short_burn: 3.5,
                    long_burn: 2.1,
                    budget_consumed_pct: 40.0,
                },
            ),
        ];
        for e in &events {
            let text = serde_json::to_string(e).expect("serializes");
            let back: Event = serde_json::from_str(&text).expect("parses");
            assert_eq!(*e, back);
        }
        assert_eq!(events[0].kind.label(), "trace_span");
        assert_eq!(events[2].kind.label(), "slo_burn_alert");
    }
}
