//! The typed event model.
//!
//! Events carry plain strings and numbers rather than crate types so that
//! `adaflow-telemetry` sits at the bottom of the workspace dependency graph:
//! every other crate can emit events without cycles.

use serde::{Deserialize, Serialize};

/// One telemetry event, stamped with the simulation clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Simulation time in seconds (or a stage-local ordinal for design-time
    /// events such as retraining epochs).
    pub t_s: f64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    #[must_use]
    pub fn new(t_s: f64, kind: EventKind) -> Self {
        Event { t_s, kind }
    }
}

/// Everything the stack reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// Frames offered by the workload during one simulation step. `count`
    /// is fractional: the fluid model offers `rate × dt` frames per step.
    FrameArrived { count: f64 },
    /// Frames lost to buffer overflow during one simulation step.
    FrameDropped { count: f64, queue_frames: f64 },
    /// Periodic queue-occupancy sample.
    QueueDepth { frames: f64 },
    /// The Runtime Manager chose a serving configuration.
    DecisionMade {
        model: String,
        accelerator: String,
        /// `"none"`, `"flexible-switch"` or `"reconfiguration"`.
        switch: String,
        /// Serving stall charged to this decision, seconds.
        stall_s: f64,
        /// Incoming workload that triggered the decision, FPS.
        incoming_fps: f64,
    },
    /// An FPGA reconfiguration began (serving stalls until `ReconfigEnd`).
    ReconfigStart { model: String },
    /// The matching end of a reconfiguration stall.
    ReconfigEnd { model: String, stall_s: f64 },
    /// A CNN model switch (flexible switches don't stall the fabric).
    ModelSwitch {
        from: String,
        to: String,
        flexible: bool,
    },
    /// One epoch of a retraining run (design time; `t_s` is the epoch
    /// ordinal).
    RetrainEpoch {
        model: String,
        epoch: u64,
        loss: f64,
    },
    /// Outcome of synthesizing one accelerator (design time).
    SynthReport {
        accelerator: String,
        fmax_mhz: f64,
        lut: u64,
        bram36: u64,
        fits: bool,
    },
    /// Start of a named interval (pairs with `SpanEnd` of the same name).
    SpanBegin { name: String },
    /// End of a named interval.
    SpanEnd { name: String },
}

impl EventKind {
    /// Short stable label, used as the Chrome trace event name and the
    /// Prometheus counter key.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::FrameArrived { .. } => "frame_arrived",
            EventKind::FrameDropped { .. } => "frame_dropped",
            EventKind::QueueDepth { .. } => "queue_depth",
            EventKind::DecisionMade { .. } => "decision_made",
            EventKind::ReconfigStart { .. } => "reconfig",
            EventKind::ReconfigEnd { .. } => "reconfig",
            EventKind::ModelSwitch { .. } => "model_switch",
            EventKind::RetrainEpoch { .. } => "retrain_epoch",
            EventKind::SynthReport { .. } => "synth_report",
            EventKind::SpanBegin { .. } => "span",
            EventKind::SpanEnd { .. } => "span",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_json() {
        let events = vec![
            Event::new(0.25, EventKind::FrameArrived { count: 6.0 }),
            Event::new(
                0.5,
                EventKind::DecisionMade {
                    model: "cnv_p25".into(),
                    accelerator: "flexible".into(),
                    switch: "flexible-switch".into(),
                    stall_s: 0.0,
                    incoming_fps: 612.5,
                },
            ),
            Event::new(
                1.0,
                EventKind::ReconfigStart {
                    model: "cnv".into(),
                },
            ),
            Event::new(
                1.145,
                EventKind::ReconfigEnd {
                    model: "cnv".into(),
                    stall_s: 0.145,
                },
            ),
        ];
        for e in &events {
            let text = serde_json::to_string(e).expect("serializes");
            let back: Event = serde_json::from_str(&text).expect("parses");
            assert_eq!(*e, back);
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(EventKind::QueueDepth { frames: 1.0 }.label(), "queue_depth");
        assert_eq!(EventKind::SpanBegin { name: "x".into() }.label(), "span");
    }
}
