//! Trace exporters: JSONL, Chrome trace-event JSON and Prometheus text.

use crate::event::{Event, EventKind};
use crate::histogram::LogHistogram;
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// JSONL
// ---------------------------------------------------------------------------

/// Serializes events as JSON Lines: one compact object per line.
#[must_use]
pub fn events_to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&serde_json::to_string(e).expect("event serializes"));
        out.push('\n');
    }
    out
}

/// Parses a JSONL trace back into events. Blank lines are skipped.
pub fn events_from_jsonl(text: &str) -> Result<Vec<Event>, serde_json::Error> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(serde_json::from_str)
        .collect()
}

// ---------------------------------------------------------------------------
// Chrome trace-event format
// ---------------------------------------------------------------------------

/// One Chrome trace event, per the Trace Event Format spec. Loadable in
/// Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing` when exported
/// as a JSON array.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeTraceEvent {
    /// Event name shown on the timeline.
    pub name: String,
    /// Category (comma-separated tags).
    pub cat: String,
    /// Phase: `"i"` instant, `"B"`/`"E"` span begin/end, `"b"`/`"e"` async
    /// begin/end, `"C"` counter.
    pub ph: String,
    /// Timestamp in **microseconds** (simulation clock × 10⁶).
    pub ts: f64,
    /// Process id; the whole simulation is process 1.
    pub pid: u64,
    /// Thread id, used to group lanes (1 = serving, 2 = control, 3 =
    /// design-time).
    pub tid: u64,
    /// Async-event correlation id (the trace id for request spans).
    /// Required for `"b"`/`"e"` phases; absent elsewhere.
    pub id: Option<u64>,
    /// Free-form payload.
    pub args: BTreeMap<String, Value>,
}

// Hand-written so `id` is *omitted* (not `null`) when absent: trace viewers
// only accept an `id` key on async phases.
impl Serialize for ChromeTraceEvent {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("name".to_string(), self.name.to_value()),
            ("cat".to_string(), self.cat.to_value()),
            ("ph".to_string(), self.ph.to_value()),
            ("ts".to_string(), Value::F64(self.ts)),
            ("pid".to_string(), Value::U64(self.pid)),
            ("tid".to_string(), Value::U64(self.tid)),
        ];
        if let Some(id) = self.id {
            fields.push(("id".to_string(), Value::U64(id)));
        }
        fields.push(("args".to_string(), self.args.to_value()));
        Value::Object(fields)
    }
}

impl Deserialize for ChromeTraceEvent {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        fn field<T: Deserialize>(v: &Value, key: &str) -> Result<T, serde::Error> {
            T::from_value(v.get(key).unwrap_or(&Value::Null))
                .map_err(|e| serde::Error::custom(format!("ChromeTraceEvent.{key}: {e}")))
        }
        Ok(ChromeTraceEvent {
            name: field(v, "name")?,
            cat: field(v, "cat")?,
            ph: field(v, "ph")?,
            ts: field(v, "ts")?,
            pid: field(v, "pid")?,
            tid: field(v, "tid")?,
            id: field(v, "id")?,
            args: field(v, "args")?,
        })
    }
}

const LANE_SERVING: u64 = 1;
const LANE_CONTROL: u64 = 2;
const LANE_DESIGN: u64 = 3;
const LANE_FLEET: u64 = 4;
/// Request span trees ride one async lane; async events correlate by `id`
/// (the trace id), so overlapping requests don't have to nest per-thread.
const LANE_TRACE: u64 = 5;
/// Fleet device reconfiguration spans get one lane per device so that
/// concurrent drains on different devices don't nest on the timeline.
const LANE_FLEET_DEVICE0: u64 = 10;

fn micros(t_s: f64) -> f64 {
    t_s * 1e6
}

fn args1(key: &str, value: Value) -> BTreeMap<String, Value> {
    let mut m = BTreeMap::new();
    m.insert(key.to_string(), value);
    m
}

/// Lowers typed events to Chrome trace events.
///
/// `FrameArrived` events are aggregated away (they would flood the
/// timeline); arrivals are visible through the `queue_depth` counter track
/// instead. Everything else maps one-to-one: drops and decisions become
/// instants, reconfigurations and explicit spans become `B`/`E` pairs, and
/// queue samples become a counter series.
#[must_use]
pub fn to_chrome_trace(events: &[Event]) -> Vec<ChromeTraceEvent> {
    let mut out = Vec::new();
    for e in events {
        let ts = micros(e.t_s);
        match &e.kind {
            EventKind::FrameArrived { .. } => {}
            EventKind::FrameDropped {
                count,
                queue_frames,
            } => {
                let mut args = args1("count", Value::F64(*count));
                args.insert("queue_frames".into(), Value::F64(*queue_frames));
                out.push(ChromeTraceEvent {
                    name: "frame_dropped".into(),
                    cat: "serving".into(),
                    ph: "i".into(),
                    ts,
                    pid: 1,
                    id: None,
                    tid: LANE_SERVING,
                    args,
                });
            }
            EventKind::QueueDepth { frames } => out.push(ChromeTraceEvent {
                name: "queue_depth".into(),
                cat: "serving".into(),
                ph: "C".into(),
                ts,
                pid: 1,
                id: None,
                tid: LANE_SERVING,
                args: args1("frames", Value::F64(*frames)),
            }),
            EventKind::DecisionMade {
                model,
                accelerator,
                switch,
                stall_s,
                incoming_fps,
            } => {
                let mut args = args1("model", Value::Str(model.clone()));
                args.insert("accelerator".into(), Value::Str(accelerator.clone()));
                args.insert("switch".into(), Value::Str(switch.clone()));
                args.insert("stall_s".into(), Value::F64(*stall_s));
                args.insert("incoming_fps".into(), Value::F64(*incoming_fps));
                out.push(ChromeTraceEvent {
                    name: "decision_made".into(),
                    cat: "control".into(),
                    ph: "i".into(),
                    ts,
                    pid: 1,
                    id: None,
                    tid: LANE_CONTROL,
                    args,
                });
            }
            EventKind::ReconfigStart { model } => out.push(ChromeTraceEvent {
                name: "reconfiguration".into(),
                cat: "control".into(),
                ph: "B".into(),
                ts,
                pid: 1,
                id: None,
                tid: LANE_CONTROL,
                args: args1("model", Value::Str(model.clone())),
            }),
            EventKind::ReconfigEnd { model, stall_s } => {
                let mut args = args1("model", Value::Str(model.clone()));
                args.insert("stall_s".into(), Value::F64(*stall_s));
                out.push(ChromeTraceEvent {
                    name: "reconfiguration".into(),
                    cat: "control".into(),
                    ph: "E".into(),
                    ts,
                    pid: 1,
                    id: None,
                    tid: LANE_CONTROL,
                    args,
                });
            }
            EventKind::ModelSwitch { from, to, flexible } => {
                let mut args = args1("from", Value::Str(from.clone()));
                args.insert("to".into(), Value::Str(to.clone()));
                args.insert("flexible".into(), Value::Bool(*flexible));
                out.push(ChromeTraceEvent {
                    name: "model_switch".into(),
                    cat: "control".into(),
                    ph: "i".into(),
                    ts,
                    pid: 1,
                    id: None,
                    tid: LANE_CONTROL,
                    args,
                });
            }
            EventKind::RetrainEpoch { model, epoch, loss } => {
                let mut args = args1("model", Value::Str(model.clone()));
                args.insert("epoch".into(), Value::U64(*epoch));
                args.insert("loss".into(), Value::F64(*loss));
                out.push(ChromeTraceEvent {
                    name: "retrain_epoch".into(),
                    cat: "design".into(),
                    ph: "i".into(),
                    ts,
                    pid: 1,
                    id: None,
                    tid: LANE_DESIGN,
                    args,
                });
            }
            EventKind::SynthReport {
                accelerator,
                fmax_mhz,
                lut,
                bram36,
                fits,
            } => {
                let mut args = args1("accelerator", Value::Str(accelerator.clone()));
                args.insert("fmax_mhz".into(), Value::F64(*fmax_mhz));
                args.insert("lut".into(), Value::U64(*lut));
                args.insert("bram36".into(), Value::U64(*bram36));
                args.insert("fits".into(), Value::Bool(*fits));
                out.push(ChromeTraceEvent {
                    name: "synth_report".into(),
                    cat: "design".into(),
                    ph: "i".into(),
                    ts,
                    pid: 1,
                    id: None,
                    tid: LANE_DESIGN,
                    args,
                });
            }
            EventKind::SpanBegin { name } => out.push(ChromeTraceEvent {
                name: name.clone(),
                cat: "span".into(),
                ph: "B".into(),
                ts,
                pid: 1,
                id: None,
                tid: LANE_SERVING,
                args: BTreeMap::new(),
            }),
            EventKind::SpanEnd { name } => out.push(ChromeTraceEvent {
                name: name.clone(),
                cat: "span".into(),
                ph: "E".into(),
                ts,
                pid: 1,
                id: None,
                tid: LANE_SERVING,
                args: BTreeMap::new(),
            }),
            // Per-request enqueue/complete events would flood the timeline
            // the same way FrameArrived does; the request lifecycle is
            // visible through the batch_closed instants, the queue_depth
            // counter and the shed instants.
            EventKind::RequestEnqueued { .. } | EventKind::RequestCompleted { .. } => {}
            EventKind::BatchClosed {
                size,
                oldest_wait_s,
                model,
            } => {
                let mut args = args1("size", Value::U64(*size));
                args.insert("oldest_wait_s".into(), Value::F64(*oldest_wait_s));
                args.insert("model".into(), Value::Str(model.clone()));
                out.push(ChromeTraceEvent {
                    name: "batch_closed".into(),
                    cat: "serving".into(),
                    ph: "i".into(),
                    ts,
                    pid: 1,
                    id: None,
                    tid: LANE_SERVING,
                    args,
                });
            }
            EventKind::RequestShed {
                id,
                reason,
                queue_depth,
            } => {
                let mut args = args1("id", Value::U64(*id));
                args.insert("reason".into(), Value::Str(reason.clone()));
                args.insert("queue_depth".into(), Value::U64(*queue_depth));
                out.push(ChromeTraceEvent {
                    name: "request_shed".into(),
                    cat: "serving".into(),
                    ph: "i".into(),
                    ts,
                    pid: 1,
                    id: None,
                    tid: LANE_SERVING,
                    args,
                });
            }
            // Per-request routing decisions would flood the timeline like
            // enqueues do; routing is visible through the imbalance counter
            // and the per-device reconfiguration spans.
            EventKind::RequestRouted { .. } => {}
            EventKind::DeviceReconfigStart { device_idx, model } => {
                out.push(ChromeTraceEvent {
                    name: "device_reconfig".into(),
                    cat: "fleet".into(),
                    ph: "B".into(),
                    ts,
                    pid: 1,
                    id: None,
                    tid: LANE_FLEET_DEVICE0 + u64::from(*device_idx),
                    args: args1("model", Value::Str(model.clone())),
                });
            }
            EventKind::DeviceReconfigEnd {
                device_idx,
                model,
                stall_s,
            } => {
                let mut args = args1("model", Value::Str(model.clone()));
                args.insert("stall_s".into(), Value::F64(*stall_s));
                out.push(ChromeTraceEvent {
                    name: "device_reconfig".into(),
                    cat: "fleet".into(),
                    ph: "E".into(),
                    ts,
                    pid: 1,
                    id: None,
                    tid: LANE_FLEET_DEVICE0 + u64::from(*device_idx),
                    args,
                });
            }
            EventKind::TraceSpan {
                trace,
                span,
                parent,
                stage,
                begin_s,
                device_idx,
            } => {
                // Async begin/end pair correlated by the trace id, so every
                // request's span tree nests under one timeline row without
                // fighting the per-thread nesting rules of `B`/`E`.
                let mut args = args1("span", Value::U64(*span));
                if let Some(p) = parent {
                    args.insert("parent".into(), Value::U64(*p));
                }
                args.insert("device_idx".into(), Value::U64(u64::from(*device_idx)));
                out.push(ChromeTraceEvent {
                    name: stage.clone(),
                    cat: "request".into(),
                    ph: "b".into(),
                    ts: micros(*begin_s),
                    pid: 1,
                    id: Some(*trace),
                    tid: LANE_TRACE,
                    args: args.clone(),
                });
                out.push(ChromeTraceEvent {
                    name: stage.clone(),
                    cat: "request".into(),
                    ph: "e".into(),
                    ts,
                    pid: 1,
                    id: Some(*trace),
                    tid: LANE_TRACE,
                    args,
                });
            }
            EventKind::SloBurnAlert {
                objective,
                short_window_s,
                long_window_s,
                short_burn,
                long_burn,
                budget_consumed_pct,
            } => {
                let mut args = args1("objective", Value::Str(objective.clone()));
                args.insert("short_window_s".into(), Value::F64(*short_window_s));
                args.insert("long_window_s".into(), Value::F64(*long_window_s));
                args.insert("short_burn".into(), Value::F64(*short_burn));
                args.insert("long_burn".into(), Value::F64(*long_burn));
                args.insert(
                    "budget_consumed_pct".into(),
                    Value::F64(*budget_consumed_pct),
                );
                out.push(ChromeTraceEvent {
                    name: "slo_burn_alert".into(),
                    cat: "control".into(),
                    ph: "i".into(),
                    ts,
                    pid: 1,
                    id: None,
                    tid: LANE_CONTROL,
                    args,
                });
            }
            EventKind::BackendEjected { backend, reason } => {
                let mut args = args1("backend", Value::U64(u64::from(*backend)));
                args.insert("reason".into(), Value::Str(reason.clone()));
                out.push(ChromeTraceEvent {
                    name: "backend_ejected".into(),
                    cat: "fleet".into(),
                    ph: "i".into(),
                    ts,
                    pid: 1,
                    id: None,
                    tid: LANE_FLEET,
                    args,
                });
            }
            EventKind::BackendReadmitted {
                backend,
                downtime_s,
            } => {
                let mut args = args1("backend", Value::U64(u64::from(*backend)));
                args.insert("downtime_s".into(), Value::F64(*downtime_s));
                out.push(ChromeTraceEvent {
                    name: "backend_readmitted".into(),
                    cat: "fleet".into(),
                    ph: "i".into(),
                    ts,
                    pid: 1,
                    id: None,
                    tid: LANE_FLEET,
                    args,
                });
            }
            EventKind::FleetImbalanceSample {
                cv,
                max_queue,
                min_queue,
            } => {
                let mut args = args1("cv", Value::F64(*cv));
                args.insert("max_queue".into(), Value::U64(*max_queue));
                args.insert("min_queue".into(), Value::U64(*min_queue));
                out.push(ChromeTraceEvent {
                    name: "fleet_imbalance".into(),
                    cat: "fleet".into(),
                    ph: "C".into(),
                    ts,
                    pid: 1,
                    id: None,
                    tid: LANE_FLEET,
                    args,
                });
            }
        }
    }
    out
}

/// Renders events as a Chrome trace JSON array (the file Perfetto loads).
#[must_use]
pub fn chrome_trace_json(events: &[Event]) -> String {
    serde_json::to_string_pretty(&to_chrome_trace(events)).expect("trace serializes")
}

// ---------------------------------------------------------------------------
// Prometheus text exposition + summary
// ---------------------------------------------------------------------------

/// Aggregate view of a trace, used by the Prometheus exporter and the CLI.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    pub frames_arrived: f64,
    pub frames_dropped: f64,
    pub decisions: u64,
    pub reconfigurations: u64,
    pub model_switches: u64,
    pub flexible_switches: u64,
    pub retrain_epochs: u64,
    pub synth_reports: u64,
    pub stall_s: f64,
    /// Requests admitted into the serving queue (request-level mode).
    pub requests_enqueued: u64,
    /// Requests that finished service (request-level mode).
    pub requests_completed: u64,
    /// Completed requests that missed their deadline budget.
    pub deadline_misses: u64,
    /// Requests shed by admission control.
    pub requests_shed: u64,
    /// Batches closed by the dynamic batcher.
    pub batches_closed: u64,
    /// Requests dispatched by the fleet router (fleet mode).
    pub requests_routed: u64,
    /// Fleet device fabric switches (counted at `DeviceReconfigStart`).
    pub device_reconfigs: u64,
    /// Fleet load-balance samples observed.
    pub imbalance_samples: u64,
    /// Worst sampled fleet load-imbalance coefficient of variation.
    pub imbalance_cv_max: f64,
    /// Gateway backend ejections from the healthy rotation.
    pub backend_ejections: u64,
    /// Gateway backend readmissions after recovery.
    pub backend_readmissions: u64,
    /// Causal request spans emitted by the tracing layer.
    pub trace_spans: u64,
    /// SLO burn-rate alerts fired.
    pub slo_alerts: u64,
    /// Distribution of per-request end-to-end latencies, seconds.
    pub request_latency: LogHistogram,
    /// Distribution of sampled queue depths.
    pub queue_depth: LogHistogram,
    /// Largest event timestamp, seconds.
    pub horizon_s: f64,
}

impl TraceSummary {
    /// Folds a trace into totals and distributions.
    #[must_use]
    pub fn from_events(events: &[Event]) -> Self {
        let mut s = TraceSummary {
            frames_arrived: 0.0,
            frames_dropped: 0.0,
            decisions: 0,
            reconfigurations: 0,
            model_switches: 0,
            flexible_switches: 0,
            retrain_epochs: 0,
            synth_reports: 0,
            stall_s: 0.0,
            requests_enqueued: 0,
            requests_completed: 0,
            deadline_misses: 0,
            requests_shed: 0,
            batches_closed: 0,
            requests_routed: 0,
            device_reconfigs: 0,
            imbalance_samples: 0,
            imbalance_cv_max: 0.0,
            backend_ejections: 0,
            backend_readmissions: 0,
            trace_spans: 0,
            slo_alerts: 0,
            request_latency: LogHistogram::latency_s(),
            queue_depth: LogHistogram::queue_frames(),
            horizon_s: 0.0,
        };
        for e in events {
            s.horizon_s = s.horizon_s.max(e.t_s);
            match &e.kind {
                EventKind::FrameArrived { count } => s.frames_arrived += count,
                EventKind::FrameDropped { count, .. } => s.frames_dropped += count,
                EventKind::QueueDepth { frames } => s.queue_depth.record(*frames),
                EventKind::DecisionMade { stall_s, .. } => {
                    s.decisions += 1;
                    s.stall_s += stall_s;
                }
                EventKind::ReconfigStart { .. } => s.reconfigurations += 1,
                EventKind::ReconfigEnd { .. } => {}
                EventKind::ModelSwitch { flexible, .. } => {
                    s.model_switches += 1;
                    if *flexible {
                        s.flexible_switches += 1;
                    }
                }
                EventKind::RetrainEpoch { .. } => s.retrain_epochs += 1,
                EventKind::SynthReport { .. } => s.synth_reports += 1,
                EventKind::SpanBegin { .. } | EventKind::SpanEnd { .. } => {}
                EventKind::RequestEnqueued { queue_depth, .. } => {
                    s.requests_enqueued += 1;
                    s.queue_depth.record(*queue_depth as f64);
                }
                EventKind::RequestCompleted {
                    latency_s,
                    deadline_met,
                    ..
                } => {
                    s.requests_completed += 1;
                    if !deadline_met {
                        s.deadline_misses += 1;
                    }
                    s.request_latency.record(*latency_s);
                }
                EventKind::RequestShed { .. } => s.requests_shed += 1,
                EventKind::BatchClosed { .. } => s.batches_closed += 1,
                EventKind::RequestRouted { .. } => s.requests_routed += 1,
                EventKind::DeviceReconfigStart { .. } => s.device_reconfigs += 1,
                EventKind::DeviceReconfigEnd { .. } => {}
                EventKind::TraceSpan { .. } => s.trace_spans += 1,
                EventKind::SloBurnAlert { .. } => s.slo_alerts += 1,
                EventKind::BackendEjected { .. } => s.backend_ejections += 1,
                EventKind::BackendReadmitted { .. } => s.backend_readmissions += 1,
                EventKind::FleetImbalanceSample { cv, .. } => {
                    s.imbalance_samples += 1;
                    s.imbalance_cv_max = s.imbalance_cv_max.max(*cv);
                }
            }
        }
        s
    }
}

/// Renders a summary in the Prometheus text exposition format.
///
/// Metric families are emitted in sorted name order (labels included), so
/// the exposition is byte-stable for a given summary and safe to
/// snapshot-test or diff between replays.
#[must_use]
pub fn to_prometheus(summary: &TraceSummary) -> String {
    let mut blocks: Vec<(String, String)> = Vec::new();
    let mut metric = |name: &str, kind: &str, help: &str, value: String| {
        blocks.push((
            name.to_string(),
            format!("# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"),
        ));
    };
    metric(
        "adaflow_frames_arrived_total",
        "counter",
        "Frames offered by the workload.",
        format!("{}", summary.frames_arrived),
    );
    metric(
        "adaflow_frames_dropped_total",
        "counter",
        "Frames lost to buffer overflow.",
        format!("{}", summary.frames_dropped),
    );
    metric(
        "adaflow_decisions_total",
        "counter",
        "Runtime Manager decisions.",
        format!("{}", summary.decisions),
    );
    metric(
        "adaflow_reconfigurations_total",
        "counter",
        "FPGA reconfigurations.",
        format!("{}", summary.reconfigurations),
    );
    metric(
        "adaflow_model_switches_total",
        "counter",
        "CNN model switches (any kind).",
        format!("{}", summary.model_switches),
    );
    metric(
        "adaflow_flexible_switches_total",
        "counter",
        "Fast model switches on the flexible accelerator.",
        format!("{}", summary.flexible_switches),
    );
    metric(
        "adaflow_stall_seconds_total",
        "counter",
        "Serving stall charged by decisions.",
        format!("{}", summary.stall_s),
    );
    metric(
        "adaflow_retrain_epochs_total",
        "counter",
        "Design-time retraining epochs.",
        format!("{}", summary.retrain_epochs),
    );
    metric(
        "adaflow_synth_reports_total",
        "counter",
        "Design-time synthesis reports.",
        format!("{}", summary.synth_reports),
    );
    metric(
        "adaflow_requests_enqueued_total",
        "counter",
        "Requests admitted into the serving queue.",
        format!("{}", summary.requests_enqueued),
    );
    metric(
        "adaflow_requests_completed_total",
        "counter",
        "Requests that finished service.",
        format!("{}", summary.requests_completed),
    );
    metric(
        "adaflow_deadline_misses_total",
        "counter",
        "Completed requests that missed their deadline.",
        format!("{}", summary.deadline_misses),
    );
    metric(
        "adaflow_requests_shed_total",
        "counter",
        "Requests shed by admission control.",
        format!("{}", summary.requests_shed),
    );
    metric(
        "adaflow_batches_closed_total",
        "counter",
        "Batches closed by the dynamic batcher.",
        format!("{}", summary.batches_closed),
    );
    metric(
        "adaflow_requests_routed_total",
        "counter",
        "Requests dispatched by the fleet router.",
        format!("{}", summary.requests_routed),
    );
    metric(
        "adaflow_device_reconfigs_total",
        "counter",
        "Fleet device fabric switches.",
        format!("{}", summary.device_reconfigs),
    );
    metric(
        "adaflow_trace_spans_total",
        "counter",
        "Causal request spans emitted by the tracing layer.",
        format!("{}", summary.trace_spans),
    );
    metric(
        "adaflow_slo_burn_alerts_total",
        "counter",
        "SLO burn-rate alerts fired.",
        format!("{}", summary.slo_alerts),
    );
    metric(
        "adaflow_backend_ejections_total",
        "counter",
        "Gateway backends ejected from the healthy rotation.",
        format!("{}", summary.backend_ejections),
    );
    metric(
        "adaflow_backend_readmissions_total",
        "counter",
        "Gateway backends readmitted after recovery.",
        format!("{}", summary.backend_readmissions),
    );
    if summary.imbalance_samples > 0 {
        metric(
            "adaflow_fleet_imbalance_cv_max",
            "gauge",
            "Worst sampled fleet load-imbalance coefficient of variation.",
            format!("{}", summary.imbalance_cv_max),
        );
    }
    if summary.requests_completed > 0 {
        for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
            metric(
                &format!("adaflow_request_latency_seconds{{quantile=\"{label}\"}}"),
                "gauge",
                "Per-request end-to-end latency quantile.",
                format!("{}", summary.request_latency.quantile(q)),
            );
        }
    }
    for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
        metric(
            &format!("adaflow_queue_depth_frames{{quantile=\"{label}\"}}"),
            "gauge",
            "Sampled queue depth quantile.",
            format!("{}", summary.queue_depth.quantile(q)),
        );
    }
    blocks.sort_by(|a, b| a.0.cmp(&b.0));
    blocks.into_iter().map(|(_, body)| body).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::new(0.01, EventKind::FrameArrived { count: 6.0 }),
            Event::new(0.02, EventKind::QueueDepth { frames: 3.0 }),
            Event::new(
                0.5,
                EventKind::DecisionMade {
                    model: "cnv_p25".into(),
                    accelerator: "flexible".into(),
                    switch: "flexible-switch".into(),
                    stall_s: 0.0,
                    incoming_fps: 612.0,
                },
            ),
            Event::new(
                0.5,
                EventKind::ModelSwitch {
                    from: "cnv".into(),
                    to: "cnv_p25".into(),
                    flexible: true,
                },
            ),
            Event::new(
                1.0,
                EventKind::ReconfigStart {
                    model: "cnv".into(),
                },
            ),
            Event::new(
                1.145,
                EventKind::ReconfigEnd {
                    model: "cnv".into(),
                    stall_s: 0.145,
                },
            ),
            Event::new(
                1.2,
                EventKind::FrameDropped {
                    count: 2.5,
                    queue_frames: 64.0,
                },
            ),
        ]
    }

    #[test]
    fn jsonl_round_trips() {
        let events = sample_events();
        let text = events_to_jsonl(&events);
        assert_eq!(text.lines().count(), events.len());
        let back = events_from_jsonl(&text).expect("parses");
        assert_eq!(events, back);
    }

    #[test]
    fn chrome_trace_round_trips_through_serde() {
        let trace = to_chrome_trace(&sample_events());
        let json = serde_json::to_string_pretty(&trace).expect("serializes");
        let back: Vec<ChromeTraceEvent> = serde_json::from_str(&json).expect("parses");
        assert_eq!(trace, back);
    }

    #[test]
    fn chrome_trace_has_spans_and_instants() {
        let trace = to_chrome_trace(&sample_events());
        // FrameArrived is aggregated away.
        assert!(!trace.iter().any(|e| e.name == "frame_arrived"));
        let begins = trace.iter().filter(|e| e.ph == "B").count();
        let ends = trace.iter().filter(|e| e.ph == "E").count();
        assert_eq!(begins, 1);
        assert_eq!(ends, 1);
        assert!(trace
            .iter()
            .any(|e| e.name == "decision_made" && e.ph == "i"));
        let counter = trace
            .iter()
            .find(|e| e.ph == "C")
            .expect("queue counter present");
        assert_eq!(counter.ts, 0.02 * 1e6);
    }

    #[test]
    fn summary_counts_everything() {
        let s = TraceSummary::from_events(&sample_events());
        assert_eq!(s.frames_arrived, 6.0);
        assert_eq!(s.frames_dropped, 2.5);
        assert_eq!(s.decisions, 1);
        assert_eq!(s.reconfigurations, 1);
        assert_eq!(s.model_switches, 1);
        assert_eq!(s.flexible_switches, 1);
        assert!((s.horizon_s - 1.2).abs() < 1e-12);
        assert!(!s.queue_depth.is_empty());
    }

    #[test]
    fn summary_folds_request_lifecycle() {
        let events = vec![
            Event::new(
                0.1,
                EventKind::RequestEnqueued {
                    id: 0,
                    device: 0,
                    queue_depth: 1,
                },
            ),
            Event::new(
                0.1,
                EventKind::RequestEnqueued {
                    id: 1,
                    device: 1,
                    queue_depth: 2,
                },
            ),
            Event::new(
                0.12,
                EventKind::BatchClosed {
                    size: 2,
                    oldest_wait_s: 0.02,
                    model: "cnv".into(),
                },
            ),
            Event::new(
                0.15,
                EventKind::RequestCompleted {
                    id: 0,
                    latency_s: 0.05,
                    deadline_met: true,
                },
            ),
            Event::new(
                0.15,
                EventKind::RequestCompleted {
                    id: 1,
                    latency_s: 0.5,
                    deadline_met: false,
                },
            ),
            Event::new(
                0.2,
                EventKind::RequestShed {
                    id: 2,
                    reason: "queue-full".into(),
                    queue_depth: 2,
                },
            ),
        ];
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.requests_enqueued, 2);
        assert_eq!(s.requests_completed, 2);
        assert_eq!(s.deadline_misses, 1);
        assert_eq!(s.requests_shed, 1);
        assert_eq!(s.batches_closed, 1);
        assert_eq!(s.request_latency.count(), 2.0);
        let text = to_prometheus(&s);
        assert!(text.contains("adaflow_requests_completed_total 2"));
        assert!(text.contains("adaflow_deadline_misses_total 1"));
        assert!(text.contains("adaflow_request_latency_seconds{quantile=\"0.95\"}"));
        // The chrome trace keeps the batch/shed instants but aggregates the
        // per-request enqueue/complete flood away.
        let trace = to_chrome_trace(&events);
        assert!(trace.iter().any(|e| e.name == "batch_closed"));
        assert!(trace.iter().any(|e| e.name == "request_shed"));
        assert!(!trace.iter().any(|e| e.name == "request_enqueued"));
        assert!(!trace.iter().any(|e| e.name == "request_completed"));
    }

    #[test]
    fn fleet_events_flow_through_all_three_exporters() {
        let events = vec![
            Event::new(
                0.1,
                EventKind::RequestRouted {
                    id: 1,
                    device_idx: 0,
                    queue_depth: 3,
                },
            ),
            Event::new(
                0.2,
                EventKind::DeviceReconfigStart {
                    device_idx: 1,
                    model: "cnv".into(),
                },
            ),
            Event::new(
                0.3,
                EventKind::DeviceReconfigEnd {
                    device_idx: 1,
                    model: "cnv".into(),
                    stall_s: 0.1,
                },
            ),
            Event::new(
                0.4,
                EventKind::FleetImbalanceSample {
                    cv: 0.25,
                    max_queue: 9,
                    min_queue: 4,
                },
            ),
            Event::new(
                0.5,
                EventKind::FleetImbalanceSample {
                    cv: 0.75,
                    max_queue: 20,
                    min_queue: 1,
                },
            ),
        ];
        // JSONL round-trips the typed events.
        let back = events_from_jsonl(&events_to_jsonl(&events)).expect("parses");
        assert_eq!(events, back);
        // Chrome trace: per-device span pair on its own lane, imbalance as
        // a counter, routing aggregated away.
        let trace = to_chrome_trace(&events);
        assert!(!trace.iter().any(|e| e.name == "request_routed"));
        let begin = trace
            .iter()
            .find(|e| e.name == "device_reconfig" && e.ph == "B")
            .expect("reconfig span begins");
        let end = trace
            .iter()
            .find(|e| e.name == "device_reconfig" && e.ph == "E")
            .expect("reconfig span ends");
        assert_eq!(begin.tid, end.tid);
        assert_eq!(begin.tid, 11, "device 1 gets its own lane");
        assert_eq!(
            trace
                .iter()
                .filter(|e| e.name == "fleet_imbalance" && e.ph == "C")
                .count(),
            2
        );
        // Prometheus: routed/reconfig counters and the worst-sample gauge.
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.requests_routed, 1);
        assert_eq!(s.device_reconfigs, 1);
        assert_eq!(s.imbalance_samples, 2);
        assert!((s.imbalance_cv_max - 0.75).abs() < 1e-12);
        let text = to_prometheus(&s);
        assert!(text.contains("adaflow_requests_routed_total 1"));
        assert!(text.contains("adaflow_device_reconfigs_total 1"));
        assert!(text.contains("adaflow_fleet_imbalance_cv_max 0.75"));
    }

    #[test]
    fn prometheus_text_exposition_shape() {
        let s = TraceSummary::from_events(&sample_events());
        let text = to_prometheus(&s);
        assert!(text.contains("# TYPE adaflow_frames_dropped_total counter"));
        assert!(text.contains("adaflow_frames_dropped_total 2.5"));
        assert!(text.contains("adaflow_queue_depth_frames{quantile=\"0.95\"}"));
        // Every non-comment line is `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "line: {line}");
        }
    }

    #[test]
    fn prometheus_families_are_sorted() {
        let text = to_prometheus(&TraceSummary::from_events(&sample_events()));
        let families: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("# TYPE"))
            .map(|l| l.split_whitespace().nth(2).unwrap())
            .collect();
        let mut sorted = families.clone();
        sorted.sort_unstable();
        assert_eq!(families, sorted);
    }

    #[test]
    fn trace_spans_lower_to_async_pairs_with_ids() {
        let events = vec![
            Event::new(
                0.3,
                EventKind::TraceSpan {
                    trace: 9,
                    span: 0,
                    parent: None,
                    stage: "request".into(),
                    begin_s: 0.1,
                    device_idx: 1,
                },
            ),
            Event::new(
                0.3,
                EventKind::TraceSpan {
                    trace: 9,
                    span: 5,
                    parent: Some(0),
                    stage: "compute".into(),
                    begin_s: 0.2,
                    device_idx: 1,
                },
            ),
            Event::new(
                6.0,
                EventKind::SloBurnAlert {
                    objective: "deadline".into(),
                    short_window_s: 5.0,
                    long_window_s: 25.0,
                    short_burn: 4.0,
                    long_burn: 2.5,
                    budget_consumed_pct: 55.0,
                },
            ),
        ];
        let trace = to_chrome_trace(&events);
        let asyncs: Vec<&ChromeTraceEvent> = trace
            .iter()
            .filter(|e| e.ph == "b" || e.ph == "e")
            .collect();
        assert_eq!(asyncs.len(), 4, "each span becomes a b/e pair");
        assert!(asyncs.iter().all(|e| e.id == Some(9) && e.cat == "request"));
        let root_begin = asyncs
            .iter()
            .find(|e| e.name == "request" && e.ph == "b")
            .expect("root begin");
        assert_eq!(root_begin.ts, 0.1 * 1e6);
        let compute_end = asyncs
            .iter()
            .find(|e| e.name == "compute" && e.ph == "e")
            .expect("compute end");
        assert_eq!(compute_end.ts, 0.3 * 1e6);
        assert_eq!(compute_end.args.get("parent"), Some(&Value::U64(0)));
        let alert = trace
            .iter()
            .find(|e| e.name == "slo_burn_alert")
            .expect("alert instant");
        assert_eq!(alert.ph, "i");
        assert_eq!(alert.id, None);
        // The JSON carries an `id` key only on async phases.
        let json = chrome_trace_json(&events);
        let back: Vec<ChromeTraceEvent> = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, trace);
        let value = serde_json::from_str_value(&json).expect("parses as value");
        let Value::Array(objects) = value else {
            panic!("trace json is an array");
        };
        for obj in &objects {
            let is_async = matches!(obj.get("ph"), Some(Value::Str(ph)) if ph == "b" || ph == "e");
            assert_eq!(obj.get("id").is_some(), is_async, "id iff async: {obj:?}");
        }
        // And the summary counts the new kinds.
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.trace_spans, 2);
        assert_eq!(s.slo_alerts, 1);
        let text = to_prometheus(&s);
        assert!(text.contains("adaflow_trace_spans_total 2"));
        assert!(text.contains("adaflow_slo_burn_alerts_total 1"));
    }
}
