//! Critical-path analysis: per-stage latency waterfalls over a trace
//! forest.
//!
//! The analyzer folds every well-formed trace into a per-stage attribution
//! (where does end-to-end latency go?), a per-device breakdown, and the
//! top-K slowest traces with their span trees. Because the leaf stages
//! tile the root span exactly (see [`crate::span::Stage`]), the stage
//! means sum to the end-to-end mean up to floating-point noise, which the
//! report records as `attribution_residual_s`.

use crate::histogram::LogHistogram;
use crate::span::{SpanRecord, Stage};
use crate::trace::{Trace, TraceForest};
use serde::Serialize;
use std::collections::BTreeMap;

/// Where one stage's time goes, across all traces.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StageAttribution {
    /// Stage label.
    pub stage: String,
    /// Spans observed for this stage.
    pub count: u64,
    /// Sum of span durations, seconds.
    pub total_s: f64,
    /// Mean span duration, seconds.
    pub mean_s: f64,
    /// Median span duration, seconds (log-bucketed estimate).
    pub p50_s: f64,
    /// 99th-percentile span duration, seconds (log-bucketed estimate).
    pub p99_s: f64,
    /// Share of total attributed time, percent.
    pub share_pct: f64,
}

/// Latency decomposition for one device.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DeviceBreakdown {
    /// Fleet device index (0 in single-device mode).
    pub device_idx: u32,
    /// Traces served by the device.
    pub traces: u64,
    /// Mean end-to-end latency, seconds.
    pub mean_latency_s: f64,
    /// Mean queue-wait stage duration, seconds.
    pub mean_queue_wait_s: f64,
    /// Mean reconfiguration-stall stage duration, seconds.
    pub mean_stall_s: f64,
    /// Mean compute stage duration, seconds.
    pub mean_compute_s: f64,
}

/// One slow trace, flattened for reporting.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SlowTrace {
    /// Trace id (request id).
    pub trace: u64,
    /// Device that served it.
    pub device_idx: u32,
    /// Root begin, seconds.
    pub begin_s: f64,
    /// End-to-end latency, seconds.
    pub latency_s: f64,
    /// The full span tree, in span-id order.
    pub spans: Vec<SpanRecord>,
}

/// The full waterfall report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Waterfall {
    /// Traces analyzed.
    pub traces: u64,
    /// Mean end-to-end latency, seconds.
    pub end_to_end_mean_s: f64,
    /// Median end-to-end latency, seconds.
    pub end_to_end_p50_s: f64,
    /// 99th-percentile end-to-end latency, seconds.
    pub end_to_end_p99_s: f64,
    /// Per-stage attribution, in stage order (root and zero-width route
    /// marker excluded; the listed stages tile the end-to-end interval).
    pub stages: Vec<StageAttribution>,
    /// `|Σ stage means − end-to-end mean|`: floating-point residual of the
    /// tiling invariant, seconds.
    pub attribution_residual_s: f64,
    /// Per-device breakdown, sorted by device index.
    pub per_device: Vec<DeviceBreakdown>,
    /// The `top_k` slowest traces, slowest first (ties broken by trace id).
    pub top: Vec<SlowTrace>,
}

struct StageFold {
    count: u64,
    total_s: f64,
    hist: LogHistogram,
}

impl StageFold {
    fn new() -> Self {
        StageFold {
            count: 0,
            total_s: 0.0,
            hist: LogHistogram::latency_s(),
        }
    }

    fn push(&mut self, duration_s: f64) {
        self.count += 1;
        self.total_s += duration_s;
        self.hist.record(duration_s);
    }
}

#[derive(Default)]
struct DeviceFold {
    traces: u64,
    latency_s: f64,
    queue_wait_s: f64,
    stall_s: f64,
    compute_s: f64,
}

fn stage_duration(trace: &Trace, stage: Stage) -> f64 {
    trace
        .spans
        .iter()
        .find(|s| s.span == stage.span_id())
        .map_or(0.0, SpanRecord::duration_s)
}

impl Waterfall {
    /// Analyzes a forest, keeping the `top_k` slowest traces in full.
    #[must_use]
    pub fn from_forest(forest: &TraceForest, top_k: usize) -> Waterfall {
        let mut end_to_end = StageFold::new();
        let mut stages: Vec<StageFold> = Stage::LEAVES.iter().map(|_| StageFold::new()).collect();
        let mut devices: BTreeMap<u32, DeviceFold> = BTreeMap::new();
        for trace in &forest.traces {
            let Some(root) = trace.root() else { continue };
            end_to_end.push(root.duration_s());
            for (fold, &stage) in stages.iter_mut().zip(Stage::LEAVES.iter()) {
                fold.push(stage_duration(trace, stage));
            }
            let d = devices.entry(root.device_idx).or_default();
            d.traces += 1;
            d.latency_s += root.duration_s();
            d.queue_wait_s += stage_duration(trace, Stage::QueueWait);
            d.stall_s += stage_duration(trace, Stage::ReconfigStall);
            d.compute_s += stage_duration(trace, Stage::Compute);
        }
        let attributed_total: f64 = stages.iter().map(|f| f.total_s).sum();
        let stage_reports: Vec<StageAttribution> = stages
            .iter()
            .zip(Stage::LEAVES.iter())
            .map(|(fold, &stage)| StageAttribution {
                stage: stage.label().to_string(),
                count: fold.count,
                total_s: fold.total_s,
                mean_s: if fold.count > 0 {
                    fold.total_s / fold.count as f64
                } else {
                    0.0
                },
                p50_s: fold.hist.p50(),
                p99_s: fold.hist.p99(),
                share_pct: if attributed_total > 0.0 {
                    fold.total_s / attributed_total * 100.0
                } else {
                    0.0
                },
            })
            .collect();
        let end_mean = if end_to_end.count > 0 {
            end_to_end.total_s / end_to_end.count as f64
        } else {
            0.0
        };
        let stage_mean_sum: f64 = stage_reports.iter().map(|s| s.mean_s).sum();
        let mut ranked: Vec<&Trace> = forest
            .traces
            .iter()
            .filter(|t| t.root().is_some())
            .collect();
        ranked.sort_by(|a, b| {
            b.duration_s()
                .partial_cmp(&a.duration_s())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        let top = ranked
            .into_iter()
            .take(top_k)
            .map(|t| {
                let root = t.root().expect("filtered on root presence");
                SlowTrace {
                    trace: t.id.0,
                    device_idx: root.device_idx,
                    begin_s: root.begin_s,
                    latency_s: root.duration_s(),
                    spans: t.spans.clone(),
                }
            })
            .collect();
        Waterfall {
            traces: end_to_end.count,
            end_to_end_mean_s: end_mean,
            end_to_end_p50_s: end_to_end.hist.p50(),
            end_to_end_p99_s: end_to_end.hist.p99(),
            stages: stage_reports,
            attribution_residual_s: (stage_mean_sum - end_mean).abs(),
            per_device: devices
                .into_iter()
                .map(|(device_idx, d)| {
                    let n = d.traces.max(1) as f64;
                    DeviceBreakdown {
                        device_idx,
                        traces: d.traces,
                        mean_latency_s: d.latency_s / n,
                        mean_queue_wait_s: d.queue_wait_s / n,
                        mean_stall_s: d.stall_s / n,
                        mean_compute_s: d.compute_s / n,
                    }
                })
                .collect(),
            top,
        }
    }

    /// Renders the waterfall as an aligned text table plus the top-K span
    /// trees.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "traces: {}  end-to-end mean {:.3} ms  p50 {:.3} ms  p99 {:.3} ms\n",
            self.traces,
            self.end_to_end_mean_s * 1e3,
            self.end_to_end_p50_s * 1e3,
            self.end_to_end_p99_s * 1e3,
        ));
        out.push_str(&format!(
            "{:<15} {:>10} {:>12} {:>12} {:>12} {:>8}\n",
            "stage", "count", "mean ms", "p50 ms", "p99 ms", "share %"
        ));
        for s in &self.stages {
            out.push_str(&format!(
                "{:<15} {:>10} {:>12.4} {:>12.4} {:>12.4} {:>8.2}\n",
                s.stage,
                s.count,
                s.mean_s * 1e3,
                s.p50_s * 1e3,
                s.p99_s * 1e3,
                s.share_pct,
            ));
        }
        out.push_str(&format!(
            "attribution residual: {:.3e} s\n",
            self.attribution_residual_s
        ));
        if !self.per_device.is_empty() {
            out.push_str("per-device:\n");
            for d in &self.per_device {
                out.push_str(&format!(
                    "  device {:>2}: {:>8} traces  latency {:>9.4} ms  queue {:>9.4} ms  stall {:>9.4} ms  compute {:>9.4} ms\n",
                    d.device_idx,
                    d.traces,
                    d.mean_latency_s * 1e3,
                    d.mean_queue_wait_s * 1e3,
                    d.mean_stall_s * 1e3,
                    d.mean_compute_s * 1e3,
                ));
            }
        }
        if !self.top.is_empty() {
            out.push_str("slowest traces:\n");
            for t in &self.top {
                out.push_str(&format!(
                    "  trace {:>6} @ {:>9.3} s  device {}  latency {:.4} ms\n",
                    t.trace,
                    t.begin_s,
                    t.device_idx,
                    t.latency_s * 1e3
                ));
                for s in &t.spans {
                    let indent = if s.parent.is_none() { "    " } else { "      " };
                    out.push_str(&format!(
                        "{indent}{:<15} [{:.6}, {:.6}]  {:.4} ms\n",
                        s.stage,
                        s.begin_s,
                        s.end_s,
                        s.duration_s() * 1e3
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::SinkHandle;
    use crate::span::TraceBuilder;
    use crate::trace::TraceId;

    fn forest() -> TraceForest {
        let (sink, recorder) = SinkHandle::recorder(256);
        // Trace 1 on device 0: 10 ms queue, 5 ms stall, 15 ms compute.
        TraceBuilder::new(TraceId(1), 0)
            .root(0.0, 0.030)
            .child(Stage::QueueWait, 0.0, 0.010)
            .child(Stage::BatchForm, 0.010, 0.010)
            .child(Stage::ReconfigStall, 0.010, 0.015)
            .child(Stage::Compute, 0.015, 0.030)
            .emit(&sink);
        // Trace 2 on device 1: pure compute.
        TraceBuilder::new(TraceId(2), 1)
            .root(1.0, 1.020)
            .child(Stage::QueueWait, 1.0, 1.0)
            .child(Stage::BatchForm, 1.0, 1.0)
            .child(Stage::ReconfigStall, 1.0, 1.0)
            .child(Stage::Compute, 1.0, 1.020)
            .emit(&sink);
        TraceForest::from_events(&recorder.drain())
    }

    #[test]
    fn stage_means_tile_the_end_to_end_mean() {
        let w = Waterfall::from_forest(&forest(), 1);
        assert_eq!(w.traces, 2);
        assert!((w.end_to_end_mean_s - 0.025).abs() < 1e-12);
        let stage_sum: f64 = w.stages.iter().map(|s| s.mean_s).sum();
        assert!((stage_sum - w.end_to_end_mean_s).abs() < 1e-9);
        assert!(w.attribution_residual_s < 1e-9);
        let shares: f64 = w.stages.iter().map(|s| s.share_pct).sum();
        assert!((shares - 100.0).abs() < 1e-9);
    }

    #[test]
    fn top_k_ranks_by_latency_and_devices_split() {
        let w = Waterfall::from_forest(&forest(), 5);
        assert_eq!(w.top.len(), 2);
        assert_eq!(w.top[0].trace, 1, "30 ms trace is slowest");
        assert_eq!(w.top[0].spans.len(), 5);
        assert_eq!(w.per_device.len(), 2);
        assert_eq!(w.per_device[0].device_idx, 0);
        assert!((w.per_device[0].mean_stall_s - 0.005).abs() < 1e-12);
        assert!((w.per_device[1].mean_compute_s - 0.020).abs() < 1e-12);
    }

    #[test]
    fn text_rendering_mentions_every_stage() {
        let w = Waterfall::from_forest(&forest(), 1);
        let text = w.render_text();
        for stage in Stage::LEAVES {
            assert!(text.contains(stage.label()), "missing {}", stage.label());
        }
        assert!(text.contains("slowest traces:"));
    }

    #[test]
    fn empty_forest_is_all_zero() {
        let w = Waterfall::from_forest(&TraceForest::default(), 3);
        assert_eq!(w.traces, 0);
        assert_eq!(w.end_to_end_mean_s, 0.0);
        assert!(w.top.is_empty());
        assert!(w.per_device.is_empty());
    }
}
