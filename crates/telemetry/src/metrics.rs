//! A streaming metrics registry fed from telemetry events.
//!
//! [`MetricsRegistry`] folds the event stream into named counters, gauges
//! and log-bucketed histograms (reusing [`LogHistogram`]), plus tumbling
//! sim-time windows of request outcomes that the SLO engine consumes. It
//! can be filled offline from a recorded trace ([`MetricsRegistry::observe_all`])
//! or attached live to an engine via the [`RegistrySink`] adapter.
//!
//! All storage is `BTreeMap`-keyed, so iteration — and therefore the
//! Prometheus exposition — is deterministically ordered.

use crate::event::{Event, EventKind};
use crate::histogram::LogHistogram;
use crate::sink::TelemetrySink;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Registry parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegistryConfig {
    /// Tumbling window length, simulation seconds.
    pub window_s: f64,
    /// Latency objective used to classify completions as good/bad in the
    /// per-window counts (alongside the deadline verdict carried by the
    /// event itself).
    pub latency_objective_s: f64,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            window_s: 1.0,
            latency_objective_s: 0.25,
        }
    }
}

/// Request outcomes inside one tumbling window `[index·w, (index+1)·w)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Window ordinal (`floor(t / window_s)`).
    pub index: u64,
    /// Requests completed in the window.
    pub completed: u64,
    /// Completions that missed their deadline budget.
    pub deadline_misses: u64,
    /// Completions slower than the configured latency objective.
    pub latency_over_objective: u64,
    /// Requests shed in the window.
    pub shed: u64,
}

/// Counters, gauges, histograms and tumbling windows distilled from a
/// telemetry stream.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    config: RegistryConfig,
    counters: BTreeMap<String, f64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LogHistogram>,
    /// Sorted by window index.
    windows: Vec<WindowStats>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new(config: RegistryConfig) -> Self {
        assert!(config.window_s > 0.0, "window must be positive");
        assert!(
            config.latency_objective_s > 0.0,
            "latency objective must be positive"
        );
        MetricsRegistry {
            config,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            windows: Vec::new(),
        }
    }

    /// The registry's configuration.
    #[must_use]
    pub fn config(&self) -> RegistryConfig {
        self.config
    }

    fn add(&mut self, name: &str, delta: f64) {
        *self.counters.entry(name.to_string()).or_insert(0.0) += delta;
    }

    fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    fn record(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(LogHistogram::latency_s)
            .record(value);
    }

    fn record_depth(&mut self, value: f64) {
        self.histograms
            .entry("queue_depth".to_string())
            .or_insert_with(LogHistogram::queue_frames)
            .record(value);
    }

    fn window_mut(&mut self, t_s: f64) -> &mut WindowStats {
        let index = if t_s <= 0.0 {
            0
        } else {
            (t_s / self.config.window_s).floor() as u64
        };
        let pos = match self.windows.binary_search_by_key(&index, |w| w.index) {
            Ok(pos) => pos,
            Err(pos) => {
                self.windows.insert(
                    pos,
                    WindowStats {
                        index,
                        ..WindowStats::default()
                    },
                );
                pos
            }
        };
        &mut self.windows[pos]
    }

    /// Folds one event into the registry.
    pub fn observe(&mut self, e: &Event) {
        self.add("events", 1.0);
        match &e.kind {
            EventKind::FrameArrived { count } => self.add("frames_arrived", *count),
            EventKind::FrameDropped { count, .. } => self.add("frames_dropped", *count),
            EventKind::QueueDepth { frames } => {
                self.set_gauge("queue_depth_last", *frames);
                self.record_depth(*frames);
            }
            EventKind::DecisionMade { stall_s, .. } => {
                self.add("decisions", 1.0);
                self.add("stall_seconds", *stall_s);
            }
            EventKind::ReconfigStart { .. } => self.add("reconfigurations", 1.0),
            EventKind::ReconfigEnd { .. } => {}
            EventKind::ModelSwitch { flexible, .. } => {
                self.add("model_switches", 1.0);
                if *flexible {
                    self.add("flexible_switches", 1.0);
                }
            }
            EventKind::RetrainEpoch { .. } => self.add("retrain_epochs", 1.0),
            EventKind::SynthReport { .. } => self.add("synth_reports", 1.0),
            EventKind::SpanBegin { .. } | EventKind::SpanEnd { .. } => {}
            EventKind::RequestEnqueued { queue_depth, .. } => {
                self.add("requests_enqueued", 1.0);
                self.set_gauge("queue_depth_last", *queue_depth as f64);
                self.record_depth(*queue_depth as f64);
            }
            EventKind::BatchClosed {
                size,
                oldest_wait_s,
                ..
            } => {
                self.add("batches_closed", 1.0);
                self.add("batched_requests", *size as f64);
                self.record("batch_oldest_wait_s", *oldest_wait_s);
            }
            EventKind::RequestCompleted {
                latency_s,
                deadline_met,
                ..
            } => {
                self.add("requests_completed", 1.0);
                if !deadline_met {
                    self.add("deadline_misses", 1.0);
                }
                self.record("request_latency_s", *latency_s);
                let objective = self.config.latency_objective_s;
                let w = self.window_mut(e.t_s);
                w.completed += 1;
                if !deadline_met {
                    w.deadline_misses += 1;
                }
                if *latency_s > objective {
                    w.latency_over_objective += 1;
                }
            }
            EventKind::RequestShed { .. } => {
                self.add("requests_shed", 1.0);
                self.window_mut(e.t_s).shed += 1;
            }
            EventKind::RequestRouted { .. } => self.add("requests_routed", 1.0),
            EventKind::DeviceReconfigStart { .. } => self.add("device_reconfigs", 1.0),
            EventKind::DeviceReconfigEnd { stall_s, .. } => self.add("stall_seconds", *stall_s),
            EventKind::TraceSpan { stage, begin_s, .. } => {
                self.add("trace_spans", 1.0);
                self.record(&format!("stage_{stage}_s"), e.t_s - begin_s);
            }
            EventKind::SloBurnAlert { .. } => self.add("slo_burn_alerts", 1.0),
            EventKind::BackendEjected { .. } => self.add("backend_ejections", 1.0),
            EventKind::BackendReadmitted { downtime_s, .. } => {
                self.add("backend_readmissions", 1.0);
                self.record("backend_downtime_s", *downtime_s);
            }
            EventKind::FleetImbalanceSample { cv, .. } => {
                self.add("imbalance_samples", 1.0);
                self.set_gauge("fleet_imbalance_cv_last", *cv);
                let worst = self
                    .gauges
                    .get("fleet_imbalance_cv_max")
                    .copied()
                    .unwrap_or(0.0)
                    .max(*cv);
                self.set_gauge("fleet_imbalance_cv_max", worst);
            }
        }
    }

    /// Folds a whole trace.
    pub fn observe_all(&mut self, events: &[Event]) {
        for e in events {
            self.observe(e);
        }
    }

    /// A counter's value (0 when never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> f64 {
        self.counters.get(name).copied().unwrap_or(0.0)
    }

    /// A gauge's last value, if ever set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram, if anything was recorded under `name`.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// The tumbling windows, sorted by index. Windows with no completions
    /// and no sheds are absent.
    #[must_use]
    pub fn windows(&self) -> &[WindowStats] {
        &self.windows
    }

    /// Renders the registry in the Prometheus text exposition format with
    /// fully deterministic metric ordering (sorted by metric name).
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut blocks: Vec<(String, String)> = Vec::new();
        for (name, value) in &self.counters {
            let full = format!("adaflow_{name}_total");
            blocks.push((
                full.clone(),
                format!("# TYPE {full} counter\n{full} {value}\n"),
            ));
        }
        for (name, value) in &self.gauges {
            let full = format!("adaflow_{name}");
            blocks.push((
                full.clone(),
                format!("# TYPE {full} gauge\n{full} {value}\n"),
            ));
        }
        for (name, hist) in &self.histograms {
            let full = format!("adaflow_{name}");
            let mut body = format!("# TYPE {full} summary\n");
            for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                body.push_str(&format!(
                    "{full}{{quantile=\"{label}\"}} {}\n",
                    hist.quantile(q)
                ));
            }
            body.push_str(&format!("{full}_count {}\n", hist.count()));
            blocks.push((full, body));
        }
        blocks.sort_by(|a, b| a.0.cmp(&b.0));
        blocks.into_iter().map(|(_, body)| body).collect()
    }
}

/// A [`TelemetrySink`] that streams events straight into a registry.
///
/// The engines' single-writer loop makes the mutex effectively
/// uncontended; [`RegistrySink::snapshot`] clones the registry for
/// analysis while a run is still attached.
#[derive(Debug)]
pub struct RegistrySink {
    registry: Mutex<MetricsRegistry>,
}

impl RegistrySink {
    /// A fresh sink around an empty registry.
    #[must_use]
    pub fn new(config: RegistryConfig) -> Arc<RegistrySink> {
        Arc::new(RegistrySink {
            registry: Mutex::new(MetricsRegistry::new(config)),
        })
    }

    /// A copy of the current registry state.
    #[must_use]
    pub fn snapshot(&self) -> MetricsRegistry {
        self.registry.lock().expect("registry poisoned").clone()
    }
}

impl TelemetrySink for RegistrySink {
    fn record(&self, event: Event) {
        self.registry
            .lock()
            .expect("registry poisoned")
            .observe(&event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::SinkHandle;

    fn completed(t_s: f64, latency_s: f64, deadline_met: bool) -> Event {
        Event::new(
            t_s,
            EventKind::RequestCompleted {
                id: 0,
                latency_s,
                deadline_met,
            },
        )
    }

    #[test]
    fn registry_folds_counters_windows_and_histograms() {
        let mut r = MetricsRegistry::new(RegistryConfig {
            window_s: 1.0,
            latency_objective_s: 0.1,
        });
        r.observe_all(&[
            completed(0.5, 0.05, true),
            completed(0.6, 0.25, false),
            completed(1.5, 0.05, true),
            Event::new(
                1.7,
                EventKind::RequestShed {
                    id: 9,
                    reason: "queue-full".into(),
                    queue_depth: 3,
                },
            ),
        ]);
        assert_eq!(r.counter("requests_completed"), 3.0);
        assert_eq!(r.counter("deadline_misses"), 1.0);
        assert_eq!(r.counter("requests_shed"), 1.0);
        assert_eq!(r.counter("events"), 4.0);
        let w = r.windows();
        assert_eq!(w.len(), 2);
        assert_eq!(
            (w[0].index, w[0].completed, w[0].deadline_misses),
            (0, 2, 1)
        );
        assert_eq!(w[0].latency_over_objective, 1);
        assert_eq!((w[1].index, w[1].completed, w[1].shed), (1, 1, 1));
        let latency = r.histogram("request_latency_s").expect("histogram");
        assert_eq!(latency.count(), 3.0);
    }

    #[test]
    fn registry_tracks_spans_and_gauges() {
        let mut r = MetricsRegistry::new(RegistryConfig::default());
        r.observe(&Event::new(
            1.0,
            EventKind::TraceSpan {
                trace: 1,
                span: 5,
                parent: Some(0),
                stage: "compute".into(),
                begin_s: 0.9,
                device_idx: 0,
            },
        ));
        r.observe(&Event::new(
            2.0,
            EventKind::FleetImbalanceSample {
                cv: 0.5,
                max_queue: 9,
                min_queue: 1,
            },
        ));
        r.observe(&Event::new(
            3.0,
            EventKind::FleetImbalanceSample {
                cv: 0.2,
                max_queue: 4,
                min_queue: 2,
            },
        ));
        let stage = r.histogram("stage_compute_s").expect("stage histogram");
        assert!((stage.mean() - 0.1).abs() < 1e-9);
        assert_eq!(r.gauge("fleet_imbalance_cv_last"), Some(0.2));
        assert_eq!(r.gauge("fleet_imbalance_cv_max"), Some(0.5));
        assert_eq!(r.counter("trace_spans"), 1.0);
    }

    #[test]
    fn prometheus_output_is_sorted_and_stable() {
        let mut r = MetricsRegistry::new(RegistryConfig::default());
        r.observe_all(&[
            completed(0.5, 0.05, true),
            Event::new(0.6, EventKind::QueueDepth { frames: 4.0 }),
        ]);
        let text = r.to_prometheus();
        assert_eq!(text, r.to_prometheus(), "deterministic");
        let families: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("# TYPE"))
            .map(|l| l.split_whitespace().nth(2).unwrap())
            .collect();
        let mut sorted = families.clone();
        sorted.sort_unstable();
        assert_eq!(families, sorted, "families sorted by name");
        assert!(text.contains("adaflow_requests_completed_total 1"));
        assert!(text.contains("adaflow_request_latency_s{quantile=\"0.99\"}"));
    }

    #[test]
    fn registry_sink_streams_events() {
        let sink = RegistrySink::new(RegistryConfig::default());
        let handle = SinkHandle::new(sink.clone());
        handle.emit(
            0.2,
            EventKind::RequestCompleted {
                id: 1,
                latency_s: 0.01,
                deadline_met: true,
            },
        );
        let snap = sink.snapshot();
        assert_eq!(snap.counter("requests_completed"), 1.0);
        assert_eq!(snap.windows().len(), 1);
    }
}
