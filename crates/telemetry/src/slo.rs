//! SLO error-budget accounting and multi-window burn-rate alerting.
//!
//! An SLO says "at least `target` of completed requests must be good".
//! The *error budget* over a run is `(1 − target) × completed`; the *burn
//! rate* over a window is the observed bad fraction divided by the allowed
//! bad fraction, so a burn rate of 1 spends the budget exactly at the
//! sustainable pace and a burn rate of 2 exhausts it twice as fast. The
//! engine evaluates the classic two-window alert: fire when **both** a
//! short window (fast, catches regressions quickly) and a long window
//! (slow, suppresses blips) burn above the threshold. Evaluation walks the
//! registry's tumbling windows on the simulation clock, so alerts are
//! bit-identical per seed.

use crate::event::{Event, EventKind};
use crate::metrics::MetricsRegistry;
use serde::Serialize;

/// What counts as "bad" for an objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Bad = completed past the request's deadline budget.
    Deadline,
    /// Bad = completed slower than the registry's latency objective.
    Latency,
}

impl Objective {
    /// Stable wire label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Objective::Deadline => "deadline",
            Objective::Latency => "latency",
        }
    }

    /// Parses a wire label.
    #[must_use]
    pub fn from_label(label: &str) -> Option<Objective> {
        match label {
            "deadline" => Some(Objective::Deadline),
            "latency" => Some(Objective::Latency),
            _ => None,
        }
    }
}

/// SLO parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// Which completions count as bad.
    pub objective: Objective,
    /// Required good fraction, strictly inside `(0, 1)`.
    pub target: f64,
    /// Short alert window, seconds.
    pub short_window_s: f64,
    /// Long alert window, seconds.
    pub long_window_s: f64,
    /// Fire when both windows burn at or above this rate.
    pub alert_burn_rate: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            objective: Objective::Deadline,
            target: 0.97,
            short_window_s: 5.0,
            long_window_s: 25.0,
            alert_burn_rate: 2.0,
        }
    }
}

/// Burn over one trailing window, sampled at a base-window boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct WindowBurn {
    /// Boundary time (end of the base window), seconds.
    pub end_s: f64,
    /// Completions inside the trailing window.
    pub completed: u64,
    /// Bad completions inside the trailing window.
    pub bad: u64,
    /// Observed bad fraction over allowed bad fraction (0 when idle).
    pub burn_rate: f64,
}

/// The evaluated SLO state of one run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SloReport {
    /// Objective label (`"deadline"` or `"latency"`).
    pub objective: String,
    /// Required good fraction.
    pub target: f64,
    /// Completions observed.
    pub total_completed: u64,
    /// Bad completions observed.
    pub bad: u64,
    /// Achieved good fraction (1 when idle).
    pub good_fraction: f64,
    /// Allowed bad completions over the run: `(1 − target) × total`.
    pub error_budget: f64,
    /// `bad / error_budget`, percent (0 when idle).
    pub budget_consumed_pct: f64,
    /// Whole-run burn rate.
    pub overall_burn_rate: f64,
    /// Short alert window, seconds.
    pub short_window_s: f64,
    /// Long alert window, seconds.
    pub long_window_s: f64,
    /// Alert threshold on both windows.
    pub alert_burn_rate: f64,
    /// Worst trailing short-window burn observed.
    pub worst_short_burn: f64,
    /// Worst trailing long-window burn observed.
    pub worst_long_burn: f64,
    /// Edge-triggered [`EventKind::SloBurnAlert`] events, in time order.
    pub alerts: Vec<Event>,
}

/// Evaluates an [`SloConfig`] against a filled registry.
#[derive(Debug, Clone)]
pub struct SloEngine {
    config: SloConfig,
}

impl SloEngine {
    /// Builds the engine, validating the configuration.
    #[must_use]
    pub fn new(config: SloConfig) -> Self {
        assert!(
            config.target > 0.0 && config.target < 1.0,
            "SLO target must be strictly inside (0, 1)"
        );
        assert!(
            config.short_window_s > 0.0 && config.long_window_s >= config.short_window_s,
            "windows must be positive and long >= short"
        );
        assert!(config.alert_burn_rate > 0.0, "alert rate must be positive");
        SloEngine { config }
    }

    fn bad_in(&self, w: &crate::metrics::WindowStats) -> u64 {
        match self.config.objective {
            Objective::Deadline => w.deadline_misses,
            Objective::Latency => w.latency_over_objective,
        }
    }

    /// Walks the registry's tumbling windows and produces the report.
    #[must_use]
    pub fn evaluate(&self, registry: &MetricsRegistry) -> SloReport {
        let cfg = &self.config;
        let allowed_frac = 1.0 - cfg.target;
        let base_s = registry.config().window_s;
        // Densify the sparse window list so trailing sums see idle gaps.
        let last_index = registry.windows().last().map_or(0, |w| w.index);
        let mut completed = vec![0u64; last_index as usize + 1];
        let mut bad = vec![0u64; last_index as usize + 1];
        for w in registry.windows() {
            completed[w.index as usize] = w.completed;
            bad[w.index as usize] = self.bad_in(w);
        }
        let burn = |c: u64, b: u64| {
            if c == 0 {
                0.0
            } else {
                (b as f64 / c as f64) / allowed_frac
            }
        };
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let span_windows = |len_s: f64| ((len_s / base_s).ceil() as usize).max(1);
        let short_n = span_windows(cfg.short_window_s);
        let long_n = span_windows(cfg.long_window_s);
        let trailing = |sums: &[u64], i: usize, n: usize| -> u64 {
            sums[i.saturating_sub(n - 1)..=i].iter().sum()
        };
        let mut alerts = Vec::new();
        let mut worst_short: f64 = 0.0;
        let mut worst_long: f64 = 0.0;
        let mut cumulative_bad = 0u64;
        let mut cumulative_completed = 0u64;
        let mut firing = false;
        for i in 0..completed.len() {
            cumulative_bad += bad[i];
            cumulative_completed += completed[i];
            let short_burn = burn(trailing(&completed, i, short_n), trailing(&bad, i, short_n));
            let long_burn = burn(trailing(&completed, i, long_n), trailing(&bad, i, long_n));
            worst_short = worst_short.max(short_burn);
            worst_long = worst_long.max(long_burn);
            let over = short_burn >= cfg.alert_burn_rate && long_burn >= cfg.alert_burn_rate;
            if over && !firing {
                let budget = allowed_frac * cumulative_completed as f64;
                alerts.push(Event::new(
                    (i as f64 + 1.0) * base_s,
                    EventKind::SloBurnAlert {
                        objective: cfg.objective.label().to_string(),
                        short_window_s: cfg.short_window_s,
                        long_window_s: cfg.long_window_s,
                        short_burn,
                        long_burn,
                        budget_consumed_pct: if budget > 0.0 {
                            cumulative_bad as f64 / budget * 100.0
                        } else {
                            0.0
                        },
                    },
                ));
            }
            firing = over;
        }
        let total = cumulative_completed;
        let total_bad = cumulative_bad;
        let error_budget = allowed_frac * total as f64;
        SloReport {
            objective: cfg.objective.label().to_string(),
            target: cfg.target,
            total_completed: total,
            bad: total_bad,
            good_fraction: if total > 0 {
                1.0 - total_bad as f64 / total as f64
            } else {
                1.0
            },
            error_budget,
            budget_consumed_pct: if error_budget > 0.0 {
                total_bad as f64 / error_budget * 100.0
            } else {
                0.0
            },
            overall_burn_rate: burn(total, total_bad),
            short_window_s: cfg.short_window_s,
            long_window_s: cfg.long_window_s,
            alert_burn_rate: cfg.alert_burn_rate,
            worst_short_burn: worst_short,
            worst_long_burn: worst_long,
            alerts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricsRegistry, RegistryConfig};

    fn registry_with(misses: &[(f64, bool)]) -> MetricsRegistry {
        let mut r = MetricsRegistry::new(RegistryConfig {
            window_s: 1.0,
            latency_objective_s: 0.1,
        });
        for (i, &(latency_s, deadline_met)) in misses.iter().enumerate() {
            r.observe(&Event::new(
                i as f64 * 0.5,
                EventKind::RequestCompleted {
                    id: i as u64,
                    latency_s,
                    deadline_met,
                },
            ));
        }
        r
    }

    #[test]
    fn healthy_run_has_no_alerts_and_low_burn() {
        let r = registry_with(&[(0.01, true); 40]);
        let report = SloEngine::new(SloConfig::default()).evaluate(&r);
        assert_eq!(report.total_completed, 40);
        assert_eq!(report.bad, 0);
        assert_eq!(report.overall_burn_rate, 0.0);
        assert!(report.alerts.is_empty());
        assert_eq!(report.good_fraction, 1.0);
    }

    #[test]
    fn sustained_misses_fire_one_edge_triggered_alert() {
        // Every completion misses: burn = 1 / 0.03 ≈ 33 on both windows.
        let r = registry_with(&[(0.5, false); 40]);
        let report = SloEngine::new(SloConfig::default()).evaluate(&r);
        assert_eq!(report.bad, 40);
        assert!(report.overall_burn_rate > 30.0);
        assert!(report.budget_consumed_pct > 100.0);
        assert_eq!(report.alerts.len(), 1, "edge-triggered, not re-fired");
        match &report.alerts[0].kind {
            EventKind::SloBurnAlert {
                short_burn,
                long_burn,
                ..
            } => {
                assert!(*short_burn >= 2.0);
                assert!(*long_burn >= 2.0);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn latency_objective_counts_slow_completions() {
        // Deadlines met, but half the completions exceed the 0.1 s latency
        // objective.
        let outcomes: Vec<(f64, bool)> = (0..20)
            .map(|i| (if i % 2 == 0 { 0.2 } else { 0.01 }, true))
            .collect();
        let r = registry_with(&outcomes);
        let cfg = SloConfig {
            objective: Objective::Latency,
            ..SloConfig::default()
        };
        let report = SloEngine::new(cfg).evaluate(&r);
        assert_eq!(report.objective, "latency");
        assert_eq!(report.bad, 10);
        let deadline_view = SloEngine::new(SloConfig::default()).evaluate(&r);
        assert_eq!(deadline_view.bad, 0);
    }

    #[test]
    fn objective_labels_round_trip() {
        for o in [Objective::Deadline, Objective::Latency] {
            assert_eq!(Objective::from_label(o.label()), Some(o));
        }
        assert_eq!(Objective::from_label("nope"), None);
    }
}
