//! Recording sinks.

use crate::event::{Event, EventKind};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Where emitted events go.
///
/// Implementations must be cheap: `record` sits on the simulator's inner
/// loop. Call [`TelemetrySink::enabled`] before building an event payload so
/// disabled sinks cost a branch, not an allocation.
pub trait TelemetrySink {
    /// Whether this sink actually stores events. Hot paths should skip
    /// event construction when `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event.
    fn record(&self, event: Event);
}

/// The no-op sink: `enabled()` is `false` and `record` does nothing, so
/// instrumented code compiled against it reduces to a branch.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn record(&self, _event: Event) {}
}

/// A bounded ring-buffer sink.
///
/// Recording pushes into a preallocated ring under a mutex whose critical
/// section is a couple of index updates and one move — effectively
/// uncontended in the single-writer simulation loop, and safe under the
/// multi-threaded experiment driver. When full, the oldest event is
/// overwritten and counted in [`Recorder::overwritten`].
pub struct Recorder {
    ring: Mutex<Ring>,
    overwritten: AtomicU64,
}

struct Ring {
    slots: Vec<Option<Event>>,
    /// Index of the oldest event.
    head: usize,
    len: usize,
}

impl Recorder {
    /// Creates a recorder holding at most `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> Arc<Recorder> {
        assert!(capacity > 0, "recorder capacity must be positive");
        Arc::new(Recorder {
            ring: Mutex::new(Ring {
                slots: (0..capacity).map(|_| None).collect(),
                head: 0,
                len: 0,
            }),
            overwritten: AtomicU64::new(0),
        })
    }

    /// Events currently buffered, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        let ring = self.ring.lock().expect("recorder poisoned");
        let cap = ring.slots.len();
        (0..ring.len)
            .filter_map(|i| ring.slots[(ring.head + i) % cap].clone())
            .collect()
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.lock().expect("recorder poisoned").len
    }

    /// Whether nothing has been recorded (or everything was drained).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many events were lost to ring overflow.
    #[must_use]
    pub fn overwritten(&self) -> u64 {
        self.overwritten.load(Ordering::Relaxed)
    }

    /// Removes and returns all buffered events, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        let mut ring = self.ring.lock().expect("recorder poisoned");
        let cap = ring.slots.len();
        let mut out = Vec::with_capacity(ring.len);
        for i in 0..ring.len {
            let idx = (ring.head + i) % cap;
            if let Some(e) = ring.slots[idx].take() {
                out.push(e);
            }
        }
        ring.head = 0;
        ring.len = 0;
        out
    }
}

impl TelemetrySink for Recorder {
    fn record(&self, event: Event) {
        let mut ring = self.ring.lock().expect("recorder poisoned");
        let cap = ring.slots.len();
        if ring.len == cap {
            let head = ring.head;
            ring.slots[head] = Some(event);
            ring.head = (head + 1) % cap;
            drop(ring);
            self.overwritten.fetch_add(1, Ordering::Relaxed);
        } else {
            let idx = (ring.head + ring.len) % cap;
            ring.slots[idx] = Some(event);
            ring.len += 1;
        }
    }
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("len", &self.len())
            .field("overwritten", &self.overwritten())
            .finish()
    }
}

/// Replicates every event to several downstream sinks.
///
/// The live server uses this to feed one emission stream into both a
/// [`Recorder`] (for post-run waterfall/trace exports) and a
/// `RegistrySink` (for live Prometheus metrics) without instrumented code
/// knowing there are two consumers. Disabled members are skipped per
/// event; the fanout itself is enabled iff any member is.
pub struct Fanout {
    members: Vec<SinkHandle>,
}

impl Fanout {
    /// Builds a fanout over `members` (empty is legal — acts like null).
    #[must_use]
    pub fn new(members: Vec<SinkHandle>) -> Self {
        Fanout { members }
    }
}

impl TelemetrySink for Fanout {
    fn enabled(&self) -> bool {
        self.members.iter().any(SinkHandle::enabled)
    }

    fn record(&self, event: Event) {
        let mut live = self.members.iter().filter(|m| m.enabled());
        let Some(first) = live.next() else { return };
        let rest: Vec<&SinkHandle> = live.collect();
        // The common case is a single live member; avoid cloning for it.
        if rest.is_empty() {
            first.0.record(event);
        } else {
            for member in &rest {
                member.0.record(event.clone());
            }
            first.0.record(event);
        }
    }
}

impl fmt::Debug for Fanout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fanout")
            .field("members", &self.members.len())
            .finish()
    }
}

/// A shared, cloneable handle to a sink.
///
/// Wrapping the `Arc<dyn TelemetrySink>` in a newtype gives it `Debug`,
/// `Default` (the null sink) and pointer-identity `PartialEq`, so structs
/// that `#[derive(Debug, Clone, PartialEq)]` can carry a sink field without
/// hand-written impls.
#[derive(Clone)]
pub struct SinkHandle(Arc<dyn TelemetrySink + Send + Sync>);

impl SinkHandle {
    /// Wraps any sink.
    pub fn new(sink: Arc<dyn TelemetrySink + Send + Sync>) -> Self {
        SinkHandle(sink)
    }

    /// The disabled sink.
    #[must_use]
    pub fn null() -> Self {
        SinkHandle(Arc::new(NullSink))
    }

    /// A fresh ring-buffer recorder plus its handle.
    #[must_use]
    pub fn recorder(capacity: usize) -> (Self, Arc<Recorder>) {
        let recorder = Recorder::new(capacity);
        (SinkHandle(recorder.clone()), recorder)
    }

    /// A handle that replicates every event to all of `members`.
    #[must_use]
    pub fn fanout(members: Vec<SinkHandle>) -> Self {
        SinkHandle(Arc::new(Fanout::new(members)))
    }

    /// Whether emitting through this handle stores anything.
    #[inline]
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.0.enabled()
    }

    /// Records `kind` at simulation time `t_s` (no-op when disabled).
    #[inline]
    pub fn emit(&self, t_s: f64, kind: EventKind) {
        if self.0.enabled() {
            self.0.record(Event::new(t_s, kind));
        }
    }

    /// Records a `SpanBegin`/`SpanEnd` pair bracketing `[begin_s, end_s]`
    /// (no-op when disabled). Used by instrumented hot paths — e.g. the
    /// inference engine's per-layer timing — that measure an interval first
    /// and emit it afterwards.
    #[inline]
    pub fn emit_span(&self, begin_s: f64, end_s: f64, name: &str) {
        if self.0.enabled() {
            self.0.record(Event::new(
                begin_s,
                EventKind::SpanBegin { name: name.into() },
            ));
            self.0
                .record(Event::new(end_s, EventKind::SpanEnd { name: name.into() }));
        }
    }
}

impl Default for SinkHandle {
    fn default() -> Self {
        SinkHandle::null()
    }
}

impl fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SinkHandle")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl PartialEq for SinkHandle {
    /// Pointer identity: two handles are equal when they share a sink.
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn depth(frames: f64) -> EventKind {
        EventKind::QueueDepth { frames }
    }

    #[test]
    fn null_sink_is_disabled() {
        let sink = SinkHandle::default();
        assert!(!sink.enabled());
        sink.emit(0.0, depth(1.0));
    }

    #[test]
    fn recorder_keeps_order() {
        let (sink, recorder) = SinkHandle::recorder(8);
        for i in 0..5 {
            sink.emit(i as f64, depth(i as f64));
        }
        let events = recorder.events();
        assert_eq!(events.len(), 5);
        assert!(events.windows(2).all(|w| w[0].t_s < w[1].t_s));
        assert_eq!(recorder.overwritten(), 0);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let (sink, recorder) = SinkHandle::recorder(4);
        for i in 0..10 {
            sink.emit(i as f64, depth(0.0));
        }
        let events = recorder.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].t_s, 6.0);
        assert_eq!(events[3].t_s, 9.0);
        assert_eq!(recorder.overwritten(), 6);
    }

    #[test]
    fn drain_empties_the_ring() {
        let (sink, recorder) = SinkHandle::recorder(4);
        sink.emit(1.0, depth(2.0));
        sink.emit(2.0, depth(3.0));
        let drained = recorder.drain();
        assert_eq!(drained.len(), 2);
        assert!(recorder.is_empty());
        assert!(recorder.events().is_empty());
    }

    #[test]
    fn fanout_replicates_to_every_live_member() {
        let (a, rec_a) = SinkHandle::recorder(8);
        let (b, rec_b) = SinkHandle::recorder(8);
        let fan = SinkHandle::fanout(vec![a, SinkHandle::null(), b]);
        assert!(fan.enabled());
        fan.emit(1.0, depth(2.0));
        fan.emit(2.0, depth(3.0));
        assert_eq!(rec_a.len(), 2);
        assert_eq!(rec_b.len(), 2);
        assert_eq!(rec_a.events()[0].t_s, rec_b.events()[0].t_s);
    }

    #[test]
    fn fanout_of_disabled_members_is_disabled() {
        let fan = SinkHandle::fanout(vec![SinkHandle::null(), SinkHandle::null()]);
        assert!(!fan.enabled());
        fan.emit(0.0, depth(1.0));
        let empty = SinkHandle::fanout(Vec::new());
        assert!(!empty.enabled());
    }

    #[test]
    fn handles_share_a_sink() {
        let (sink, recorder) = SinkHandle::recorder(16);
        let clone = sink.clone();
        assert_eq!(sink, clone);
        assert_ne!(sink, SinkHandle::null());
        clone.emit(0.5, depth(1.0));
        assert_eq!(recorder.len(), 1);
    }
}
