//! Property-based tests of the histogram algebra the metrics registry and
//! the waterfall analyzer lean on: merging is order-invariant and
//! quantiles are monotone.

use adaflow_telemetry::LogHistogram;
use proptest::prelude::*;

fn fill(values: &[f64]) -> LogHistogram {
    let mut h = LogHistogram::latency_s();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Splitting a stream across shards and merging in any shard order
    /// yields the same bucket counts, count, extrema and quantiles as one
    /// sequential fill (bucket counts are unit-weight sums, so they are
    /// exact in `f64`; only the mean accumulates rounding).
    #[test]
    fn merge_is_order_invariant(
        values in proptest::collection::vec(1e-6f64..10.0, 1..120),
        shards in 1usize..6,
        reverse in proptest::bool::ANY,
    ) {
        let sequential = fill(&values);
        let mut parts: Vec<LogHistogram> = (0..shards)
            .map(|s| fill(
                &values
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|(i, _)| i % shards == s)
                    .map(|(_, v)| v)
                    .collect::<Vec<f64>>(),
            ))
            .collect();
        if reverse {
            parts.reverse();
        }
        let mut merged = LogHistogram::latency_s();
        for p in &parts {
            merged.merge(p);
        }
        prop_assert_eq!(merged.count(), sequential.count());
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), sequential.quantile(q), "q = {}", q);
        }
        prop_assert!((merged.mean() - sequential.mean()).abs() <= 1e-9 * sequential.mean().abs().max(1.0));
    }

    /// Quantiles never decrease in `q` and always stay inside the observed
    /// value range.
    #[test]
    fn quantiles_are_monotone_and_bracketed(
        values in proptest::collection::vec(1e-6f64..10.0, 1..120),
    ) {
        let h = fill(&values);
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = 0.0;
        for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let v = h.quantile(q);
            prop_assert!(v >= prev, "quantile dropped at q = {}", q);
            prop_assert!(v >= lo && v <= hi, "quantile escaped [{}, {}]", lo, hi);
            prev = v;
        }
    }
}
