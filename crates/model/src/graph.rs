//! The feed-forward CNN graph.
//!
//! FINN dataflow accelerators implement a pipeline: each layer becomes one
//! hardware module and data streams through them in order. The graph is
//! therefore a validated linear chain of [`Layer`]s with per-edge tensor
//! shapes computed by shape inference.

use crate::error::ModelError;
use crate::layer::{Conv2d, Layer};
use crate::quant::QuantSpec;
use crate::shape::TensorShape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable identifier of a layer within its graph (its position in the chain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LayerId(pub usize);

impl fmt::Display for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A layer together with its resolved input/output shapes and name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Position in the chain.
    pub id: LayerId,
    /// Human-readable name (e.g. `"conv1"`).
    pub name: String,
    /// The layer itself.
    pub layer: Layer,
    /// Shape entering the layer.
    pub input_shape: TensorShape,
    /// Shape leaving the layer.
    pub output_shape: TensorShape,
}

impl Node {
    /// MAC operations this node performs per inference.
    #[must_use]
    pub fn macs(&self) -> u64 {
        self.layer.macs(self.input_shape)
    }
}

/// A validated feed-forward CNN.
///
/// Construct via [`GraphBuilder`] (or [`CnnGraph::from_layers`]); both run
/// full validation and shape inference, so every `CnnGraph` value is
/// internally consistent.
///
/// ```
/// use adaflow_model::prelude::*;
///
/// let graph = GraphBuilder::new("tiny", TensorShape::new(1, 8, 8))
///     .conv2d(Conv2d::new(1, 4, 3, 1, 0, QuantSpec::w2a2()))
///     .max_pool(MaxPool2d::new(2, 2))
///     .dense(Dense::new(4 * 3 * 3, 10, QuantSpec::w2a2()))
///     .label_select(10)
///     .build()?;
/// assert_eq!(graph.len(), 4);
/// assert_eq!(graph.output_shape(), TensorShape::flat(1));
/// # Ok::<(), ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CnnGraph {
    name: String,
    input_shape: TensorShape,
    nodes: Vec<Node>,
}

impl CnnGraph {
    /// Builds a graph from a layer chain, running validation + shape
    /// inference.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MalformedGraph`] for an empty chain, or the
    /// first validation/shape error annotated with the offending position.
    pub fn from_layers(
        name: impl Into<String>,
        input_shape: TensorShape,
        layers: Vec<(String, Layer)>,
    ) -> Result<Self, ModelError> {
        if layers.is_empty() {
            return Err(ModelError::MalformedGraph("graph has no layers".into()));
        }
        if input_shape.elements() == 0 {
            return Err(ModelError::MalformedGraph(
                "input shape has zero elements".into(),
            ));
        }
        let mut nodes = Vec::with_capacity(layers.len());
        let mut shape = input_shape;
        for (idx, (layer_name, layer)) in layers.into_iter().enumerate() {
            layer
                .validate()
                .map_err(|e| at_position(e, idx, &layer_name))?;
            let out = layer
                .output_shape(shape)
                .map_err(|e| at_position(e, idx, &layer_name))?;
            nodes.push(Node {
                id: LayerId(idx),
                name: layer_name,
                layer,
                input_shape: shape,
                output_shape: out,
            });
            shape = out;
        }
        Ok(Self {
            name: name.into(),
            input_shape,
            nodes,
        })
    }

    /// Model name (e.g. `"cnv-w2a2-cifar10"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns a copy of this graph under a different name.
    #[must_use]
    pub fn renamed(&self, name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            input_shape: self.input_shape,
            nodes: self.nodes.clone(),
        }
    }

    /// Shape of the network input.
    #[must_use]
    pub fn input_shape(&self) -> TensorShape {
        self.input_shape
    }

    /// Shape of the network output.
    #[must_use]
    pub fn output_shape(&self) -> TensorShape {
        self.nodes
            .last()
            .map(|n| n.output_shape)
            .unwrap_or(self.input_shape)
    }

    /// Number of layers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no layers (never true for a built graph).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes in dataflow order.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Iterates over nodes in dataflow order.
    pub fn iter(&self) -> std::slice::Iter<'_, Node> {
        self.nodes.iter()
    }

    /// Node by id.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownLayer`] if no such layer exists.
    pub fn node(&self, id: LayerId) -> Result<&Node, ModelError> {
        self.nodes.get(id.0).ok_or(ModelError::UnknownLayer(id.0))
    }

    /// Iterates over the convolution nodes only, in dataflow order.
    pub fn conv_layers(&self) -> impl Iterator<Item = (&Node, &Conv2d)> {
        self.nodes.iter().filter_map(|n| match &n.layer {
            Layer::Conv2d(c) => Some((n, c)),
            _ => None,
        })
    }

    /// Ids of the convolution layers, the targets of filter pruning.
    #[must_use]
    pub fn conv_ids(&self) -> Vec<LayerId> {
        self.conv_layers().map(|(n, _)| n.id).collect()
    }

    /// Total MAC operations per inference across the network.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.nodes.iter().map(Node::macs).sum()
    }

    /// Total weight storage in bits (conv + dense).
    #[must_use]
    pub fn total_weight_bits(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| match &n.layer {
                Layer::Conv2d(c) => c.weight_bits(),
                Layer::Dense(d) => d.weight_bits(),
                _ => 0,
            })
            .sum()
    }

    /// The quantization spec of the first MVTU layer (graphs built by
    /// [`crate::topology`] are homogeneous).
    #[must_use]
    pub fn quant(&self) -> Option<QuantSpec> {
        self.nodes.iter().find_map(|n| match &n.layer {
            Layer::Conv2d(c) => Some(c.quant),
            Layer::Dense(d) => Some(d.quant),
            _ => None,
        })
    }

    /// Per-conv-layer output channel counts, in dataflow order. This is the
    /// "channels" vector the flexible accelerator receives at model-switch
    /// time (paper §IV-A2: the channel counts are "attached to the model
    /// description when AdaFlow prunes a CNN model").
    #[must_use]
    pub fn conv_channels(&self) -> Vec<usize> {
        self.conv_layers().map(|(_, c)| c.out_channels).collect()
    }

    /// Rebuilds the graph from a transformed layer chain, keeping the name
    /// and input shape. Used by graph transforms (pruning).
    ///
    /// # Errors
    ///
    /// Propagates validation/shape-inference errors from the new chain.
    pub fn with_layers(&self, layers: Vec<(String, Layer)>) -> Result<Self, ModelError> {
        Self::from_layers(self.name.clone(), self.input_shape, layers)
    }

    /// Deconstructs into the `(name, layer)` chain for transformation.
    #[must_use]
    pub fn to_layer_chain(&self) -> Vec<(String, Layer)> {
        self.nodes
            .iter()
            .map(|n| (n.name.clone(), n.layer.clone()))
            .collect()
    }
}

impl fmt::Display for CnnGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} ({} -> {})",
            self.name,
            self.input_shape,
            self.output_shape()
        )?;
        for n in &self.nodes {
            writeln!(
                f,
                "  {} {}: {} -> {}",
                n.id, n.layer, n.input_shape, n.output_shape
            )?;
        }
        Ok(())
    }
}

fn at_position(err: ModelError, idx: usize, name: &str) -> ModelError {
    match err {
        ModelError::ShapeMismatch {
            expected, found, ..
        } => ModelError::ShapeMismatch {
            layer: idx,
            name: name.to_string(),
            expected,
            found,
        },
        ModelError::InvalidParameter { reason, .. } => ModelError::InvalidParameter {
            layer: idx,
            name: name.to_string(),
            reason,
        },
        ModelError::WeightMismatch { reason, .. } => {
            ModelError::WeightMismatch { layer: idx, reason }
        }
        other => other,
    }
}

/// Incremental builder for [`CnnGraph`].
///
/// Layer names are auto-generated (`conv1`, `pool1`, `fc1`, ...) unless set
/// explicitly with [`GraphBuilder::named_layer`].
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    name: String,
    input_shape: TensorShape,
    layers: Vec<(String, Layer)>,
    conv_count: usize,
    pool_count: usize,
    dense_count: usize,
    thresh_count: usize,
}

impl GraphBuilder {
    /// Starts a builder for a network named `name` with the given input.
    #[must_use]
    pub fn new(name: impl Into<String>, input_shape: TensorShape) -> Self {
        Self {
            name: name.into(),
            input_shape,
            layers: Vec::new(),
            conv_count: 0,
            pool_count: 0,
            dense_count: 0,
            thresh_count: 0,
        }
    }

    /// Appends a convolution layer.
    #[must_use]
    pub fn conv2d(mut self, conv: Conv2d) -> Self {
        self.conv_count += 1;
        let n = format!("conv{}", self.conv_count);
        self.layers.push((n, Layer::Conv2d(conv)));
        self
    }

    /// Appends a max-pool layer.
    #[must_use]
    pub fn max_pool(mut self, pool: crate::layer::MaxPool2d) -> Self {
        self.pool_count += 1;
        let n = format!("pool{}", self.pool_count);
        self.layers.push((n, Layer::MaxPool2d(pool)));
        self
    }

    /// Appends a dense layer.
    #[must_use]
    pub fn dense(mut self, dense: crate::layer::Dense) -> Self {
        self.dense_count += 1;
        let n = format!("fc{}", self.dense_count);
        self.layers.push((n, Layer::Dense(dense)));
        self
    }

    /// Appends a multi-threshold activation.
    #[must_use]
    pub fn threshold(mut self, t: crate::layer::MultiThreshold) -> Self {
        self.thresh_count += 1;
        let n = format!("thresh{}", self.thresh_count);
        self.layers.push((n, Layer::MultiThreshold(t)));
        self
    }

    /// Appends a label-select output over `classes` classes.
    #[must_use]
    pub fn label_select(mut self, classes: usize) -> Self {
        self.layers.push((
            "top1".into(),
            Layer::LabelSelect(crate::layer::LabelSelect { classes }),
        ));
        self
    }

    /// Appends an arbitrary layer under an explicit name.
    #[must_use]
    pub fn named_layer(mut self, name: impl Into<String>, layer: Layer) -> Self {
        self.layers.push((name.into(), layer));
        self
    }

    /// Finalizes the graph, running validation and shape inference.
    ///
    /// # Errors
    ///
    /// Returns the first validation or shape-inference error, annotated with
    /// the offending layer position and name.
    pub fn build(self) -> Result<CnnGraph, ModelError> {
        CnnGraph::from_layers(self.name, self.input_shape, self.layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, MaxPool2d, MultiThreshold};

    fn tiny() -> CnnGraph {
        GraphBuilder::new("tiny", TensorShape::new(1, 8, 8))
            .conv2d(Conv2d::new(1, 4, 3, 1, 0, QuantSpec::w2a2()))
            .threshold(MultiThreshold::uniform(4, 3, -5, 5))
            .max_pool(MaxPool2d::new(2, 2))
            .dense(Dense::new(4 * 3 * 3, 10, QuantSpec::w2a2()))
            .label_select(10)
            .build()
            .expect("tiny graph builds")
    }

    #[test]
    fn builder_names_layers() {
        let g = tiny();
        let names: Vec<_> = g.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, ["conv1", "thresh1", "pool1", "fc1", "top1"]);
    }

    #[test]
    fn shape_inference_chains() {
        let g = tiny();
        assert_eq!(
            g.node(LayerId(0))
                .expect("tiny fixture has a layer 0")
                .output_shape,
            TensorShape::new(4, 6, 6)
        );
        assert_eq!(
            g.node(LayerId(2))
                .expect("tiny fixture has a layer 2")
                .output_shape,
            TensorShape::new(4, 3, 3)
        );
        assert_eq!(g.output_shape(), TensorShape::flat(1));
    }

    #[test]
    fn empty_graph_rejected() {
        let err = CnnGraph::from_layers("empty", TensorShape::new(1, 8, 8), vec![]).unwrap_err();
        assert!(matches!(err, ModelError::MalformedGraph(_)));
    }

    #[test]
    fn mismatched_chain_reports_position() {
        let err = GraphBuilder::new("bad", TensorShape::new(1, 8, 8))
            .conv2d(Conv2d::new(1, 4, 3, 1, 0, QuantSpec::w2a2()))
            .conv2d(Conv2d::new(8, 4, 3, 1, 0, QuantSpec::w2a2())) // expects 8 ch, gets 4
            .build()
            .unwrap_err();
        match err {
            ModelError::ShapeMismatch { layer, name, .. } => {
                assert_eq!(layer, 1);
                assert_eq!(name, "conv2");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn conv_ids_and_channels() {
        let g = tiny();
        assert_eq!(g.conv_ids(), vec![LayerId(0)]);
        assert_eq!(g.conv_channels(), vec![4]);
    }

    #[test]
    fn total_macs_sums_layers() {
        let g = tiny();
        // conv: 6x6 out, 1*3*3 per filter, 4 filters = 1296; fc: 36*10 = 360.
        assert_eq!(g.total_macs(), 1296 + 360);
    }

    #[test]
    fn quant_found_from_first_mvtu() {
        assert_eq!(tiny().quant(), Some(QuantSpec::w2a2()));
    }

    #[test]
    fn node_lookup_unknown_id() {
        assert!(matches!(
            tiny().node(LayerId(99)),
            Err(ModelError::UnknownLayer(99))
        ));
    }

    #[test]
    fn round_trip_through_layer_chain() {
        let g = tiny();
        let rebuilt = g.with_layers(g.to_layer_chain()).expect("rebuild");
        assert_eq!(g, rebuilt);
    }

    #[test]
    fn renamed_keeps_structure() {
        let g = tiny().renamed("tiny-pruned-10");
        assert_eq!(g.name(), "tiny-pruned-10");
        assert_eq!(g.len(), 5);
    }

    #[test]
    fn display_lists_all_layers() {
        let text = tiny().to_string();
        assert!(text.contains("conv2d"));
        assert!(text.contains("labelselect"));
        assert_eq!(text.lines().count(), 6); // header + 5 layers
    }

    #[test]
    fn serde_round_trip() {
        let g = tiny();
        let json = serde_json::to_string(&g).expect("serialize");
        let back: CnnGraph = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(g, back);
    }
}
