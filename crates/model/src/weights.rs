//! Integer weight storage for quantized layers.
//!
//! Weights are kept as `i8` values constrained to the layer's
//! [`QuantizedDomain`](crate::quant::QuantizedDomain). The storage types also
//! carry the structural operations the pruning transform needs: per-filter
//! ℓ1-norms, filter removal, and input-channel removal (when the *previous*
//! layer lost filters).

use crate::error::ModelError;
use serde::{Deserialize, Serialize};

/// Weights of a 2-D convolution, stored `[out_ch][in_ch][kh][kw]` row-major.
///
/// ```
/// use adaflow_model::ConvWeights;
///
/// let w = ConvWeights::zeroed(8, 3, 3);
/// assert_eq!(w.out_channels(), 8);
/// assert_eq!(w.in_channels(), 3);
/// assert_eq!(w.len(), 8 * 3 * 3 * 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvWeights {
    out_channels: usize,
    in_channels: usize,
    kernel: usize,
    data: Vec<i8>,
}

impl ConvWeights {
    /// Creates an all-zero weight tensor.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn zeroed(out_channels: usize, in_channels: usize, kernel: usize) -> Self {
        assert!(
            out_channels > 0 && in_channels > 0 && kernel > 0,
            "dimensions must be nonzero"
        );
        Self {
            out_channels,
            in_channels,
            kernel,
            data: vec![0; out_channels * in_channels * kernel * kernel],
        }
    }

    /// Creates weights from a flat `[out][in][kh][kw]` buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::WeightMismatch`] if `data.len()` does not equal
    /// `out_channels * in_channels * kernel^2`.
    pub fn from_flat(
        out_channels: usize,
        in_channels: usize,
        kernel: usize,
        data: Vec<i8>,
    ) -> Result<Self, ModelError> {
        let expect = out_channels * in_channels * kernel * kernel;
        if data.len() != expect {
            return Err(ModelError::WeightMismatch {
                layer: usize::MAX,
                reason: format!("expected {expect} weights, got {}", data.len()),
            });
        }
        Ok(Self {
            out_channels,
            in_channels,
            kernel,
            data,
        })
    }

    /// Number of output channels (filters).
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Number of input channels.
    #[must_use]
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Square kernel side length.
    #[must_use]
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Total number of stored weights.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no weights (never true for valid tensors).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat view of all weights.
    #[must_use]
    pub fn as_slice(&self) -> &[i8] {
        &self.data
    }

    /// Mutable flat view of all weights.
    pub fn as_mut_slice(&mut self) -> &mut [i8] {
        &mut self.data
    }

    /// Weight at `[out][in][kh][kw]`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[must_use]
    pub fn at(&self, out: usize, inp: usize, kh: usize, kw: usize) -> i8 {
        self.data[self.index(out, inp, kh, kw)]
    }

    /// Sets the weight at `[out][in][kh][kw]`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn set(&mut self, out: usize, inp: usize, kh: usize, kw: usize, value: i8) {
        let idx = self.index(out, inp, kh, kw);
        self.data[idx] = value;
    }

    fn index(&self, out: usize, inp: usize, kh: usize, kw: usize) -> usize {
        assert!(out < self.out_channels, "out channel {out} out of range");
        assert!(inp < self.in_channels, "in channel {inp} out of range");
        assert!(
            kh < self.kernel && kw < self.kernel,
            "kernel index out of range"
        );
        ((out * self.in_channels + inp) * self.kernel + kh) * self.kernel + kw
    }

    /// The flat weights of one filter (`[in][kh][kw]` for a fixed `out`).
    ///
    /// # Panics
    ///
    /// Panics if `out` is out of range.
    #[must_use]
    pub fn filter(&self, out: usize) -> &[i8] {
        assert!(out < self.out_channels, "out channel {out} out of range");
        let stride = self.in_channels * self.kernel * self.kernel;
        &self.data[out * stride..(out + 1) * stride]
    }

    /// ℓ1-norm of each filter, the relative-importance measure of Li et al.
    /// ("Pruning filters for efficient convnets", ICLR'17) that AdaFlow's
    /// dataflow-aware pruning reuses for filter selection.
    #[must_use]
    pub fn filter_l1_norms(&self) -> Vec<u64> {
        (0..self.out_channels)
            .map(|o| {
                self.filter(o)
                    .iter()
                    .map(|&w| (w as i64).unsigned_abs())
                    .sum()
            })
            .collect()
    }

    /// Returns a copy with the given filters (output channels) removed.
    /// `remove` must be sorted ascending and duplicate-free.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::WeightMismatch`] if `remove` references an
    /// out-of-range filter, is unsorted, contains duplicates, or would remove
    /// every filter.
    pub fn without_filters(&self, remove: &[usize]) -> Result<Self, ModelError> {
        validate_removal(remove, self.out_channels, "filter")?;
        if remove.len() == self.out_channels {
            return Err(ModelError::WeightMismatch {
                layer: usize::MAX,
                reason: "cannot remove every filter".into(),
            });
        }
        let keep: Vec<usize> = (0..self.out_channels)
            .filter(|i| !remove.contains(i))
            .collect();
        let stride = self.in_channels * self.kernel * self.kernel;
        let mut data = Vec::with_capacity(keep.len() * stride);
        for &o in &keep {
            data.extend_from_slice(self.filter(o));
        }
        Ok(Self {
            out_channels: keep.len(),
            in_channels: self.in_channels,
            kernel: self.kernel,
            data,
        })
    }

    /// Returns a copy with the given *input* channels removed — applied when
    /// the upstream convolution lost the corresponding filters.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::WeightMismatch`] under the same conditions as
    /// [`ConvWeights::without_filters`].
    pub fn without_input_channels(&self, remove: &[usize]) -> Result<Self, ModelError> {
        validate_removal(remove, self.in_channels, "input channel")?;
        if remove.len() == self.in_channels {
            return Err(ModelError::WeightMismatch {
                layer: usize::MAX,
                reason: "cannot remove every input channel".into(),
            });
        }
        let keep: Vec<usize> = (0..self.in_channels)
            .filter(|i| !remove.contains(i))
            .collect();
        let k2 = self.kernel * self.kernel;
        let mut data = Vec::with_capacity(self.out_channels * keep.len() * k2);
        for o in 0..self.out_channels {
            let f = self.filter(o);
            for &i in &keep {
                data.extend_from_slice(&f[i * k2..(i + 1) * k2]);
            }
        }
        Ok(Self {
            out_channels: self.out_channels,
            in_channels: keep.len(),
            kernel: self.kernel,
            data,
        })
    }
}

/// Weights of a fully-connected layer, stored `[out][in]` row-major.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DenseWeights {
    out_features: usize,
    in_features: usize,
    data: Vec<i8>,
}

impl DenseWeights {
    /// Creates an all-zero weight matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeroed(out_features: usize, in_features: usize) -> Self {
        assert!(
            out_features > 0 && in_features > 0,
            "dimensions must be nonzero"
        );
        Self {
            out_features,
            in_features,
            data: vec![0; out_features * in_features],
        }
    }

    /// Creates weights from a flat `[out][in]` buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::WeightMismatch`] if the buffer length does not
    /// equal `out_features * in_features`.
    pub fn from_flat(
        out_features: usize,
        in_features: usize,
        data: Vec<i8>,
    ) -> Result<Self, ModelError> {
        if data.len() != out_features * in_features {
            return Err(ModelError::WeightMismatch {
                layer: usize::MAX,
                reason: format!(
                    "expected {} weights, got {}",
                    out_features * in_features,
                    data.len()
                ),
            });
        }
        Ok(Self {
            out_features,
            in_features,
            data,
        })
    }

    /// Number of output features (neurons).
    #[must_use]
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Number of input features.
    #[must_use]
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Flat view of all weights.
    #[must_use]
    pub fn as_slice(&self) -> &[i8] {
        &self.data
    }

    /// Mutable flat view of all weights.
    pub fn as_mut_slice(&mut self) -> &mut [i8] {
        &mut self.data
    }

    /// One neuron's weight row.
    ///
    /// # Panics
    ///
    /// Panics if `out` is out of range.
    #[must_use]
    pub fn row(&self, out: usize) -> &[i8] {
        assert!(out < self.out_features, "row {out} out of range");
        &self.data[out * self.in_features..(out + 1) * self.in_features]
    }

    /// Weight at `[out][in]`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn at(&self, out: usize, inp: usize) -> i8 {
        assert!(inp < self.in_features, "column {inp} out of range");
        self.row(out)[inp]
    }

    /// Sets the weight at `[out][in]`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set(&mut self, out: usize, inp: usize, value: i8) {
        assert!(
            out < self.out_features && inp < self.in_features,
            "index out of range"
        );
        self.data[out * self.in_features + inp] = value;
    }

    /// Removes input features. When the last convolution before the
    /// flatten lost filters, each lost channel removes `spatial` consecutive
    /// blocks of input features; the caller passes the already-expanded
    /// feature indices.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::WeightMismatch`] if `remove` is invalid or would
    /// remove every input feature.
    pub fn without_input_features(&self, remove: &[usize]) -> Result<Self, ModelError> {
        validate_removal(remove, self.in_features, "input feature")?;
        if remove.len() == self.in_features {
            return Err(ModelError::WeightMismatch {
                layer: usize::MAX,
                reason: "cannot remove every input feature".into(),
            });
        }
        let removed: std::collections::HashSet<usize> = remove.iter().copied().collect();
        let keep: Vec<usize> = (0..self.in_features)
            .filter(|i| !removed.contains(i))
            .collect();
        let mut data = Vec::with_capacity(self.out_features * keep.len());
        for o in 0..self.out_features {
            let r = self.row(o);
            for &i in &keep {
                data.push(r[i]);
            }
        }
        Ok(Self {
            out_features: self.out_features,
            in_features: keep.len(),
            data,
        })
    }
}

/// Per-channel threshold table of a FINN MultiThreshold activation.
///
/// FINN folds batch-norm + quantized activation into a monotonically
/// increasing threshold list per channel: the output activation is the count
/// of thresholds the accumulator meets or exceeds. `levels` equals
/// `2^act_bits - 1`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThresholdTable {
    channels: usize,
    levels: usize,
    /// `[channel][level]`, each row sorted ascending.
    data: Vec<i32>,
}

impl ThresholdTable {
    /// Builds a table from per-channel rows.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::WeightMismatch`] if rows have inconsistent
    /// lengths, there are no channels/levels, or a row is not sorted
    /// ascending (thresholding requires monotone levels).
    pub fn from_rows(rows: &[Vec<i32>]) -> Result<Self, ModelError> {
        let channels = rows.len();
        if channels == 0 {
            return Err(ModelError::WeightMismatch {
                layer: usize::MAX,
                reason: "threshold table needs at least one channel".into(),
            });
        }
        let levels = rows[0].len();
        if levels == 0 {
            return Err(ModelError::WeightMismatch {
                layer: usize::MAX,
                reason: "threshold table needs at least one level".into(),
            });
        }
        let mut data = Vec::with_capacity(channels * levels);
        for (c, row) in rows.iter().enumerate() {
            if row.len() != levels {
                return Err(ModelError::WeightMismatch {
                    layer: usize::MAX,
                    reason: format!("channel {c} has {} levels, expected {levels}", row.len()),
                });
            }
            if row.windows(2).any(|w| w[0] > w[1]) {
                return Err(ModelError::WeightMismatch {
                    layer: usize::MAX,
                    reason: format!("channel {c} thresholds not ascending"),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            channels,
            levels,
            data,
        })
    }

    /// A uniform table where every channel uses the same evenly spaced
    /// thresholds in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `channels` or `levels` is zero or `lo > hi`.
    #[must_use]
    pub fn uniform(channels: usize, levels: usize, lo: i32, hi: i32) -> Self {
        assert!(channels > 0 && levels > 0, "dimensions must be nonzero");
        assert!(lo <= hi, "lo must not exceed hi");
        let row: Vec<i32> = (0..levels)
            .map(|l| {
                let span = (hi - lo) as i64;
                lo + ((span * (l as i64 + 1)) / (levels as i64 + 1)) as i32
            })
            .collect();
        let mut data = Vec::with_capacity(channels * levels);
        for _ in 0..channels {
            data.extend_from_slice(&row);
        }
        Self {
            channels,
            levels,
            data,
        }
    }

    /// Number of channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of threshold levels per channel.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Threshold row of one channel.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    #[must_use]
    pub fn row(&self, channel: usize) -> &[i32] {
        assert!(channel < self.channels, "channel {channel} out of range");
        &self.data[channel * self.levels..(channel + 1) * self.levels]
    }

    /// Applies the threshold activation: number of thresholds `acc` meets or
    /// exceeds, i.e. the quantized activation value in `0..=levels`.
    ///
    /// Rows are monotone by construction, so the thresholds `acc` meets form
    /// a prefix of the row; a binary search over the row replaces the linear
    /// scan (this sits on the inference engine's per-element hot path).
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    #[must_use]
    pub fn apply(&self, channel: usize, acc: i32) -> u8 {
        self.row(channel).partition_point(|&t| t <= acc) as u8
    }

    /// Returns a copy keeping only the channels NOT listed in `remove`
    /// (sorted, deduplicated indices) — used when the upstream conv is pruned.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::WeightMismatch`] if `remove` is invalid or would
    /// remove every channel.
    pub fn without_channels(&self, remove: &[usize]) -> Result<Self, ModelError> {
        validate_removal(remove, self.channels, "channel")?;
        if remove.len() == self.channels {
            return Err(ModelError::WeightMismatch {
                layer: usize::MAX,
                reason: "cannot remove every channel".into(),
            });
        }
        let keep: Vec<usize> = (0..self.channels).filter(|i| !remove.contains(i)).collect();
        let mut data = Vec::with_capacity(keep.len() * self.levels);
        for &c in &keep {
            data.extend_from_slice(self.row(c));
        }
        Ok(Self {
            channels: keep.len(),
            levels: self.levels,
            data,
        })
    }
}

/// Validates that `remove` is a sorted, deduplicated list of in-range indices.
fn validate_removal(remove: &[usize], limit: usize, what: &str) -> Result<(), ModelError> {
    for w in remove.windows(2) {
        if w[0] >= w[1] {
            return Err(ModelError::WeightMismatch {
                layer: usize::MAX,
                reason: format!("{what} removal list must be sorted and duplicate-free"),
            });
        }
    }
    if let Some(&last) = remove.last() {
        if last >= limit {
            return Err(ModelError::WeightMismatch {
                layer: usize::MAX,
                reason: format!("{what} index {last} out of range (limit {limit})"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting_conv(out: usize, inp: usize, k: usize) -> ConvWeights {
        let mut w = ConvWeights::zeroed(out, inp, k);
        for (i, v) in w.as_mut_slice().iter_mut().enumerate() {
            *v = ((i % 5) as i8) - 2;
        }
        w
    }

    #[test]
    fn conv_indexing_round_trip() {
        let mut w = ConvWeights::zeroed(4, 2, 3);
        w.set(3, 1, 2, 2, -1);
        assert_eq!(w.at(3, 1, 2, 2), -1);
        assert_eq!(w.at(0, 0, 0, 0), 0);
    }

    #[test]
    fn conv_from_flat_checks_length() {
        assert!(ConvWeights::from_flat(2, 2, 3, vec![0; 36]).is_ok());
        assert!(ConvWeights::from_flat(2, 2, 3, vec![0; 35]).is_err());
    }

    #[test]
    fn filter_l1_norm_matches_manual_sum() {
        let w = counting_conv(3, 2, 3);
        let norms = w.filter_l1_norms();
        for (o, &n) in norms.iter().enumerate() {
            let manual: u64 = w.filter(o).iter().map(|&x| (x as i64).unsigned_abs()).sum();
            assert_eq!(n, manual);
        }
    }

    #[test]
    fn without_filters_shrinks_out_channels() {
        let w = counting_conv(8, 4, 3);
        let pruned = w.without_filters(&[1, 5]).expect("prune");
        assert_eq!(pruned.out_channels(), 6);
        assert_eq!(pruned.in_channels(), 4);
        // Filter 0 unchanged, filter 1 is old filter 2.
        assert_eq!(pruned.filter(0), w.filter(0));
        assert_eq!(pruned.filter(1), w.filter(2));
        assert_eq!(pruned.filter(4), w.filter(6));
    }

    #[test]
    fn without_filters_rejects_bad_lists() {
        let w = counting_conv(4, 2, 3);
        assert!(w.without_filters(&[2, 1]).is_err(), "unsorted");
        assert!(w.without_filters(&[1, 1]).is_err(), "duplicate");
        assert!(w.without_filters(&[4]).is_err(), "out of range");
        assert!(w.without_filters(&[0, 1, 2, 3]).is_err(), "removes all");
    }

    #[test]
    fn without_input_channels_shrinks_in_channels() {
        let w = counting_conv(2, 4, 3);
        let pruned = w.without_input_channels(&[0, 3]).expect("prune");
        assert_eq!(pruned.in_channels(), 2);
        // Kept input channels are old channels 1 and 2.
        for o in 0..2 {
            for kh in 0..3 {
                for kw in 0..3 {
                    assert_eq!(pruned.at(o, 0, kh, kw), w.at(o, 1, kh, kw));
                    assert_eq!(pruned.at(o, 1, kh, kw), w.at(o, 2, kh, kw));
                }
            }
        }
    }

    #[test]
    fn dense_row_and_removal() {
        let mut w = DenseWeights::zeroed(2, 6);
        for i in 0..6 {
            w.set(0, i, i as i8);
            w.set(1, i, -(i as i8));
        }
        let pruned = w.without_input_features(&[1, 4]).expect("prune");
        assert_eq!(pruned.in_features(), 4);
        assert_eq!(pruned.row(0), &[0, 2, 3, 5]);
        assert_eq!(pruned.row(1), &[0, -2, -3, -5]);
    }

    #[test]
    fn dense_from_flat_checks_length() {
        assert!(DenseWeights::from_flat(2, 3, vec![0; 6]).is_ok());
        assert!(DenseWeights::from_flat(2, 3, vec![0; 5]).is_err());
    }

    #[test]
    fn threshold_apply_counts_levels() {
        let t = ThresholdTable::from_rows(&[vec![-1, 3, 9]]).expect("table");
        assert_eq!(t.apply(0, -5), 0);
        assert_eq!(t.apply(0, -1), 1);
        assert_eq!(t.apply(0, 3), 2);
        assert_eq!(t.apply(0, 100), 3);
    }

    #[test]
    fn threshold_apply_matches_linear_scan_on_i32_edges() {
        // The binary search must agree with the definitional linear scan
        // ("count of thresholds met") across the full i32 domain edges,
        // duplicated thresholds, and saturated rows.
        let rows = vec![
            vec![i32::MIN, -1, 0, 1, i32::MAX],
            vec![i32::MIN, i32::MIN, i32::MIN, i32::MIN, i32::MIN],
            vec![i32::MAX, i32::MAX, i32::MAX, i32::MAX, i32::MAX],
            vec![-7, -7, -7, 0, 0],
            vec![0, 0, 0, 0, 0],
        ];
        let t = ThresholdTable::from_rows(&rows).expect("table");
        let probes = [
            i32::MIN,
            i32::MIN + 1,
            -8,
            -7,
            -6,
            -1,
            0,
            1,
            2,
            i32::MAX - 1,
            i32::MAX,
        ];
        for (c, row) in rows.iter().enumerate() {
            for &acc in &probes {
                let linear = row.iter().filter(|&&t| acc >= t).count() as u8;
                assert_eq!(
                    t.apply(c, acc),
                    linear,
                    "channel {c} diverged from linear scan at acc={acc}"
                );
            }
        }
    }

    #[test]
    fn threshold_rejects_unsorted_rows() {
        assert!(ThresholdTable::from_rows(&[vec![5, 1, 9]]).is_err());
    }

    #[test]
    fn threshold_uniform_is_sorted_and_sized() {
        let t = ThresholdTable::uniform(4, 3, -10, 10);
        assert_eq!(t.channels(), 4);
        assert_eq!(t.levels(), 3);
        for c in 0..4 {
            let row = t.row(c);
            assert!(row.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn threshold_channel_removal() {
        let t =
            ThresholdTable::from_rows(&[vec![0, 1], vec![10, 11], vec![20, 21]]).expect("table");
        let pruned = t.without_channels(&[1]).expect("prune");
        assert_eq!(pruned.channels(), 2);
        assert_eq!(pruned.row(0), &[0, 1]);
        assert_eq!(pruned.row(1), &[20, 21]);
    }
}
