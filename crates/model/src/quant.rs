//! Quantization metadata.
//!
//! The AdaFlow paper evaluates two quantized CNV variants from the FINN
//! model zoo: CNVW2A2 (2-bit weights, 2-bit activations) and CNVW1A2 (1-bit
//! weights, 2-bit activations). Quantization-aware training is performed in
//! Brevitas in the original flow; here we carry the same bit-width metadata
//! through the graph so the dataflow mapper can size datapaths and the
//! synthesis simulator can estimate resources.

use crate::error::ModelError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Weight/activation bit widths of a quantized CNN.
///
/// ```
/// use adaflow_model::QuantSpec;
///
/// let q = QuantSpec::w2a2();
/// assert_eq!(q.weight_bits, 2);
/// assert_eq!(q.act_bits, 2);
/// assert_eq!(q.to_string(), "W2A2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuantSpec {
    /// Bits per weight. `1` means binarized weights in {-1, +1}.
    pub weight_bits: u8,
    /// Bits per activation.
    pub act_bits: u8,
}

impl QuantSpec {
    /// Creates a quantization spec.
    ///
    /// # Panics
    ///
    /// Panics if either bit width is zero or above 8 (this crate models the
    /// low-precision regime FINN targets; wider datapaths are out of scope).
    #[must_use]
    pub fn new(weight_bits: u8, act_bits: u8) -> Self {
        assert!(
            (1..=8).contains(&weight_bits) && (1..=8).contains(&act_bits),
            "bit widths must be in 1..=8"
        );
        Self {
            weight_bits,
            act_bits,
        }
    }

    /// The CNVW2A2 spec used in the paper (2-bit weights, 2-bit activations).
    #[must_use]
    pub fn w2a2() -> Self {
        Self::new(2, 2)
    }

    /// The CNVW1A2 spec used in the paper (binary weights, 2-bit activations).
    #[must_use]
    pub fn w1a2() -> Self {
        Self::new(1, 2)
    }

    /// Quantized domain of weight values.
    #[must_use]
    pub fn weight_domain(&self) -> QuantizedDomain {
        QuantizedDomain::signed(self.weight_bits)
    }

    /// Quantized domain of activation values.
    ///
    /// FINN activations after thresholding are unsigned counts in
    /// `0..2^act_bits - 1`.
    #[must_use]
    pub fn act_domain(&self) -> QuantizedDomain {
        QuantizedDomain::unsigned(self.act_bits)
    }

    /// Number of threshold levels a MultiThreshold activation needs to map an
    /// accumulator onto this activation domain (`2^act_bits - 1`).
    #[must_use]
    pub fn threshold_levels(&self) -> usize {
        (1usize << self.act_bits) - 1
    }
}

impl fmt::Display for QuantSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "W{}A{}", self.weight_bits, self.act_bits)
    }
}

/// Inclusive integer range representable by a quantized value.
///
/// Signed domains are symmetric (`-(2^(b-1)-1) ..= 2^(b-1)-1`), matching
/// Brevitas' narrow-range signed quantizers; the binary case degenerates to
/// {-1, +1} with zero excluded, which [`QuantizedDomain::validate`] enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuantizedDomain {
    /// Minimum representable value.
    pub min: i64,
    /// Maximum representable value.
    pub max: i64,
    /// Whether zero is excluded (binary weight domain {-1, +1}).
    pub excludes_zero: bool,
}

impl QuantizedDomain {
    /// Narrow-range signed domain for `bits`-bit values.
    #[must_use]
    pub fn signed(bits: u8) -> Self {
        assert!((1..=8).contains(&bits), "bit width must be in 1..=8");
        if bits == 1 {
            // Binarized weights take values in {-1, +1}.
            Self {
                min: -1,
                max: 1,
                excludes_zero: true,
            }
        } else {
            let m = (1i64 << (bits - 1)) - 1;
            Self {
                min: -m,
                max: m,
                excludes_zero: false,
            }
        }
    }

    /// Unsigned domain `0 ..= 2^bits - 1`.
    #[must_use]
    pub fn unsigned(bits: u8) -> Self {
        assert!((1..=8).contains(&bits), "bit width must be in 1..=8");
        Self {
            min: 0,
            max: (1i64 << bits) - 1,
            excludes_zero: false,
        }
    }

    /// Number of distinct representable values.
    #[must_use]
    pub fn cardinality(&self) -> usize {
        let span = (self.max - self.min + 1) as usize;
        if self.excludes_zero && self.min <= 0 && self.max >= 0 {
            span - 1
        } else {
            span
        }
    }

    /// Whether `value` is representable in this domain.
    #[must_use]
    pub fn contains(&self, value: i64) -> bool {
        value >= self.min && value <= self.max && !(self.excludes_zero && value == 0)
    }

    /// Validates that `value` is representable.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::QuantRange`] if the value falls outside the
    /// domain (or is zero in a zero-excluding domain).
    pub fn validate(&self, value: i64) -> Result<(), ModelError> {
        if self.contains(value) {
            Ok(())
        } else {
            Err(ModelError::QuantRange {
                value,
                min: self.min,
                max: self.max,
            })
        }
    }

    /// Clamps `value` into the domain, snapping zero to +1 in zero-excluding
    /// (binary) domains.
    #[must_use]
    pub fn clamp(&self, value: i64) -> i64 {
        let v = value.clamp(self.min, self.max);
        if self.excludes_zero && v == 0 {
            1
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn w2a2_domains() {
        let q = QuantSpec::w2a2();
        assert_eq!(
            q.weight_domain(),
            QuantizedDomain {
                min: -1,
                max: 1,
                excludes_zero: false
            }
        );
        assert_eq!(
            q.act_domain(),
            QuantizedDomain {
                min: 0,
                max: 3,
                excludes_zero: false
            }
        );
        assert_eq!(q.threshold_levels(), 3);
    }

    #[test]
    fn w1a2_weight_domain_is_binary() {
        let q = QuantSpec::w1a2();
        let d = q.weight_domain();
        assert!(d.contains(-1));
        assert!(d.contains(1));
        assert!(!d.contains(0));
        assert_eq!(d.cardinality(), 2);
    }

    #[test]
    fn signed_domain_cardinality() {
        assert_eq!(QuantizedDomain::signed(2).cardinality(), 3); // {-1, 0, 1}
        assert_eq!(QuantizedDomain::signed(3).cardinality(), 7); // {-3..3}
        assert_eq!(QuantizedDomain::signed(8).cardinality(), 255);
    }

    #[test]
    fn unsigned_domain() {
        let d = QuantizedDomain::unsigned(2);
        assert_eq!((d.min, d.max), (0, 3));
        assert_eq!(d.cardinality(), 4);
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let d = QuantizedDomain::signed(2);
        assert!(d.validate(1).is_ok());
        assert!(matches!(d.validate(2), Err(ModelError::QuantRange { .. })));
    }

    #[test]
    fn clamp_snaps_binary_zero() {
        let d = QuantizedDomain::signed(1);
        assert_eq!(d.clamp(0), 1);
        assert_eq!(d.clamp(-7), -1);
        assert_eq!(d.clamp(9), 1);
    }

    #[test]
    #[should_panic(expected = "bit widths must be in 1..=8")]
    fn zero_bits_rejected() {
        let _ = QuantSpec::new(0, 2);
    }

    #[test]
    fn display_format() {
        assert_eq!(QuantSpec::w1a2().to_string(), "W1A2");
        assert_eq!(QuantSpec::new(4, 8).to_string(), "W4A8");
    }
}
