//! Layer definitions.
//!
//! The layer set matches what FINN's CNV dataflow needs: convolutions
//! (mapped to SWU + MVTU module pairs), max-pooling, fully-connected layers
//! (MVTU), multi-threshold activations (folded into the MVTU) and the final
//! label-select. Each layer knows how to infer its output shape from an input
//! shape and how to count its multiply-accumulate work.

use crate::error::ModelError;
use crate::quant::QuantSpec;
use crate::shape::TensorShape;
use crate::weights::{ConvWeights, DenseWeights, ThresholdTable};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 2-D convolution layer (maps to SWU + MVTU in the dataflow).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conv2d {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels (number of filters).
    pub out_channels: usize,
    /// Square kernel side length.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding on each border.
    pub padding: usize,
    /// Weight/activation quantization.
    pub quant: QuantSpec,
    /// Quantized weights, `[out][in][kh][kw]`.
    pub weights: ConvWeights,
}

impl Conv2d {
    /// Creates a convolution with zeroed weights.
    #[must_use]
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        quant: QuantSpec,
    ) -> Self {
        Self {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            quant,
            weights: ConvWeights::zeroed(out_channels, in_channels, kernel),
        }
    }

    /// MAC operations per inference for a given output shape.
    #[must_use]
    pub fn macs(&self, out_shape: TensorShape) -> u64 {
        (self.kernel * self.kernel * self.in_channels) as u64
            * self.out_channels as u64
            * out_shape.spatial() as u64
    }

    /// Number of stored weight bits.
    #[must_use]
    pub fn weight_bits(&self) -> u64 {
        self.weights.len() as u64 * u64::from(self.quant.weight_bits)
    }
}

/// A max-pooling layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaxPool2d {
    /// Square pooling window side length.
    pub kernel: usize,
    /// Stride (FINN CNV uses kernel == stride == 2).
    pub stride: usize,
}

impl MaxPool2d {
    /// Creates a pooling layer.
    #[must_use]
    pub const fn new(kernel: usize, stride: usize) -> Self {
        Self { kernel, stride }
    }
}

/// A fully-connected layer (maps to an MVTU in the dataflow).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dense {
    /// Input features.
    pub in_features: usize,
    /// Output features (neurons).
    pub out_features: usize,
    /// Weight/activation quantization.
    pub quant: QuantSpec,
    /// Quantized weights, `[out][in]`.
    pub weights: DenseWeights,
}

impl Dense {
    /// Creates a dense layer with zeroed weights.
    #[must_use]
    pub fn new(in_features: usize, out_features: usize, quant: QuantSpec) -> Self {
        Self {
            in_features,
            out_features,
            quant,
            weights: DenseWeights::zeroed(out_features, in_features),
        }
    }

    /// MAC operations per inference.
    #[must_use]
    pub fn macs(&self) -> u64 {
        (self.in_features * self.out_features) as u64
    }

    /// Number of stored weight bits.
    #[must_use]
    pub fn weight_bits(&self) -> u64 {
        (self.in_features * self.out_features) as u64 * u64::from(self.quant.weight_bits)
    }
}

/// A multi-threshold activation (FINN folds batch-norm + quantized
/// activation into this form; executed inside the MVTU).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiThreshold {
    /// Number of channels thresholded.
    pub channels: usize,
    /// Per-channel threshold rows.
    pub table: ThresholdTable,
}

impl MultiThreshold {
    /// Creates a threshold activation with uniform thresholds spanning
    /// `[lo, hi]` — a reasonable default before calibration/retraining.
    #[must_use]
    pub fn uniform(channels: usize, levels: usize, lo: i32, hi: i32) -> Self {
        Self {
            channels,
            table: ThresholdTable::uniform(channels, levels, lo, hi),
        }
    }
}

/// Final label selection (top-1 / arg-max over class logits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelSelect {
    /// Number of classes to select among.
    pub classes: usize,
}

/// One layer of a feed-forward CNN graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// 2-D convolution.
    Conv2d(Conv2d),
    /// Max pooling.
    MaxPool2d(MaxPool2d),
    /// Fully-connected.
    Dense(Dense),
    /// Multi-threshold activation.
    MultiThreshold(MultiThreshold),
    /// Top-1 label selection.
    LabelSelect(LabelSelect),
}

impl Layer {
    /// Short kind name used in diagnostics and exports.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Layer::Conv2d(_) => "conv2d",
            Layer::MaxPool2d(_) => "maxpool2d",
            Layer::Dense(_) => "dense",
            Layer::MultiThreshold(_) => "multithreshold",
            Layer::LabelSelect(_) => "labelselect",
        }
    }

    /// Infers the output shape for a given input shape.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ShapeMismatch`] if the input shape is not
    /// compatible with this layer (wrong channel count, window does not fit,
    /// non-flat input to a dense layer, ...). The `layer`/`name` fields of
    /// the error are filled with placeholders; [`crate::graph::CnnGraph`]
    /// rewrites them with real positions.
    pub fn output_shape(&self, input: TensorShape) -> Result<TensorShape, ModelError> {
        let mismatch = |expected: TensorShape| ModelError::ShapeMismatch {
            layer: usize::MAX,
            name: self.kind().to_string(),
            expected,
            found: input,
        };
        match self {
            Layer::Conv2d(c) => {
                if input.channels != c.in_channels {
                    return Err(mismatch(input.with_channels(c.in_channels)));
                }
                let out = input
                    .windowed(c.kernel, c.stride, c.padding)
                    .ok_or_else(|| mismatch(input))?;
                Ok(out.with_channels(c.out_channels))
            }
            Layer::MaxPool2d(p) => input
                .windowed(p.kernel, p.stride, 0)
                .ok_or_else(|| mismatch(input)),
            Layer::Dense(d) => {
                if input.elements() != d.in_features {
                    return Err(mismatch(TensorShape::flat(d.in_features)));
                }
                Ok(TensorShape::flat(d.out_features))
            }
            Layer::MultiThreshold(t) => {
                if input.channels != t.channels {
                    return Err(mismatch(input.with_channels(t.channels)));
                }
                Ok(input)
            }
            Layer::LabelSelect(l) => {
                if input.elements() != l.classes {
                    return Err(mismatch(TensorShape::flat(l.classes)));
                }
                Ok(TensorShape::flat(1))
            }
        }
    }

    /// MAC operations this layer performs per inference given its input
    /// shape (zero for non-MAC layers).
    #[must_use]
    pub fn macs(&self, input: TensorShape) -> u64 {
        match self {
            Layer::Conv2d(c) => c.output_shape_or_zero(input).map_or(0, |out| c.macs(out)),
            Layer::Dense(d) => d.macs(),
            _ => 0,
        }
    }

    /// Whether this layer is executed by an MVTU (matrix-vector-threshold
    /// unit) in the FINN dataflow.
    #[must_use]
    pub fn is_mvtu(&self) -> bool {
        matches!(self, Layer::Conv2d(_) | Layer::Dense(_))
    }

    /// Validates the layer's internal structure (nonzero dims, weight
    /// geometry consistent with declared dims).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] or
    /// [`ModelError::WeightMismatch`] describing the problem; position fields
    /// use placeholders rewritten by the graph validator.
    pub fn validate(&self) -> Result<(), ModelError> {
        let invalid = |reason: String| ModelError::InvalidParameter {
            layer: usize::MAX,
            name: self.kind().to_string(),
            reason,
        };
        match self {
            Layer::Conv2d(c) => {
                if c.in_channels == 0 || c.out_channels == 0 {
                    return Err(invalid("channel counts must be nonzero".into()));
                }
                if c.kernel == 0 || c.stride == 0 {
                    return Err(invalid("kernel and stride must be nonzero".into()));
                }
                if c.weights.out_channels() != c.out_channels
                    || c.weights.in_channels() != c.in_channels
                    || c.weights.kernel() != c.kernel
                {
                    return Err(ModelError::WeightMismatch {
                        layer: usize::MAX,
                        reason: format!(
                            "conv weights are {}x{}x{k}x{k}, layer declares {}x{}x{kk}x{kk}",
                            c.weights.out_channels(),
                            c.weights.in_channels(),
                            c.out_channels,
                            c.in_channels,
                            k = c.weights.kernel(),
                            kk = c.kernel,
                        ),
                    });
                }
                Ok(())
            }
            Layer::MaxPool2d(p) => {
                if p.kernel == 0 || p.stride == 0 {
                    return Err(invalid("kernel and stride must be nonzero".into()));
                }
                Ok(())
            }
            Layer::Dense(d) => {
                if d.in_features == 0 || d.out_features == 0 {
                    return Err(invalid("feature counts must be nonzero".into()));
                }
                if d.weights.out_features() != d.out_features
                    || d.weights.in_features() != d.in_features
                {
                    return Err(ModelError::WeightMismatch {
                        layer: usize::MAX,
                        reason: format!(
                            "dense weights are {}x{}, layer declares {}x{}",
                            d.weights.out_features(),
                            d.weights.in_features(),
                            d.out_features,
                            d.in_features
                        ),
                    });
                }
                Ok(())
            }
            Layer::MultiThreshold(t) => {
                if t.channels == 0 {
                    return Err(invalid("channel count must be nonzero".into()));
                }
                if t.table.channels() != t.channels {
                    return Err(ModelError::WeightMismatch {
                        layer: usize::MAX,
                        reason: format!(
                            "threshold table has {} channels, layer declares {}",
                            t.table.channels(),
                            t.channels
                        ),
                    });
                }
                Ok(())
            }
            Layer::LabelSelect(l) => {
                if l.classes == 0 {
                    return Err(invalid("class count must be nonzero".into()));
                }
                Ok(())
            }
        }
    }
}

impl Conv2d {
    fn output_shape_or_zero(&self, input: TensorShape) -> Option<TensorShape> {
        input
            .windowed(self.kernel, self.stride, self.padding)
            .map(|s| s.with_channels(self.out_channels))
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layer::Conv2d(c) => write!(
                f,
                "conv2d({}→{}, k{}, s{}, p{}, {})",
                c.in_channels, c.out_channels, c.kernel, c.stride, c.padding, c.quant
            ),
            Layer::MaxPool2d(p) => write!(f, "maxpool2d(k{}, s{})", p.kernel, p.stride),
            Layer::Dense(d) => {
                write!(
                    f,
                    "dense({}→{}, {})",
                    d.in_features, d.out_features, d.quant
                )
            }
            Layer::MultiThreshold(t) => {
                write!(
                    f,
                    "multithreshold({} ch, {} levels)",
                    t.channels,
                    t.table.levels()
                )
            }
            Layer::LabelSelect(l) => write!(f, "labelselect({} classes)", l.classes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_inference() {
        let layer = Layer::Conv2d(Conv2d::new(3, 64, 3, 1, 0, QuantSpec::w2a2()));
        let out = layer
            .output_shape(TensorShape::new(3, 32, 32))
            .expect("fits");
        assert_eq!(out, TensorShape::new(64, 30, 30));
    }

    #[test]
    fn conv_rejects_wrong_channels() {
        let layer = Layer::Conv2d(Conv2d::new(3, 64, 3, 1, 0, QuantSpec::w2a2()));
        let err = layer.output_shape(TensorShape::new(4, 32, 32)).unwrap_err();
        assert!(matches!(err, ModelError::ShapeMismatch { .. }));
    }

    #[test]
    fn maxpool_shape_inference() {
        let layer = Layer::MaxPool2d(MaxPool2d::new(2, 2));
        let out = layer
            .output_shape(TensorShape::new(64, 30, 30))
            .expect("fits");
        assert_eq!(out, TensorShape::new(64, 15, 15));
    }

    #[test]
    fn dense_accepts_flattened_input() {
        let layer = Layer::Dense(Dense::new(256 * 4 * 4, 512, QuantSpec::w2a2()));
        let out = layer
            .output_shape(TensorShape::new(256, 4, 4))
            .expect("flatten");
        assert_eq!(out, TensorShape::flat(512));
    }

    #[test]
    fn dense_rejects_wrong_feature_count() {
        let layer = Layer::Dense(Dense::new(100, 10, QuantSpec::w2a2()));
        assert!(layer.output_shape(TensorShape::flat(99)).is_err());
    }

    #[test]
    fn threshold_preserves_shape() {
        let layer = Layer::MultiThreshold(MultiThreshold::uniform(64, 3, -10, 10));
        let s = TensorShape::new(64, 30, 30);
        assert_eq!(layer.output_shape(s).expect("ok"), s);
    }

    #[test]
    fn labelselect_outputs_single_value() {
        let layer = Layer::LabelSelect(LabelSelect { classes: 10 });
        assert_eq!(
            layer.output_shape(TensorShape::flat(10)).expect("ok"),
            TensorShape::flat(1)
        );
        assert!(layer.output_shape(TensorShape::flat(11)).is_err());
    }

    #[test]
    fn conv_macs() {
        let c = Conv2d::new(3, 64, 3, 1, 0, QuantSpec::w2a2());
        // 30x30 output positions, 3*3*3 MACs per filter, 64 filters.
        assert_eq!(c.macs(TensorShape::new(64, 30, 30)), 27 * 64 * 900);
    }

    #[test]
    fn dense_macs_and_weight_bits() {
        let d = Dense::new(512, 10, QuantSpec::w1a2());
        assert_eq!(d.macs(), 5120);
        assert_eq!(d.weight_bits(), 5120);
    }

    #[test]
    fn validate_catches_geometry_drift() {
        let mut c = Conv2d::new(3, 64, 3, 1, 0, QuantSpec::w2a2());
        c.out_channels = 32; // declared dims no longer match the weights
        assert!(Layer::Conv2d(c).validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_dims() {
        let p = Layer::MaxPool2d(MaxPool2d::new(0, 2));
        assert!(matches!(
            p.validate(),
            Err(ModelError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn layer_display_is_informative() {
        let layer = Layer::Conv2d(Conv2d::new(3, 64, 3, 1, 0, QuantSpec::w2a2()));
        let s = layer.to_string();
        assert!(s.contains("conv2d"));
        assert!(s.contains("3→64"));
        assert!(s.contains("W2A2"));
    }

    #[test]
    fn mvtu_classification() {
        assert!(Layer::Conv2d(Conv2d::new(3, 8, 3, 1, 0, QuantSpec::w2a2())).is_mvtu());
        assert!(Layer::Dense(Dense::new(8, 4, QuantSpec::w2a2())).is_mvtu());
        assert!(!Layer::MaxPool2d(MaxPool2d::new(2, 2)).is_mvtu());
    }
}
