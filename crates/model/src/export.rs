//! Model serialization ("ONNX-like" export).
//!
//! The original flow exports pruned Brevitas models as ONNX files that FINN
//! consumes. We reproduce the interchange step with a self-describing JSON
//! container: a versioned envelope around the full [`CnnGraph`], including
//! the per-layer channel metadata the Runtime Manager ships to flexible
//! accelerators at model-switch time.

use crate::error::ModelError;
use crate::graph::CnnGraph;
use serde::{Deserialize, Serialize};

/// Envelope format version; bumped on breaking layout changes.
pub const FORMAT_VERSION: u32 = 1;

/// Serialized model container.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelArchive {
    /// Envelope format version.
    pub version: u32,
    /// Producer tag (diagnostics only).
    pub producer: String,
    /// Per-conv-layer output channel counts — the runtime-controllable
    /// parameter vector of the flexible accelerator (paper §IV-A2).
    pub conv_channels: Vec<usize>,
    /// The graph itself.
    pub graph: CnnGraph,
}

impl ModelArchive {
    /// Wraps a graph in an archive envelope.
    #[must_use]
    pub fn new(graph: CnnGraph) -> Self {
        Self {
            version: FORMAT_VERSION,
            producer: format!("adaflow-model {}", env!("CARGO_PKG_VERSION")),
            conv_channels: graph.conv_channels(),
            graph,
        }
    }

    /// Serializes to the JSON interchange form.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Import`] if serialization fails (practically
    /// impossible for well-formed graphs; kept for API symmetry).
    pub fn to_json(&self) -> Result<String, ModelError> {
        serde_json::to_string(self).map_err(|e| ModelError::Import(e.to_string()))
    }

    /// Deserializes from the JSON interchange form, validating the envelope
    /// and re-running graph validation.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Import`] on malformed JSON, an unsupported
    /// version, or channel metadata inconsistent with the embedded graph;
    /// graph validation errors are propagated as-is.
    pub fn from_json(json: &str) -> Result<Self, ModelError> {
        let archive: ModelArchive =
            serde_json::from_str(json).map_err(|e| ModelError::Import(e.to_string()))?;
        if archive.version != FORMAT_VERSION {
            return Err(ModelError::Import(format!(
                "unsupported archive version {} (expected {FORMAT_VERSION})",
                archive.version
            )));
        }
        // Re-validate the graph: the archive may have been edited on disk.
        let revalidated = archive.graph.with_layers(archive.graph.to_layer_chain())?;
        if revalidated.conv_channels() != archive.conv_channels {
            return Err(ModelError::Import(
                "conv_channels metadata disagrees with graph".into(),
            ));
        }
        Ok(Self {
            graph: revalidated,
            ..archive
        })
    }
}

/// Exports a graph to the JSON interchange form (convenience wrapper).
///
/// # Errors
///
/// See [`ModelArchive::to_json`].
pub fn export_json(graph: &CnnGraph) -> Result<String, ModelError> {
    ModelArchive::new(graph.clone()).to_json()
}

/// Imports a graph from the JSON interchange form (convenience wrapper).
///
/// # Errors
///
/// See [`ModelArchive::from_json`].
pub fn import_json(json: &str) -> Result<CnnGraph, ModelError> {
    ModelArchive::from_json(json).map(|a| a.graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::QuantSpec;
    use crate::topology;

    #[test]
    fn round_trip_preserves_graph() {
        let g = topology::tiny(QuantSpec::w2a2(), 10).expect("builds");
        let json = export_json(&g).expect("export");
        let back = import_json(&json).expect("import");
        assert_eq!(g, back);
    }

    #[test]
    fn archive_captures_channel_metadata() {
        let g = topology::tiny(QuantSpec::w2a2(), 10).expect("builds");
        let archive = ModelArchive::new(g);
        assert_eq!(archive.conv_channels, vec![8, 16]);
        assert_eq!(archive.version, FORMAT_VERSION);
    }

    #[test]
    fn version_mismatch_rejected() {
        let g = topology::tiny(QuantSpec::w2a2(), 10).expect("builds");
        let mut archive = ModelArchive::new(g);
        archive.version = 99;
        let json = serde_json::to_string(&archive).expect("serialize");
        let err = ModelArchive::from_json(&json).unwrap_err();
        assert!(matches!(err, ModelError::Import(_)));
    }

    #[test]
    fn tampered_channel_metadata_rejected() {
        let g = topology::tiny(QuantSpec::w2a2(), 10).expect("builds");
        let mut archive = ModelArchive::new(g);
        archive.conv_channels = vec![8, 15];
        let json = serde_json::to_string(&archive).expect("serialize");
        let err = ModelArchive::from_json(&json).unwrap_err();
        assert!(matches!(err, ModelError::Import(_)));
    }

    #[test]
    fn garbage_json_rejected() {
        assert!(matches!(
            import_json("{not json"),
            Err(ModelError::Import(_))
        ));
    }

    #[test]
    fn cnv_round_trip() {
        let g = topology::cnv_w2a2_cifar10().expect("builds");
        let json = export_json(&g).expect("export");
        let back = import_json(&json).expect("import");
        assert_eq!(g.conv_channels(), back.conv_channels());
        assert_eq!(g.total_macs(), back.total_macs());
    }
}
