//! # adaflow-model — CNN graph intermediate representation
//!
//! This crate provides the model layer of the AdaFlow reproduction: a
//! feed-forward CNN graph IR with quantization metadata, weight storage and
//! shape inference. It is the common substrate shared by the inference engine
//! (`adaflow-nn`), the pruning transform (`adaflow-pruning`) and the
//! dataflow mapper (`adaflow-dataflow`).
//!
//! The IR deliberately mirrors what the FINN compiler consumes: a linear
//! sequence of layers (convolution, max-pooling, fully-connected,
//! multi-threshold activation, label-select) annotated with integer weight
//! tensors and per-tensor quantization specs. FINN maps such graphs onto a
//! pipeline of hardware modules, one per layer (see the paper's Fig. 2).
//!
//! ## Quickstart
//!
//! ```
//! use adaflow_model::prelude::*;
//!
//! // Build the CNV-W2A2 topology used throughout the AdaFlow paper,
//! // adapted to a 10-class dataset (CIFAR-10 resolution, 3x32x32).
//! let graph = topology::cnv(QuantSpec::w2a2(), 10).build()?;
//! assert_eq!(graph.input_shape(), TensorShape::new(3, 32, 32));
//! assert_eq!(graph.conv_layers().count(), 6);
//! # Ok::<(), adaflow_model::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod domains;
pub mod error;
pub mod export;
pub mod graph;
pub mod layer;
pub mod quant;
pub mod shape;
pub mod summary;
pub mod topology;
pub mod weights;

pub use domains::{mvtu_domains, MvtuDomain, PackedFallback, PACKED_MAX_ACT, PACKED_MAX_WEIGHT};
pub use error::ModelError;
pub use graph::{CnnGraph, GraphBuilder, LayerId, Node};
pub use layer::{Conv2d, Dense, LabelSelect, Layer, MaxPool2d, MultiThreshold};
pub use quant::{QuantSpec, QuantizedDomain};
pub use shape::TensorShape;
pub use summary::{GraphSummary, LayerSummary};
pub use weights::{ConvWeights, DenseWeights, ThresholdTable};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::domains::{mvtu_domains, MvtuDomain, PackedFallback};
    pub use crate::error::ModelError;
    pub use crate::graph::{CnnGraph, GraphBuilder, LayerId, Node};
    pub use crate::layer::{Conv2d, Dense, LabelSelect, Layer, MaxPool2d, MultiThreshold};
    pub use crate::quant::{QuantSpec, QuantizedDomain};
    pub use crate::shape::TensorShape;
    pub use crate::summary::{GraphSummary, LayerSummary};
    pub use crate::topology;
    pub use crate::weights::{ConvWeights, DenseWeights, ThresholdTable};
}
