//! Reference topologies.
//!
//! The AdaFlow paper evaluates the FINN/BNN-PYNQ "CNV" network in two
//! quantized variants (CNVW2A2, CNVW1A2), adapted to CIFAR-10 (10 classes)
//! and GTSRB (43 classes), always at CIFAR-10 resolution (3x32x32). This
//! module builds those graphs, plus small topologies used in tests.
//!
//! Weights are initialized with a deterministic xorshift generator so that
//! per-filter ℓ1-norms differ (filter selection needs an ordering) while
//! builds stay reproducible. Real value assignments come from the training
//! loop in `adaflow-nn`.

use crate::graph::{CnnGraph, GraphBuilder};
use crate::layer::{Conv2d, Dense, MaxPool2d, MultiThreshold};
use crate::quant::QuantSpec;
use crate::shape::TensorShape;

/// Deterministic weight filler (xorshift64*), independent of external crates
/// so `adaflow-model` stays dependency-light.
#[derive(Debug, Clone)]
struct Xorshift(u64);

impl Xorshift {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A value uniform in the quantized weight domain.
    fn next_weight(&mut self, quant: QuantSpec) -> i8 {
        let d = quant.weight_domain();
        let card = d.cardinality() as u64;
        let k = (self.next_u64() % card) as i64;
        // Walk the domain skipping zero if excluded.
        let mut v = d.min;
        let mut remaining = k;
        loop {
            if !(d.excludes_zero && v == 0) {
                if remaining == 0 {
                    return v as i8;
                }
                remaining -= 1;
            }
            v += 1;
        }
    }
}

fn filled_conv(
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    quant: QuantSpec,
    rng: &mut Xorshift,
) -> Conv2d {
    let mut c = Conv2d::new(in_ch, out_ch, kernel, stride, padding, quant);
    for w in c.weights.as_mut_slice() {
        *w = rng.next_weight(quant);
    }
    c
}

fn filled_dense(inf: usize, outf: usize, quant: QuantSpec, rng: &mut Xorshift) -> Dense {
    let mut d = Dense::new(inf, outf, quant);
    for w in d.weights.as_mut_slice() {
        *w = rng.next_weight(quant);
    }
    d
}

/// The per-stage channel widths of the CNV network.
pub const CNV_STAGE_CHANNELS: [usize; 3] = [64, 128, 256];

/// Hidden width of the CNV fully-connected head.
pub const CNV_FC_WIDTH: usize = 512;

/// Builds the FINN CNV topology (6 conv + 3 FC) for `classes` output
/// classes at CIFAR-10 resolution, returning a [`GraphBuilder`] so callers
/// can append further layers before building.
///
/// Structure (matching BNN-PYNQ CNV):
///
/// ```text
/// 3x32x32 → conv 3→64 → conv 64→64 → pool → conv 64→128 → conv 128→128 → pool
///         → conv 128→256 → conv 256→256 → fc 256→512 → fc 512→512 → fc 512→C → top1
/// ```
///
/// Every convolution uses 3x3 kernels, stride 1, no padding; pools are 2x2.
/// A [`MultiThreshold`] activation follows each conv/dense layer except the
/// classifier, exactly as FINN folds batch-norm + quantized activation.
#[must_use]
pub fn cnv(quant: QuantSpec, classes: usize) -> GraphBuilder {
    cnv_scaled(quant, classes, 1.0)
}

/// Like [`cnv`], but with all channel widths scaled by `width_scale`
/// (used to model hypothetical narrower deployments and in tests).
///
/// # Panics
///
/// Panics if `width_scale` would reduce any stage below 8 channels or if
/// `classes` is zero.
#[must_use]
pub fn cnv_scaled(quant: QuantSpec, classes: usize, width_scale: f64) -> GraphBuilder {
    assert!(classes > 0, "class count must be nonzero");
    let scale = |c: usize| -> usize {
        let s = ((c as f64) * width_scale).round() as usize;
        assert!(
            s >= 8,
            "width scale too small: stage of {c} channels shrank to {s}"
        );
        s
    };
    let [c1, c2, c3] = [
        scale(CNV_STAGE_CHANNELS[0]),
        scale(CNV_STAGE_CHANNELS[1]),
        scale(CNV_STAGE_CHANNELS[2]),
    ];
    let fc = scale(CNV_FC_WIDTH);
    let levels = quant.threshold_levels();
    let mut rng = Xorshift::new(0xADAF_1001 ^ (classes as u64) << 8 ^ quant.weight_bits as u64);

    let name = format!("cnv-{}-c{classes}", quant.to_string().to_lowercase());
    GraphBuilder::new(name, TensorShape::new(3, 32, 32))
        // Stage 1: 32x32 -> 30x30 -> 28x28 -> pool -> 14x14
        .conv2d(filled_conv(3, c1, 3, 1, 0, quant, &mut rng))
        .threshold(MultiThreshold::uniform(c1, levels, -2048, 2048))
        .conv2d(filled_conv(c1, c1, 3, 1, 0, quant, &mut rng))
        .threshold(MultiThreshold::uniform(c1, levels, -32, 32))
        .max_pool(MaxPool2d::new(2, 2))
        // Stage 2: 14x14 -> 12x12 -> 10x10 -> pool -> 5x5
        .conv2d(filled_conv(c1, c2, 3, 1, 0, quant, &mut rng))
        .threshold(MultiThreshold::uniform(c2, levels, -48, 48))
        .conv2d(filled_conv(c2, c2, 3, 1, 0, quant, &mut rng))
        .threshold(MultiThreshold::uniform(c2, levels, -64, 64))
        .max_pool(MaxPool2d::new(2, 2))
        // Stage 3: 5x5 -> 3x3 -> 1x1
        .conv2d(filled_conv(c2, c3, 3, 1, 0, quant, &mut rng))
        .threshold(MultiThreshold::uniform(c3, levels, -64, 64))
        .conv2d(filled_conv(c3, c3, 3, 1, 0, quant, &mut rng))
        .threshold(MultiThreshold::uniform(c3, levels, -72, 72))
        // FC head
        .dense(filled_dense(c3, fc, quant, &mut rng))
        .threshold(MultiThreshold::uniform(fc, levels, -64, 64))
        .dense(filled_dense(fc, fc, quant, &mut rng))
        .threshold(MultiThreshold::uniform(fc, levels, -64, 64))
        .dense(filled_dense(fc, classes, quant, &mut rng))
        .label_select(classes)
}

/// CNVW2A2 adapted to CIFAR-10 (10 classes), the paper's primary model.
///
/// # Errors
///
/// Never fails for the fixed reference parameters; the `Result` mirrors the
/// fallible builder API.
pub fn cnv_w2a2_cifar10() -> Result<CnnGraph, crate::error::ModelError> {
    cnv(QuantSpec::w2a2(), 10)
        .build()
        .map(|g| g.renamed("cnv-w2a2-cifar10"))
}

/// CNVW2A2 adapted to GTSRB (43 classes).
///
/// # Errors
///
/// Never fails for the fixed reference parameters.
pub fn cnv_w2a2_gtsrb() -> Result<CnnGraph, crate::error::ModelError> {
    cnv(QuantSpec::w2a2(), 43)
        .build()
        .map(|g| g.renamed("cnv-w2a2-gtsrb"))
}

/// CNVW1A2 adapted to CIFAR-10 (10 classes).
///
/// # Errors
///
/// Never fails for the fixed reference parameters.
pub fn cnv_w1a2_cifar10() -> Result<CnnGraph, crate::error::ModelError> {
    cnv(QuantSpec::w1a2(), 10)
        .build()
        .map(|g| g.renamed("cnv-w1a2-cifar10"))
}

/// CNVW1A2 adapted to GTSRB (43 classes).
///
/// # Errors
///
/// Never fails for the fixed reference parameters.
pub fn cnv_w1a2_gtsrb() -> Result<CnnGraph, crate::error::ModelError> {
    cnv(QuantSpec::w1a2(), 43)
        .build()
        .map(|g| g.renamed("cnv-w1a2-gtsrb"))
}

/// A quantized LeNet-style network for 28x28 single-channel inputs
/// (MNIST-class geometry): two 5x5 convolutions with 2x2 pools and a
/// two-layer FC head. A second topology family exercising the dataflow
/// mapper with larger kernels than CNV.
///
/// ```text
/// 1x28x28 → conv5x5 1→8 → pool → conv5x5 8→16 → pool → fc 256→64 → fc 64→C → top1
/// ```
///
/// # Errors
///
/// Never fails for the fixed reference parameters.
pub fn lenet(quant: QuantSpec, classes: usize) -> Result<CnnGraph, crate::error::ModelError> {
    assert!(classes > 0, "class count must be nonzero");
    let mut rng = Xorshift::new(0x1E4E_7500 ^ classes as u64);
    let levels = quant.threshold_levels();
    GraphBuilder::new(
        format!("lenet-{}", quant.to_string().to_lowercase()),
        TensorShape::new(1, 28, 28),
    )
    // 28x28 -> 24x24 -> pool -> 12x12
    .conv2d(filled_conv(1, 8, 5, 1, 0, quant, &mut rng))
    .threshold(MultiThreshold::uniform(8, levels, -2048, 2048))
    .max_pool(MaxPool2d::new(2, 2))
    // 12x12 -> 8x8 -> pool -> 4x4
    .conv2d(filled_conv(8, 16, 5, 1, 0, quant, &mut rng))
    .threshold(MultiThreshold::uniform(16, levels, -96, 96))
    .max_pool(MaxPool2d::new(2, 2))
    // FC head
    .dense(filled_dense(16 * 4 * 4, 64, quant, &mut rng))
    .threshold(MultiThreshold::uniform(64, levels, -64, 64))
    .dense(filled_dense(64, classes, quant, &mut rng))
    .label_select(classes)
    .build()
}

/// A small two-conv network for fast tests: `1x12x12 → conv 1→8 → thresh →
/// pool → conv 8→16 → thresh → fc → top1`.
///
/// # Errors
///
/// Never fails for the fixed reference parameters.
pub fn tiny(quant: QuantSpec, classes: usize) -> Result<CnnGraph, crate::error::ModelError> {
    let mut rng = Xorshift::new(0x7E57_CA5E);
    let levels = quant.threshold_levels();
    GraphBuilder::new(
        format!("tiny-{}", quant.to_string().to_lowercase()),
        TensorShape::new(1, 12, 12),
    )
    .conv2d(filled_conv(1, 8, 3, 1, 0, quant, &mut rng))
    .threshold(MultiThreshold::uniform(8, levels, -768, 768))
    .max_pool(MaxPool2d::new(2, 2))
    .conv2d(filled_conv(8, 16, 3, 1, 0, quant, &mut rng))
    .threshold(MultiThreshold::uniform(16, levels, -24, 24))
    .dense(filled_dense(16 * 3 * 3, classes, quant, &mut rng))
    .label_select(classes)
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;

    #[test]
    fn cnv_w2a2_structure() {
        let g = cnv_w2a2_cifar10().expect("builds");
        assert_eq!(g.input_shape(), TensorShape::new(3, 32, 32));
        assert_eq!(g.conv_layers().count(), 6);
        let dense_count = g
            .iter()
            .filter(|n| matches!(n.layer, Layer::Dense(_)))
            .count();
        assert_eq!(dense_count, 3);
        assert_eq!(g.conv_channels(), vec![64, 64, 128, 128, 256, 256]);
        assert_eq!(g.output_shape(), TensorShape::flat(1));
    }

    #[test]
    fn cnv_shapes_match_finn_reference() {
        let g = cnv_w2a2_cifar10().expect("builds");
        // After the last conv the feature map must be 256x1x1 so the FC head
        // consumes 256 features — the canonical CNV flattening point.
        let last_conv = g.conv_layers().last().expect("has convs").0;
        assert_eq!(last_conv.output_shape, TensorShape::new(256, 1, 1));
    }

    #[test]
    fn gtsrb_variant_has_43_classes() {
        let g = cnv_w2a2_gtsrb().expect("builds");
        let top = g.nodes().last().expect("nonempty");
        match &top.layer {
            Layer::LabelSelect(l) => assert_eq!(l.classes, 43),
            other => panic!("expected labelselect, got {other}"),
        }
    }

    #[test]
    fn w1a2_weights_are_binary() {
        let g = cnv_w1a2_cifar10().expect("builds");
        for (_, conv) in g.conv_layers() {
            assert!(conv.weights.as_slice().iter().all(|&w| w == -1 || w == 1));
        }
    }

    #[test]
    fn w2a2_weights_in_domain() {
        let g = cnv_w2a2_cifar10().expect("builds");
        for (_, conv) in g.conv_layers() {
            assert!(conv
                .weights
                .as_slice()
                .iter()
                .all(|&w| (-1..=1).contains(&w)));
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let a = cnv_w2a2_cifar10().expect("builds");
        let b = cnv_w2a2_cifar10().expect("builds");
        assert_eq!(a, b);
    }

    #[test]
    fn filter_norms_are_not_all_equal() {
        // Filter selection needs an ordering; the xorshift fill must produce
        // distinguishable filters.
        let g = cnv_w2a2_cifar10().expect("builds");
        let (_, conv) = g.conv_layers().next().expect("has convs");
        let norms = conv.weights.filter_l1_norms();
        assert!(norms.iter().any(|&n| n != norms[0]));
    }

    #[test]
    fn scaled_width_changes_channels() {
        let g = cnv_scaled(QuantSpec::w2a2(), 10, 0.5)
            .build()
            .expect("builds");
        assert_eq!(g.conv_channels(), vec![32, 32, 64, 64, 128, 128]);
    }

    #[test]
    #[should_panic(expected = "width scale too small")]
    fn absurd_scale_rejected() {
        let _ = cnv_scaled(QuantSpec::w2a2(), 10, 0.01);
    }

    #[test]
    fn tiny_builds_for_both_quants() {
        assert!(tiny(QuantSpec::w2a2(), 10).is_ok());
        assert!(tiny(QuantSpec::w1a2(), 4).is_ok());
    }

    #[test]
    fn lenet_builds_with_expected_shapes() {
        let g = lenet(QuantSpec::w2a2(), 10).expect("builds");
        assert_eq!(g.input_shape(), TensorShape::new(1, 28, 28));
        assert_eq!(g.conv_channels(), vec![8, 16]);
        // Flatten point: 16x4x4 = 256 features into the FC head.
        let last_conv_out = g.conv_layers().last().expect("convs").0.output_shape;
        assert_eq!(last_conv_out, TensorShape::new(16, 8, 8));
        assert_eq!(g.output_shape(), TensorShape::flat(1));
    }

    #[test]
    fn lenet_kernel_is_five() {
        let g = lenet(QuantSpec::w1a2(), 10).expect("builds");
        for (_, conv) in g.conv_layers() {
            assert_eq!(conv.kernel, 5);
        }
    }

    #[test]
    fn cnv_total_macs_in_expected_range() {
        // Reference CNV on 32x32 is ~58M MACs; allow a broad sanity band.
        let g = cnv_w2a2_cifar10().expect("builds");
        let macs = g.total_macs();
        assert!(macs > 30_000_000 && macs < 100_000_000, "got {macs}");
    }
}
