//! Error types for graph construction and validation.

use crate::shape::TensorShape;
use thiserror::Error;

/// Errors produced while building, validating or transforming a CNN graph.
///
/// Every fallible public function in this crate returns
/// `Result<_, ModelError>`. The variants carry enough context to pinpoint the
/// offending layer.
#[derive(Debug, Clone, PartialEq, Error)]
#[non_exhaustive]
pub enum ModelError {
    /// Two adjacent layers disagree on the tensor shape flowing between them.
    #[error("shape mismatch at layer {layer} ({name}): expected {expected}, found {found}")]
    ShapeMismatch {
        /// Index of the consumer layer.
        layer: usize,
        /// Human-readable layer name.
        name: String,
        /// Shape the consumer expects.
        expected: TensorShape,
        /// Shape the producer emits.
        found: TensorShape,
    },

    /// A layer parameter is structurally invalid (zero channels, zero kernel, ...).
    #[error("invalid parameter for layer {layer} ({name}): {reason}")]
    InvalidParameter {
        /// Index of the offending layer.
        layer: usize,
        /// Human-readable layer name.
        name: String,
        /// Why the parameter is rejected.
        reason: String,
    },

    /// A weight tensor does not match the layer geometry it is attached to.
    #[error("weight geometry mismatch at layer {layer}: {reason}")]
    WeightMismatch {
        /// Index of the offending layer.
        layer: usize,
        /// Why the weights are rejected.
        reason: String,
    },

    /// The graph is empty or lacks mandatory structure (e.g. no output layer).
    #[error("malformed graph: {0}")]
    MalformedGraph(String),

    /// A quantized value falls outside the representable range of its domain.
    #[error("value {value} outside quantized domain [{min}, {max}]")]
    QuantRange {
        /// The out-of-range value.
        value: i64,
        /// Domain minimum.
        min: i64,
        /// Domain maximum.
        max: i64,
    },

    /// A layer id does not exist in the graph.
    #[error("unknown layer id {0}")]
    UnknownLayer(usize),

    /// Import of a serialized graph failed.
    #[error("import error: {0}")]
    Import(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = ModelError::MalformedGraph("graph has no layers".into());
        let text = err.to_string();
        assert!(text.starts_with("malformed graph"));
        assert!(!text.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }

    #[test]
    fn shape_mismatch_mentions_both_shapes() {
        let err = ModelError::ShapeMismatch {
            layer: 3,
            name: "conv2".into(),
            expected: TensorShape::new(64, 16, 16),
            found: TensorShape::new(32, 16, 16),
        };
        let text = err.to_string();
        assert!(text.contains("64x16x16"));
        assert!(text.contains("32x16x16"));
        assert!(text.contains("conv2"));
    }
}
