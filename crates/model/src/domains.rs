//! Per-MVTU quantized-domain metadata for kernel selection.
//!
//! The packed SWAR/popcount kernels in `adaflow-nn` represent an MVTU dot
//! product as bitplane popcounts, exactly like the FINN matrix-vector
//! compute unit they model: weights split into a `+1` plane and a `-1`
//! plane, activations decomposed into at most two bitplanes. That
//! representation is only faithful when the layer's *effective* domains fit
//! the packed contract:
//!
//! * every stored weight lies in `{-1, 0, +1}` (any declared spec of
//!   ≤ 2 bits under the signed narrow-range convention), and
//! * every activation reaching the layer lies in `0..=3` (two bitplanes)
//!   — in particular the first MVTU, which consumes the raw 8-bit pixel
//!   stream, never qualifies.
//!
//! This module derives that eligibility per MVTU layer by walking the
//! graph the same way the verifier's accumulator analysis does: the input
//! contributes activations up to 255, each `MultiThreshold` re-quantizes
//! to `0..=levels`, and pooling preserves the bound. Both the inference
//! engine (kernel dispatch) and verify rule `AF009` (lint) consume the
//! result, so "the verifier-established domains fit" and "the engine
//! selects the packed kernel" are the same predicate by construction.

use crate::graph::CnnGraph;
use crate::layer::Layer;

/// Largest activation value the packed kernels can represent: two
/// bitplanes, `0..=3`.
pub const PACKED_MAX_ACT: i64 = 3;

/// Largest weight magnitude the packed kernels can represent: one sign
/// plane pair, `{-1, 0, +1}`.
pub const PACKED_MAX_WEIGHT: i64 = 1;

/// Largest value an input activation can take: the engine consumes `u8`
/// pixel streams. (Mirrors `adaflow_verify::INPUT_ACT_MAX`, duplicated
/// here because `adaflow-verify` depends on this crate, not vice versa.)
pub const INPUT_ACT_MAX: i64 = u8::MAX as i64;

/// Why an MVTU layer cannot use the packed popcount kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackedFallback {
    /// The declared weight spec is wider than 2 bits, so the domain admits
    /// magnitudes beyond ±1.
    WeightBitsTooWide(u8),
    /// The declared spec fits, but some stored weight strays outside
    /// `{-1, 0, +1}` (a model bug `AF003` also reports).
    WeightOutsidePackedDomain,
    /// Activations reaching this layer can exceed 3, so two bitplanes
    /// cannot represent them. Carries the derived incoming maximum.
    ActivationsTooWide(i64),
}

impl std::fmt::Display for PackedFallback {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::WeightBitsTooWide(bits) => {
                write!(
                    f,
                    "declared {bits}-bit weights exceed the ≤2-bit packed contract"
                )
            }
            Self::WeightOutsidePackedDomain => {
                write!(f, "stored weights stray outside {{-1, 0, +1}}")
            }
            Self::ActivationsTooWide(max) => {
                write!(f, "incoming activations reach {max} > {PACKED_MAX_ACT}")
            }
        }
    }
}

/// Quantized-domain metadata of one MVTU (conv or dense) layer, as
/// established by walking the graph's threshold structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MvtuDomain {
    /// Layer index in the graph.
    pub layer: usize,
    /// Layer name.
    pub name: String,
    /// Declared weight bit-width from the layer's [`crate::QuantSpec`].
    pub weight_bits: u8,
    /// Declared activation bit-width from the layer's [`crate::QuantSpec`].
    pub act_bits: u8,
    /// Largest activation value that can reach this layer, derived from
    /// the upstream threshold tables (255 at the network input).
    pub act_in_max: i64,
    /// Number of bitplanes needed for the incoming activations
    /// (`bits(act_in_max)`).
    pub act_in_planes: u32,
    /// Whether the incoming activation bound comes straight from the
    /// 8-bit network input (true only for the first MVTU).
    pub act_from_input: bool,
    /// Dot-product length: `k²·ch_in` for conv, `in_features` for dense.
    pub fan_in: usize,
    /// Number of independent dot products sharing one activation vector:
    /// `out_channels` for conv, `out_features` for dense.
    pub rows: usize,
    /// `None` when the layer satisfies the packed-kernel contract;
    /// otherwise the first reason it does not.
    pub fallback: Option<PackedFallback>,
}

impl MvtuDomain {
    /// Whether the packed popcount kernels may compute this layer.
    #[must_use]
    pub fn packed_eligible(&self) -> bool {
        self.fallback.is_none()
    }
}

/// Number of bitplanes needed to represent `0..=max` (1 for max ≤ 1).
fn planes_for(max: i64) -> u32 {
    debug_assert!(max >= 0);
    (64 - max.leading_zeros()).max(1)
}

fn classify(weight_bits: u8, weights: &[i8], act_in_max: i64) -> Option<PackedFallback> {
    if weight_bits > 2 {
        return Some(PackedFallback::WeightBitsTooWide(weight_bits));
    }
    if act_in_max > PACKED_MAX_ACT {
        return Some(PackedFallback::ActivationsTooWide(act_in_max));
    }
    if weights.iter().any(|&w| !(-1..=1).contains(&w)) {
        return Some(PackedFallback::WeightOutsidePackedDomain);
    }
    None
}

/// Derives the packed-kernel domain metadata of every MVTU layer, in
/// dataflow order. The activation bound tracking mirrors
/// `adaflow_verify::accumulator_bounds`: input pixels contribute up to
/// 255, `MultiThreshold` resets the bound to its level count, pooling and
/// label-select preserve it.
#[must_use]
pub fn mvtu_domains(graph: &CnnGraph) -> Vec<MvtuDomain> {
    let mut out = Vec::new();
    let mut act_max = INPUT_ACT_MAX;
    let mut from_input = true;
    for node in graph.iter() {
        match &node.layer {
            Layer::Conv2d(c) => {
                let fan_in = c.kernel * c.kernel * c.in_channels;
                out.push(MvtuDomain {
                    layer: node.id.0,
                    name: node.name.clone(),
                    weight_bits: c.quant.weight_bits,
                    act_bits: c.quant.act_bits,
                    act_in_max: act_max,
                    act_in_planes: planes_for(act_max),
                    act_from_input: from_input,
                    fan_in,
                    rows: c.out_channels,
                    fallback: classify(c.quant.weight_bits, c.weights.as_slice(), act_max),
                });
                // Until a threshold re-quantizes, the value is an i32
                // accumulator; the declared activation domain is the
                // conservative stand-in for the invalid MVTU-feeds-MVTU
                // case, matching the accumulator analysis.
                act_max = c.quant.act_domain().max;
                from_input = false;
            }
            Layer::Dense(d) => {
                out.push(MvtuDomain {
                    layer: node.id.0,
                    name: node.name.clone(),
                    weight_bits: d.quant.weight_bits,
                    act_bits: d.quant.act_bits,
                    act_in_max: act_max,
                    act_in_planes: planes_for(act_max),
                    act_from_input: from_input,
                    fan_in: d.in_features,
                    rows: d.out_features,
                    fallback: classify(d.quant.weight_bits, d.weights.as_slice(), act_max),
                });
                act_max = d.quant.act_domain().max;
                from_input = false;
            }
            Layer::MultiThreshold(t) => {
                act_max = t.table.levels() as i64;
                from_input = false;
            }
            Layer::MaxPool2d(_) | Layer::LabelSelect(_) => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn first_mvtu_is_never_eligible() {
        let g = topology::cnv_w2a2_cifar10().expect("builds");
        let domains = mvtu_domains(&g);
        assert_eq!(domains.len(), 9);
        assert!(domains[0].act_from_input);
        assert_eq!(domains[0].act_in_max, INPUT_ACT_MAX);
        assert_eq!(
            domains[0].fallback,
            Some(PackedFallback::ActivationsTooWide(INPUT_ACT_MAX))
        );
        // Every inner MVTU sees thresholded 2-bit activations and ±1
        // weights, so the packed contract holds.
        for d in &domains[1..] {
            assert!(d.packed_eligible(), "{}: {:?}", d.name, d.fallback);
            assert_eq!(d.act_in_max, 3);
            assert_eq!(d.act_in_planes, 2);
            assert!(!d.act_from_input);
        }
    }

    #[test]
    fn one_bit_activations_need_one_plane() {
        assert_eq!(planes_for(0), 1);
        assert_eq!(planes_for(1), 1);
        assert_eq!(planes_for(2), 2);
        assert_eq!(planes_for(3), 2);
        assert_eq!(planes_for(4), 3);
        assert_eq!(planes_for(255), 8);
    }

    #[test]
    fn wide_weights_fall_back() {
        let g = topology::lenet(QuantSpec::new(4, 2), 10).expect("builds");
        let domains = mvtu_domains(&g);
        assert!(domains
            .iter()
            .all(|d| d.fallback == Some(PackedFallback::WeightBitsTooWide(4))));
    }

    #[test]
    fn wide_thresholds_make_consumers_ineligible() {
        // A 3-bit threshold (7 levels) between two 2-bit convs: the
        // second conv's incoming activations reach 7 > 3.
        let g = GraphBuilder::new("wide-acts", TensorShape::new(1, 8, 8))
            .conv2d(Conv2d::new(1, 4, 3, 1, 0, QuantSpec::w2a2()))
            .threshold(MultiThreshold::uniform(4, 7, -4, 4))
            .conv2d(Conv2d::new(4, 4, 3, 1, 0, QuantSpec::w2a2()))
            .threshold(MultiThreshold::uniform(4, 3, -4, 4))
            .dense(Dense::new(4 * 4 * 4, 4, QuantSpec::w2a2()))
            .label_select(4)
            .build()
            .expect("builds");
        let domains = mvtu_domains(&g);
        assert_eq!(domains.len(), 3);
        assert_eq!(
            domains[1].fallback,
            Some(PackedFallback::ActivationsTooWide(7))
        );
        assert!(domains[2].packed_eligible(), "dense sees the 3-level table");
    }

    #[test]
    fn out_of_domain_weights_fall_back() {
        let mut w = vec![0i8; 4 * 9];
        w[7] = 2; // within the declared 2-bit storage type, outside ±1
        let mut conv = Conv2d::new(1, 4, 3, 1, 0, QuantSpec::w2a2());
        conv.weights = ConvWeights::from_flat(4, 1, 3, w).expect("geometry");
        let g = GraphBuilder::new("bad-weights", TensorShape::new(1, 8, 8))
            .conv2d(conv)
            .threshold(MultiThreshold::uniform(4, 3, -4, 4))
            .dense(Dense::new(4 * 6 * 6, 4, QuantSpec::w2a2()))
            .label_select(4)
            .build()
            .expect("builds");
        let domains = mvtu_domains(&g);
        // First conv consumes raw pixels, so the activation fallback wins;
        // force eligibility by checking classify directly.
        assert_eq!(
            classify(2, &[0, 1, 2], 3),
            Some(PackedFallback::WeightOutsidePackedDomain)
        );
        assert_eq!(
            domains[0].fallback,
            Some(PackedFallback::ActivationsTooWide(INPUT_ACT_MAX))
        );
    }
}
