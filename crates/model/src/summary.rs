//! Per-layer graph statistics.
//!
//! A compact, renderable breakdown of a CNN graph: shapes, parameters, MACs
//! and arithmetic intensity per layer — the "model card" the Library
//! Generator logs for every pruned variant.

use crate::graph::CnnGraph;
use crate::layer::Layer;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Statistics of one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSummary {
    /// Layer name.
    pub name: String,
    /// Layer kind (`conv2d`, `dense`, ...).
    pub kind: String,
    /// Input shape, rendered `CxHxW`.
    pub input: String,
    /// Output shape, rendered `CxHxW`.
    pub output: String,
    /// Stored parameters (weights).
    pub params: u64,
    /// MAC operations per inference.
    pub macs: u64,
}

/// Whole-graph statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphSummary {
    /// Model name.
    pub model: String,
    /// Per-layer rows, in dataflow order.
    pub layers: Vec<LayerSummary>,
    /// Total parameters.
    pub total_params: u64,
    /// Total MACs per inference.
    pub total_macs: u64,
    /// Total stored weight bits.
    pub total_weight_bits: u64,
}

impl GraphSummary {
    /// Builds the summary of a graph.
    #[must_use]
    pub fn of(graph: &CnnGraph) -> Self {
        let layers: Vec<LayerSummary> = graph
            .iter()
            .map(|node| {
                let params = match &node.layer {
                    Layer::Conv2d(c) => c.weights.len() as u64,
                    Layer::Dense(d) => (d.in_features * d.out_features) as u64,
                    Layer::MultiThreshold(t) => (t.channels * t.table.levels()) as u64,
                    _ => 0,
                };
                LayerSummary {
                    name: node.name.clone(),
                    kind: node.layer.kind().to_string(),
                    input: node.input_shape.to_string(),
                    output: node.output_shape.to_string(),
                    params,
                    macs: node.macs(),
                }
            })
            .collect();
        Self {
            model: graph.name().to_string(),
            total_params: layers.iter().map(|l| l.params).sum(),
            total_macs: graph.total_macs(),
            total_weight_bits: graph.total_weight_bits(),
            layers,
        }
    }

    /// The layer contributing the most MACs (the pipeline's likely
    /// bottleneck before folding).
    #[must_use]
    pub fn heaviest_layer(&self) -> Option<&LayerSummary> {
        self.layers.iter().max_by_key(|l| l.macs)
    }
}

impl fmt::Display for GraphSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} — {} params, {:.1}M MACs, {:.1} KiB weights",
            self.model,
            self.total_params,
            self.total_macs as f64 / 1e6,
            self.total_weight_bits as f64 / 8.0 / 1024.0
        )?;
        writeln!(
            f,
            "{:<10} {:<14} {:>11} {:>11} {:>10} {:>12}",
            "layer", "kind", "input", "output", "params", "MACs"
        )?;
        for l in &self.layers {
            writeln!(
                f,
                "{:<10} {:<14} {:>11} {:>11} {:>10} {:>12}",
                l.name, l.kind, l.input, l.output, l.params, l.macs
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::QuantSpec;
    use crate::topology;

    #[test]
    fn cnv_summary_totals_match_graph() {
        let g = topology::cnv_w2a2_cifar10().expect("builds");
        let s = GraphSummary::of(&g);
        assert_eq!(s.total_macs, g.total_macs());
        assert_eq!(s.total_weight_bits, g.total_weight_bits());
        assert_eq!(s.layers.len(), g.len());
        // CNV parameter count: ~1.54M weights (conv + fc).
        let weight_params: u64 = s
            .layers
            .iter()
            .filter(|l| l.kind == "conv2d" || l.kind == "dense")
            .map(|l| l.params)
            .sum();
        assert!(
            (1_400_000..1_700_000).contains(&weight_params),
            "{weight_params}"
        );
    }

    #[test]
    fn heaviest_layer_is_conv2_for_cnv() {
        // conv2 (64->64 over 28x28) carries the most MACs in CNV.
        let g = topology::cnv_w2a2_cifar10().expect("builds");
        let s = GraphSummary::of(&g);
        assert_eq!(s.heaviest_layer().expect("nonempty").name, "conv2");
    }

    #[test]
    fn summary_serde_round_trip() {
        let g = topology::tiny(QuantSpec::w2a2(), 4).expect("builds");
        let s = GraphSummary::of(&g);
        let json = serde_json::to_string(&s).expect("serialize");
        let back: GraphSummary = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(s, back);
    }

    #[test]
    fn display_renders_all_layers() {
        let g = topology::tiny(QuantSpec::w2a2(), 4).expect("builds");
        let text = GraphSummary::of(&g).to_string();
        assert!(text.contains("conv1"));
        assert!(text.contains("top1"));
        assert!(text.lines().count() >= g.len() + 2);
    }
}
