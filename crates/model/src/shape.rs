//! Tensor shapes in channels-height-width (CHW) layout.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Shape of an activation tensor flowing between dataflow layers.
///
/// FINN streams feature maps in CHW order, one pixel-vector at a time; all
/// shape arithmetic in the dataflow mapper is therefore expressed on this
/// type. A fully-connected feature vector of length `n` is represented as
/// `TensorShape::flat(n)` (i.e. `n x 1 x 1`).
///
/// ```
/// use adaflow_model::TensorShape;
///
/// let input = TensorShape::new(3, 32, 32);
/// assert_eq!(input.elements(), 3 * 32 * 32);
/// assert_eq!(input.spatial(), 32 * 32);
/// assert!(!input.is_flat());
/// assert!(TensorShape::flat(512).is_flat());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorShape {
    /// Number of channels (feature maps).
    pub channels: usize,
    /// Spatial height in pixels.
    pub height: usize,
    /// Spatial width in pixels.
    pub width: usize,
}

impl TensorShape {
    /// Creates a CHW shape.
    #[must_use]
    pub const fn new(channels: usize, height: usize, width: usize) -> Self {
        Self {
            channels,
            height,
            width,
        }
    }

    /// Creates a flat (fully-connected) feature vector shape of length `n`.
    #[must_use]
    pub const fn flat(n: usize) -> Self {
        Self {
            channels: n,
            height: 1,
            width: 1,
        }
    }

    /// Total number of elements.
    #[must_use]
    pub const fn elements(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Number of spatial positions (`height * width`).
    #[must_use]
    pub const fn spatial(&self) -> usize {
        self.height * self.width
    }

    /// Whether this shape is a flat feature vector (1x1 spatial extent).
    #[must_use]
    pub const fn is_flat(&self) -> bool {
        self.height == 1 && self.width == 1
    }

    /// Returns this shape with a different channel count, keeping the
    /// spatial extent. Used by the pruning transform when filters are
    /// removed from the producing convolution.
    #[must_use]
    pub const fn with_channels(&self, channels: usize) -> Self {
        Self {
            channels,
            height: self.height,
            width: self.width,
        }
    }

    /// Output spatial extent of a `kernel`/`stride`/`padding` sliding window
    /// applied over this shape, or `None` if the window does not fit.
    #[must_use]
    pub fn windowed(&self, kernel: usize, stride: usize, padding: usize) -> Option<Self> {
        if kernel == 0 || stride == 0 {
            return None;
        }
        let h_in = self.height + 2 * padding;
        let w_in = self.width + 2 * padding;
        if h_in < kernel || w_in < kernel {
            return None;
        }
        Some(Self {
            channels: self.channels,
            height: (h_in - kernel) / stride + 1,
            width: (w_in - kernel) / stride + 1,
        })
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.channels, self.height, self.width)
    }
}

impl From<(usize, usize, usize)> for TensorShape {
    fn from((c, h, w): (usize, usize, usize)) -> Self {
        Self::new(c, h, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elements_and_spatial() {
        let s = TensorShape::new(64, 16, 16);
        assert_eq!(s.elements(), 64 * 256);
        assert_eq!(s.spatial(), 256);
    }

    #[test]
    fn flat_shapes() {
        let s = TensorShape::flat(512);
        assert!(s.is_flat());
        assert_eq!(s.elements(), 512);
        assert_eq!(s.to_string(), "512x1x1");
    }

    #[test]
    fn windowed_valid_conv() {
        // 3x3 conv, stride 1, no padding over 32x32 -> 30x30 (FINN CNV style).
        let s = TensorShape::new(3, 32, 32);
        let out = s.windowed(3, 1, 0).expect("window fits");
        assert_eq!(out, TensorShape::new(3, 30, 30));
    }

    #[test]
    fn windowed_with_padding() {
        let s = TensorShape::new(16, 32, 32);
        let out = s.windowed(3, 1, 1).expect("window fits");
        assert_eq!(out, TensorShape::new(16, 32, 32));
    }

    #[test]
    fn windowed_maxpool() {
        let s = TensorShape::new(64, 30, 30);
        let out = s.windowed(2, 2, 0).expect("window fits");
        assert_eq!(out, TensorShape::new(64, 15, 15));
    }

    #[test]
    fn windowed_too_small() {
        let s = TensorShape::new(8, 2, 2);
        assert_eq!(s.windowed(3, 1, 0), None);
    }

    #[test]
    fn windowed_rejects_degenerate_params() {
        let s = TensorShape::new(8, 8, 8);
        assert_eq!(s.windowed(0, 1, 0), None);
        assert_eq!(s.windowed(3, 0, 0), None);
    }

    #[test]
    fn with_channels_keeps_spatial() {
        let s = TensorShape::new(64, 15, 15).with_channels(48);
        assert_eq!(s, TensorShape::new(48, 15, 15));
    }

    #[test]
    fn conversion_from_tuple() {
        let s: TensorShape = (3, 32, 32).into();
        assert_eq!(s, TensorShape::new(3, 32, 32));
    }

    #[test]
    fn serde_round_trip() {
        let s = TensorShape::new(128, 8, 8);
        let json = serde_json::to_string(&s).expect("serialize");
        let back: TensorShape = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(s, back);
    }
}
