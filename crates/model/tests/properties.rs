//! Property-based tests on the model IR.

use adaflow_model::export::{export_json, import_json};
use adaflow_model::prelude::*;
use proptest::prelude::*;

proptest! {
    /// `windowed` agrees with the textbook output-size formula whenever it
    /// succeeds, and only fails when the window genuinely does not fit.
    #[test]
    fn windowed_matches_formula(
        c in 1usize..64,
        h in 1usize..64,
        w in 1usize..64,
        k in 1usize..8,
        s in 1usize..4,
        p in 0usize..4,
    ) {
        let shape = TensorShape::new(c, h, w);
        match shape.windowed(k, s, p) {
            Some(out) => {
                prop_assert_eq!(out.channels, c);
                prop_assert_eq!(out.height, (h + 2 * p - k) / s + 1);
                prop_assert_eq!(out.width, (w + 2 * p - k) / s + 1);
            }
            None => {
                prop_assert!(h + 2 * p < k || w + 2 * p < k);
            }
        }
    }

    /// Removing filters then asking for norms matches removing the norms
    /// directly — the structural op and the statistics commute.
    #[test]
    fn filter_removal_commutes_with_norms(
        out_ch in 2usize..12,
        in_ch in 1usize..4,
        k in 1usize..4,
        seed in 0u64..1000,
        remove_mask in 0u16..4096,
    ) {
        let mut w = ConvWeights::zeroed(out_ch, in_ch, k);
        let mut state = seed | 1;
        for v in w.as_mut_slice() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *v = ((state >> 33) % 3) as i8 - 1;
        }
        let remove: Vec<usize> =
            (0..out_ch).filter(|i| remove_mask & (1 << i) != 0).collect();
        prop_assume!(!remove.is_empty() && remove.len() < out_ch);

        let norms_before = w.filter_l1_norms();
        let pruned = w.without_filters(&remove).expect("legal removal");
        let norms_after = pruned.filter_l1_norms();
        let kept: Vec<u64> = (0..out_ch)
            .filter(|i| !remove.contains(i))
            .map(|i| norms_before[i])
            .collect();
        prop_assert_eq!(norms_after, kept);
    }

    /// Quantized domains: clamp always lands inside, cardinality counts
    /// exactly the contained integers.
    #[test]
    fn quant_domain_invariants(bits in 1u8..=8, value in -1000i64..1000) {
        for domain in [QuantizedDomain::signed(bits), QuantizedDomain::unsigned(bits)] {
            let clamped = domain.clamp(value);
            prop_assert!(domain.contains(clamped));
            let counted = (domain.min..=domain.max).filter(|&v| domain.contains(v)).count();
            prop_assert_eq!(counted, domain.cardinality());
        }
    }

    /// Threshold tables: `apply` is monotone in the accumulator and bounded
    /// by the level count.
    #[test]
    fn threshold_apply_monotone(
        lo in -100i32..0,
        hi in 1i32..100,
        levels in 1usize..8,
        a in -200i32..200,
        b in -200i32..200,
    ) {
        let t = ThresholdTable::uniform(1, levels, lo, hi);
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(t.apply(0, x) <= t.apply(0, y));
        prop_assert!(usize::from(t.apply(0, y)) <= levels);
    }

    /// Export/import round-trips arbitrary scaled CNV graphs.
    #[test]
    fn export_round_trip(classes in 2usize..20, w1 in proptest::bool::ANY) {
        let quant = if w1 { QuantSpec::w1a2() } else { QuantSpec::w2a2() };
        let graph = topology::tiny(quant, classes).expect("builds");
        let json = export_json(&graph).expect("export");
        let back = import_json(&json).expect("import");
        prop_assert_eq!(graph, back);
    }
}
