//! A minimal Prometheus `/metrics` endpoint.
//!
//! Deliberately not a web framework: one nonblocking accept loop, one
//! thread, and just enough HTTP/1.1 to satisfy a Prometheus scraper —
//! read until the blank line, answer `200 text/plain` with the current
//! registry exposition, close. Anything fancier belongs behind a real
//! reverse proxy.

use adaflow_telemetry::RegistrySink;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A bound metrics endpoint; serve with [`MetricsEndpoint::serve`].
pub struct MetricsEndpoint {
    listener: TcpListener,
    registry: Arc<RegistrySink>,
    stop: Arc<AtomicBool>,
}

impl MetricsEndpoint {
    /// Binds the endpoint (port 0 for ephemeral).
    ///
    /// # Errors
    ///
    /// I/O errors from binding.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: Arc<RegistrySink>,
        stop: Arc<AtomicBool>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Self {
            listener,
            registry,
            stop,
        })
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// I/O errors from the socket query.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves scrapes until the stop flag is raised. Run on its own
    /// thread; returns when stopped.
    pub fn serve(&self) {
        while !self.stop.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // Scrapes are rare and cheap; handle inline.
                    let _ = self.answer(stream);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => break,
            }
        }
    }

    fn answer(&self, mut stream: std::net::TcpStream) -> std::io::Result<()> {
        stream.set_read_timeout(Some(Duration::from_millis(500)))?;
        // Read until the end of the request head; the path is irrelevant —
        // every route serves the exposition.
        let mut head = Vec::with_capacity(512);
        let mut buf = [0u8; 512];
        loop {
            let n = stream.read(&mut buf)?;
            if n == 0 {
                break;
            }
            head.extend_from_slice(&buf[..n]);
            if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
                break;
            }
        }
        let body = self.registry.snapshot().to_prometheus();
        let response = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(response.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaflow_telemetry::RegistryConfig;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    #[test]
    fn scrape_returns_prometheus_exposition() {
        let registry = RegistrySink::new(RegistryConfig::default());
        let stop = Arc::new(AtomicBool::new(false));
        let endpoint = MetricsEndpoint::bind("127.0.0.1:0", registry, stop.clone()).expect("binds");
        let addr = endpoint.local_addr().expect("addr");
        let server = std::thread::spawn(move || endpoint.serve());

        let mut conn = TcpStream::connect(addr).expect("connects");
        conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("writes");
        let mut response = String::new();
        conn.read_to_string(&mut response).expect("reads");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("text/plain"));

        stop.store(true, Ordering::SeqCst);
        server.join().expect("joins");
    }
}
