//! Seeded closed/open-loop load generator over the wire protocol.
//!
//! The client-side twin of the DES arrival generator: the same
//! seeded-jitter idiom produces the open-loop schedule, so a live run and
//! a simulated run can be driven by statistically matched load. Every
//! response is classified by its machine-readable [`Status`], so the
//! summary separates queue-full, deadline-infeasible and shutting-down
//! rejects instead of lumping everything into "failed". Socket handling
//! lives in [`ProtoClient`] — the same pipelined, id-correlated transport
//! the gateway uses for its backend connections.

use adaflow_model::TensorShape;
use adaflow_proto::{ClientError, ProtoClient, RequestFrame, Status};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// ±20% uniform jitter on open-loop inter-arrival gaps — the same
/// constant the DES arrival generator applies.
const GAP_JITTER: f64 = 0.2;

/// How the generator paces requests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LoadMode {
    /// Closed loop: each connection sends, waits for the response, then
    /// sends again — `requests` times. Measures server capacity at
    /// concurrency = connections.
    Closed {
        /// Requests per connection.
        requests: u64,
    },
    /// Open loop: each connection sends on a seeded jittered schedule at
    /// `rate_fps / connections` regardless of responses, for
    /// `duration_s`. Measures behavior under offered (not admitted) load.
    Open {
        /// Aggregate target rate across all connections, requests/s.
        rate_fps: f64,
        /// How long to keep offering load, seconds.
        duration_s: f64,
    },
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Model id to request.
    pub model: String,
    /// Input tensor shape (must match the served model to be admitted).
    pub shape: TensorShape,
    /// Parallel connections.
    pub connections: usize,
    /// Pacing mode.
    pub mode: LoadMode,
    /// Per-request deadline budget in microseconds (0 = server default).
    pub deadline_us: u64,
    /// RNG seed; same seed + same config = same schedule and payloads.
    pub seed: u64,
    /// How long to wait for straggler responses after the last send.
    pub recv_grace: Duration,
}

impl LoadConfig {
    /// A closed-loop config with sane defaults.
    #[must_use]
    pub fn closed(addr: SocketAddr, model: &str, shape: TensorShape, requests: u64) -> Self {
        Self {
            addr,
            model: model.to_string(),
            shape,
            connections: 1,
            mode: LoadMode::Closed { requests },
            deadline_us: 0,
            seed: 7,
            recv_grace: Duration::from_secs(5),
        }
    }
}

/// What one load run observed, classified by machine-readable reason.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LoadSummary {
    /// Requests written to the wire.
    pub sent: u64,
    /// `Ok` responses.
    pub ok: u64,
    /// `QueueFull` rejects (admission shed).
    pub rejected_queue_full: u64,
    /// `DeadlineInfeasible` rejects.
    pub rejected_deadline_infeasible: u64,
    /// `ShuttingDown` rejects.
    pub rejected_shutting_down: u64,
    /// `UnknownModel` rejects.
    pub rejected_unknown_model: u64,
    /// `BadRequest` rejects.
    pub rejected_bad_request: u64,
    /// Sent requests that never got a response (connection died or the
    /// grace window expired).
    pub missing: u64,
    /// Undecodable or out-of-contract frames from the server.
    pub protocol_errors: u64,
    /// Socket-level failures (connect, send, read).
    pub io_errors: u64,
    /// `Ok` responses whose server-side latency met the requested budget
    /// (equals `ok` when no explicit deadline was sent).
    pub deadline_hits: u64,
    /// Client-observed round-trip percentiles over `Ok` responses, seconds.
    pub rtt_p50_s: f64,
    /// 95th percentile RTT, seconds.
    pub rtt_p95_s: f64,
    /// 99th percentile RTT, seconds.
    pub rtt_p99_s: f64,
    /// Wall-clock duration of the run, seconds.
    pub elapsed_s: f64,
    /// `Ok` responses per wall-clock second.
    pub throughput_rps: f64,
}

impl LoadSummary {
    /// Deadline hits as a percentage of *sent* requests — a reject or a
    /// missing response is a miss, matching the server summary's
    /// convention that a shed request is a miss.
    #[must_use]
    pub fn hit_pct(&self) -> f64 {
        100.0 * self.deadline_hits as f64 / (self.sent as f64).max(1.0)
    }

    /// Total rejects across every reason code.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        Status::ALL
            .into_iter()
            .filter(|s| !s.is_ok())
            .map(|s| self.count_for(s))
            .sum()
    }

    /// Rejects a client (or a gateway in front of us) could have safely
    /// retried elsewhere — the [`Status::is_retryable`] subset. When the
    /// load runs *through* the gateway this should be ~0: the gateway
    /// absorbs retryable statuses into its own retry budget.
    #[must_use]
    pub fn rejected_retryable(&self) -> u64 {
        Status::ALL
            .into_iter()
            .filter(|s| s.is_retryable())
            .map(|s| self.count_for(s))
            .sum()
    }

    /// The counter a given status lands in.
    fn count_for(&self, status: Status) -> u64 {
        match status {
            Status::Ok => self.ok,
            Status::QueueFull => self.rejected_queue_full,
            Status::DeadlineInfeasible => self.rejected_deadline_infeasible,
            Status::ShuttingDown => self.rejected_shutting_down,
            Status::UnknownModel => self.rejected_unknown_model,
            Status::BadRequest => self.rejected_bad_request,
        }
    }

    fn classify(&mut self, status: Status) {
        match status {
            Status::Ok => self.ok += 1,
            Status::QueueFull => self.rejected_queue_full += 1,
            Status::DeadlineInfeasible => self.rejected_deadline_infeasible += 1,
            Status::ShuttingDown => self.rejected_shutting_down += 1,
            Status::UnknownModel => self.rejected_unknown_model += 1,
            Status::BadRequest => self.rejected_bad_request += 1,
        }
    }
}

/// Per-connection raw observations, merged into the final summary.
#[derive(Default)]
struct ConnOutcome {
    summary: LoadSummary,
    rtts_s: Vec<f64>,
}

/// Runs the configured load and returns the merged summary.
///
/// Deterministic given (config, server behavior): connection `i` derives
/// its RNG from `seed` and `i`, so schedules and payloads replay exactly.
#[must_use]
pub fn run_load(config: &LoadConfig) -> LoadSummary {
    let start = Instant::now();
    let outcomes: Vec<ConnOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.connections.max(1))
            .map(|i| scope.spawn(move || run_connection(config, i as u64)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });

    let mut merged = LoadSummary::default();
    let mut rtts: Vec<f64> = Vec::new();
    for outcome in outcomes {
        let s = outcome.summary;
        merged.sent += s.sent;
        merged.ok += s.ok;
        merged.rejected_queue_full += s.rejected_queue_full;
        merged.rejected_deadline_infeasible += s.rejected_deadline_infeasible;
        merged.rejected_shutting_down += s.rejected_shutting_down;
        merged.rejected_unknown_model += s.rejected_unknown_model;
        merged.rejected_bad_request += s.rejected_bad_request;
        merged.missing += s.missing;
        merged.protocol_errors += s.protocol_errors;
        merged.io_errors += s.io_errors;
        merged.deadline_hits += s.deadline_hits;
        rtts.extend(outcome.rtts_s);
    }
    rtts.sort_by(|a, b| a.partial_cmp(b).expect("finite RTTs"));
    let pct = |q: f64| -> f64 {
        if rtts.is_empty() {
            0.0
        } else {
            rtts[((rtts.len() as f64 - 1.0) * q).round() as usize]
        }
    };
    merged.rtt_p50_s = pct(0.50);
    merged.rtt_p95_s = pct(0.95);
    merged.rtt_p99_s = pct(0.99);
    merged.elapsed_s = start.elapsed().as_secs_f64();
    merged.throughput_rps = merged.ok as f64 / merged.elapsed_s.max(1e-9);
    merged
}

fn build_request(config: &LoadConfig, id: u64, rng: &mut ChaCha8Rng) -> RequestFrame {
    let elements = config.shape.elements();
    let data: Vec<u8> = (0..elements)
        .map(|_| rng.gen_range(0..=255u16) as u8)
        .collect();
    RequestFrame {
        id,
        deadline_us: config.deadline_us,
        model: config.model.clone(),
        channels: config.shape.channels as u16,
        height: config.shape.height as u16,
        width: config.shape.width as u16,
        data,
    }
}

/// Derives connection `conn`'s RNG from the run seed — the same
/// index-mixing idiom the DES arrival generator uses per device.
fn conn_rng(seed: u64, conn: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed ^ 0xC0DE_F00D ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn run_connection(config: &LoadConfig, conn_idx: u64) -> ConnOutcome {
    let mut outcome = ConnOutcome::default();
    let Ok(client) = ProtoClient::connect(config.addr) else {
        outcome.summary.io_errors += 1;
        return outcome;
    };
    match config.mode {
        LoadMode::Closed { requests } => {
            closed_loop(config, conn_idx, client, requests, &mut outcome);
        }
        LoadMode::Open {
            rate_fps,
            duration_s,
        } => open_loop(config, conn_idx, client, rate_fps, duration_s, &mut outcome),
    }
    outcome
}

fn closed_loop(
    config: &LoadConfig,
    conn_idx: u64,
    mut client: ProtoClient,
    requests: u64,
    outcome: &mut ConnOutcome,
) {
    let mut rng = conn_rng(config.seed, conn_idx);
    client
        .set_read_timeout(Some(config.recv_grace.max(Duration::from_millis(1))))
        .ok();
    for seq in 0..requests {
        let id = conn_idx << 32 | seq;
        let request = build_request(config, id, &mut rng);
        let sent_at = Instant::now();
        if client.send(&request).is_err() {
            outcome.summary.io_errors += 1;
            return;
        }
        outcome.summary.sent += 1;
        // Block until this request's response arrives or the grace window
        // expires; a timeout is a missing response, not an error.
        match client.recv_id(id, config.recv_grace) {
            Ok(Some(response)) => {
                settle(config, outcome, &response, sent_at.elapsed().as_secs_f64());
            }
            Ok(None) => outcome.summary.missing += 1,
            Err(ClientError::Closed) => {
                outcome.summary.missing += 1;
                return;
            }
            Err(e) if e.is_protocol() => {
                outcome.summary.protocol_errors += 1;
                outcome.summary.missing += 1;
                return;
            }
            Err(_) => {
                outcome.summary.io_errors += 1;
                outcome.summary.missing += 1;
                return;
            }
        }
    }
}

fn open_loop(
    config: &LoadConfig,
    conn_idx: u64,
    mut client: ProtoClient,
    rate_fps: f64,
    duration_s: f64,
    outcome: &mut ConnOutcome,
) {
    let mut rng = conn_rng(config.seed, conn_idx);
    client.set_read_timeout(Some(Duration::from_millis(2))).ok();
    let per_conn_fps = (rate_fps / config.connections.max(1) as f64).max(1e-3);
    let gap_s = 1.0 / per_conn_fps;
    let started = Instant::now();
    let mut next_send_s = 0.0f64;
    let mut in_flight: HashMap<u64, Instant> = HashMap::new();
    let mut seq = 0u64;
    let mut dead = false;

    // One thread per connection: interleave timed sends with short
    // read-polls; after the send window, linger for the grace period to
    // collect stragglers.
    loop {
        let now_s = started.elapsed().as_secs_f64();
        let sending = now_s < duration_s && !dead;
        if sending && now_s >= next_send_s {
            let id = conn_idx << 32 | seq;
            seq += 1;
            let request = build_request(config, id, &mut rng);
            let sent_at = Instant::now();
            if client.send(&request).is_err() {
                outcome.summary.io_errors += 1;
                dead = true;
            } else {
                outcome.summary.sent += 1;
                in_flight.insert(id, sent_at);
                next_send_s += gap_s * rng.gen_range(1.0 - GAP_JITTER..=1.0 + GAP_JITTER);
            }
            continue;
        }
        if !sending
            && (in_flight.is_empty() || now_s > duration_s + config.recv_grace.as_secs_f64())
        {
            break;
        }
        match client.try_recv() {
            Ok(Some(response)) => {
                let rtt = in_flight
                    .remove(&response.id)
                    .map_or(0.0, |t| t.elapsed().as_secs_f64());
                settle(config, outcome, &response, rtt);
            }
            Ok(None) => {}
            Err(ClientError::Closed) => break,
            Err(e) if e.is_protocol() => {
                // The stream is unsynchronized; nothing further can be
                // correlated, so drop the connection.
                outcome.summary.protocol_errors += 1;
                break;
            }
            Err(_) => {
                outcome.summary.io_errors += 1;
                break;
            }
        }
    }
    outcome.summary.missing += in_flight.len() as u64;
}

fn settle(
    config: &LoadConfig,
    outcome: &mut ConnOutcome,
    response: &adaflow_proto::ResponseFrame,
    rtt_s: f64,
) {
    outcome.summary.classify(response.status);
    if response.status == Status::Ok {
        outcome.rtts_s.push(rtt_s);
        let within =
            config.deadline_us == 0 || u64::from(response.latency_us) <= config.deadline_us;
        outcome.summary.deadline_hits += u64::from(within);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_covers_every_status() {
        let mut s = LoadSummary::default();
        for status in Status::ALL {
            s.classify(status);
        }
        assert_eq!(s.ok, 1);
        assert_eq!(s.rejected(), 5);
    }

    #[test]
    fn retryable_accounting_matches_status_contract() {
        let s = LoadSummary {
            rejected_queue_full: 3,
            rejected_shutting_down: 2,
            rejected_deadline_infeasible: 7,
            rejected_bad_request: 1,
            ..LoadSummary::default()
        };
        // Exactly the `Status::is_retryable` subset counts.
        assert_eq!(s.rejected_retryable(), 5);
        assert_eq!(s.rejected(), 13);
    }

    #[test]
    fn hit_pct_counts_sheds_as_misses() {
        let s = LoadSummary {
            sent: 10,
            ok: 6,
            deadline_hits: 5,
            rejected_queue_full: 4,
            ..LoadSummary::default()
        };
        assert!((s.hit_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn seeded_payloads_replay() {
        let mut a = conn_rng(42, 3);
        let mut b = conn_rng(42, 3);
        let xs: Vec<u16> = (0..32).map(|_| a.gen_range(0..=255u16)).collect();
        let ys: Vec<u16> = (0..32).map(|_| b.gen_range(0..=255u16)).collect();
        assert_eq!(xs, ys);
        let mut c = conn_rng(42, 4);
        let zs: Vec<u16> = (0..32).map(|_| c.gen_range(0..=255u16)).collect();
        assert_ne!(xs, zs, "different connections see different payloads");
    }
}
