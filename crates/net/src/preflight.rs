//! Startup verification gate — the live counterpart of the debug-build
//! engine gates.
//!
//! Before `serve-live` opens a socket it runs the full `adaflow-verify`
//! graph lint **and** the serving-config lint, merges the reports, and
//! refuses to serve when any Error-level diagnostic fired. The DES will
//! happily simulate a broken model; a live endpoint answering real
//! traffic with it is an outage, so the gate is hard.

use adaflow_model::CnnGraph;
use adaflow_serve::ServeConfig;
use adaflow_verify::{LintConfig, Report, Verifier};
use std::fmt;

/// The gate refused to serve.
#[derive(Debug)]
pub struct PreflightError {
    /// Error-level diagnostics fired.
    pub errors: usize,
    /// The full merged report (graph + serving config), for printing.
    pub report: Report,
}

impl fmt::Display for PreflightError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "preflight failed: {} error-level diagnostic(s); refusing to serve\n{}",
            self.errors, self.report
        )
    }
}

impl std::error::Error for PreflightError {}

/// Lints `graph` and `serve` under `lint`, returning the merged report if
/// it is serve-clean.
///
/// `nominal_fps` is the expected arrival rate and `worst_stall_s` the
/// worst switch stall — both feed the serving-config rules (SV001/SV002)
/// exactly as the simulation's config validation does.
///
/// # Errors
///
/// [`PreflightError`] carrying the merged report when any Error-level
/// diagnostic fired.
pub fn preflight(
    graph: &CnnGraph,
    serve: &ServeConfig,
    nominal_fps: f64,
    worst_stall_s: f64,
    lint: &LintConfig,
) -> Result<Report, PreflightError> {
    let mut report = Verifier::new().with_config(lint.clone()).verify(graph);
    report.merge(serve.validate(nominal_fps, worst_stall_s, lint.clone()));
    if report.has_errors() {
        Err(PreflightError {
            errors: report.count(adaflow_verify::Severity::Error),
            report,
        })
    } else {
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaflow_model::{topology, QuantSpec};

    fn graph() -> CnnGraph {
        topology::tiny(QuantSpec::w2a2(), 10).expect("builds")
    }

    #[test]
    fn clean_model_passes() {
        let report = preflight(
            &graph(),
            &ServeConfig::default(),
            100.0,
            0.0,
            &LintConfig::default(),
        )
        .expect("clean");
        assert!(!report.has_errors());
    }

    #[test]
    fn denied_code_blocks_serving() {
        // Max-wait over half the budget fires SV001 at Warn; denying the
        // code escalates it to Error and the gate must refuse.
        let config = ServeConfig {
            deadline_s: 0.25,
            max_wait_s: 0.15,
            ..ServeConfig::default()
        };
        assert!(
            preflight(&graph(), &config, 100.0, 0.0, &LintConfig::default()).is_ok(),
            "warn alone does not block"
        );
        let lint = LintConfig {
            allow: Default::default(),
            deny: LintConfig::parse_codes("SV001"),
        };
        let err =
            preflight(&graph(), &config, 100.0, 0.0, &lint).expect_err("denied code must block");
        assert!(err.errors > 0);
        assert!(err.report.fired("SV001"));
        let text = err.to_string();
        assert!(text.contains("refusing to serve"), "{text}");
    }

    #[test]
    fn infeasible_serve_config_blocks() {
        // Max-wait above the whole deadline budget guarantees misses:
        // SV001 fires at Error severity without any deny needed.
        let config = ServeConfig {
            deadline_s: 0.01,
            max_wait_s: 0.5,
            ..ServeConfig::default()
        };
        assert!(preflight(&graph(), &config, 100.0, 0.0, &LintConfig::default()).is_err());
    }
}
