//! Wall-clock time as the live counterpart of the simulation clock.
//!
//! The whole telemetry pipeline (events, span trees, windowed metrics,
//! SLO burn rates) thinks in `f64` seconds on a monotone axis. In the DES
//! that axis is simulated time starting at zero; live, it is seconds since
//! the server's epoch [`Instant`]. Using "seconds since server start"
//! rather than Unix time keeps the numbers small (full `f64` precision on
//! microsecond deltas) and makes live exports directly comparable with
//! simulated ones.

use std::time::Instant;

/// A shared epoch translating [`Instant`]s into telemetry seconds.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// Starts the clock: `now_s()` is 0.0 at this instant.
    #[must_use]
    pub fn start() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }

    /// Seconds elapsed since the epoch.
    #[must_use]
    pub fn now_s(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Translates an arbitrary instant (e.g. captured on another thread)
    /// into seconds on this clock's axis.
    #[must_use]
    pub fn at_s(&self, instant: Instant) -> f64 {
        instant.duration_since(self.epoch).as_secs_f64()
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone_and_starts_near_zero() {
        let clock = WallClock::start();
        let a = clock.now_s();
        let b = clock.now_s();
        assert!(a >= 0.0);
        assert!(b >= a);
        assert!(a < 1.0, "epoch is 'now', not Unix time");
    }

    #[test]
    fn at_s_translates_instants() {
        let clock = WallClock::start();
        let mark = Instant::now();
        assert!(clock.at_s(mark) >= 0.0);
        assert!(clock.at_s(mark) <= clock.now_s());
    }
}
