//! # adaflow-net — the live TCP serving front-end
//!
//! A std-only threaded TCP server that graduates the serving stack from
//! discrete-event simulation to real sockets. The wire layer
//! ([`adaflow_proto`]) is new; the brains are reused wholesale from the
//! simulation band:
//!
//! * admission — the same generic `AdmissionQueue` + `OverflowPolicy` the
//!   DES runs, queueing decoded wire requests instead of synthetic ones;
//! * batching — one engine thread closes dynamic batches under the DES
//!   rules (close at `max_batch`, or when the oldest request has waited
//!   `max_wait_s`, never while the accelerator is busy);
//! * execution — real `adaflow-nn` packed kernels through `BatchRunner`,
//!   one scratch per worker;
//! * accounting — wall-clock seconds feed the same `DeviceStats`,
//!   `CompletedRequest` and `ServeSummary` types the DES produces, so live
//!   and simulated numbers land in identical fields;
//! * telemetry — per-request span trees and serving events flow into the
//!   existing trace/metrics/SLO pipeline unchanged.
//!
//! The module split mirrors the serving crate: [`server`] is the listener
//! plus engine thread, [`loadgen`] the seeded closed/open-loop client,
//! [`preflight`] the verifier gate run before the socket opens, and
//! [`http`] a minimal Prometheus `/metrics` endpoint.
//!
//! Graceful shutdown is a first-class contract: in-flight batches complete
//! and answer `Ok`, queued-but-unserved requests are drained with
//! `ShuttingDown` responses (no silently closed connections), the listener
//! closes, and every worker joins before [`server::LiveServer::run`]
//! returns — enforced structurally with scoped threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod http;
pub mod loadgen;
pub mod preflight;
pub mod server;

pub use clock::WallClock;
pub use http::MetricsEndpoint;
pub use loadgen::{run_load, LoadConfig, LoadMode, LoadSummary};
pub use preflight::{preflight, PreflightError};
pub use server::{LiveConfig, LiveReport, LiveServer, NetError, RejectCounts, ServerHandle};
