//! The live TCP server: listener, per-connection readers, and one engine
//! thread that batches and executes requests on the real inference engine.
//!
//! ## Threading model
//!
//! * **accept loop** (the thread that called [`LiveServer::run`]) — a
//!   nonblocking `accept` poll that spawns one reader per connection and
//!   checks the shutdown flag every [`LiveConfig::poll_interval`];
//! * **reader threads** (one per connection) — blocking reads with a short
//!   timeout feed an incremental `FrameReader`; decoded requests go through
//!   admission under the shared core lock; protocol violations drop the
//!   connection (the proto layer's errors are sticky by design);
//! * **engine thread** (exactly one) — owns batch close decisions and
//!   execution, mirroring the DES single-accelerator semantics: a batch
//!   closes when it reaches `max_batch` or its oldest request has waited
//!   `max_wait_s`, and never while the engine is busy (the thread is the
//!   engine). Within a batch, `BatchRunner` fans work across workers with
//!   one scratch each.
//!
//! All threads live inside one `std::thread::scope`, so [`LiveServer::run`]
//! returning *proves* every worker joined — the no-leak half of the
//! graceful-shutdown contract. The other half: in-flight batches complete
//! and answer `Ok`, queued-but-unserved requests are drained with
//! `ShuttingDown` responses, and post-shutdown arrivals are rejected with
//! the same code.

use crate::clock::WallClock;
use adaflow_model::CnnGraph;
use adaflow_nn::{Activations, BatchRunner, Engine, NnError};
use adaflow_proto::{Frame, FrameReader, RequestFrame, ResponseFrame, Status};
use adaflow_serve::queue::Arriving;
use adaflow_serve::{
    emit_request_trace, AdmissionQueue, CompletedRequest, DeviceStats, ServeConfig, ServeSummary,
};
use adaflow_telemetry::{EventKind, LogHistogram, SinkHandle};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use thiserror::Error;

/// Errors surfaced by the live server.
#[derive(Debug, Error)]
pub enum NetError {
    /// Socket-level failure (bind, accept, warmup I/O).
    #[error("network error: {0}")]
    Io(#[from] std::io::Error),
    /// The inference engine could not be built or warmed up.
    #[error("engine error: {0}")]
    Engine(#[from] NnError),
}

/// Configuration of one live server.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// The shared serving knobs (deadline, queue capacity, batch shape,
    /// overflow policy) — the *same* struct the DES runs, so a simulated
    /// configuration transfers verbatim.
    pub serve: ServeConfig,
    /// Model id clients must name; empty accepts any id.
    pub model_id: String,
    /// Worker threads for `BatchRunner` (0 = auto).
    pub threads: usize,
    /// Nominal TOP-1 accuracy of the serving model, percent (feeds the
    /// summary's `mean_accuracy_pct` like the DES policy does).
    pub accuracy_pct: f64,
    /// Per-connection blocking-read timeout; bounds reader shutdown
    /// latency.
    pub read_timeout: Duration,
    /// Accept-loop and engine-idle poll period; bounds shutdown latency.
    pub poll_interval: Duration,
    /// Warmup inferences used to measure the single-inference service
    /// floor for deadline-infeasibility rejection.
    pub warmup_iters: usize,
}

impl Default for LiveConfig {
    fn default() -> Self {
        Self {
            serve: ServeConfig::default(),
            model_id: String::new(),
            threads: 0,
            accuracy_pct: 0.0,
            read_timeout: Duration::from_millis(25),
            poll_interval: Duration::from_millis(5),
            warmup_iters: 3,
        }
    }
}

/// Machine-readable reject tallies, by reason code.
///
/// `queue_full`, `deadline_infeasible` and `shutting_down` are load sheds
/// and also counted in the summary's `shed` (conservation holds over
/// them); `unknown_model` and `bad_request` are client errors rejected
/// before admission and tallied only here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RejectCounts {
    /// Queue at capacity (includes displaced victims under shed policies).
    pub queue_full: u64,
    /// Deadline budget below the measured single-inference floor.
    pub deadline_infeasible: u64,
    /// Arrived or still queued while the server was draining.
    pub shutting_down: u64,
    /// Named a model this server is not serving.
    pub unknown_model: u64,
    /// Structurally valid frame with unusable semantics (shape mismatch).
    pub bad_request: u64,
}

impl RejectCounts {
    /// Total rejects across every reason.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.queue_full
            + self.deadline_infeasible
            + self.shutting_down
            + self.unknown_model
            + self.bad_request
    }
}

/// What one live run did, in DES-comparable terms plus wall-clock facts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LiveReport {
    /// The same summary type the DES produces — field-for-field
    /// comparable with simulated runs in EXPERIMENTS.md.
    pub summary: ServeSummary,
    /// Reject tallies by machine-readable reason.
    pub rejects: RejectCounts,
    /// Wall-clock duration of the run, bind to joined, seconds.
    pub duration_s: f64,
    /// Connections accepted.
    pub connections: u64,
    /// Connections dropped for protocol violations.
    pub protocol_errors: u64,
    /// Responses that could not be written (client gone).
    pub send_errors: u64,
    /// Measured single-inference service floor, seconds.
    pub min_service_s: f64,
    /// Requests served per wall-clock second.
    pub throughput_rps: f64,
}

/// One admitted request waiting for a batch slot.
struct Pending {
    /// Server-assigned monotonic id — doubles as the telemetry trace id.
    trace_id: u64,
    /// Client-chosen id echoed in the response.
    client_id: u64,
    arrival_s: f64,
    /// Absolute latency budget, seconds from arrival.
    budget_s: f64,
    input: Activations,
    conn: Arc<Conn>,
}

impl Arriving for Pending {
    fn arrival_s(&self) -> f64 {
        self.arrival_s
    }
}

/// The write half of a connection, shared by reader and engine threads.
struct Conn {
    stream: Mutex<TcpStream>,
}

impl Conn {
    fn send(&self, frame: &ResponseFrame) -> std::io::Result<()> {
        let bytes = adaflow_proto::encode_frame(&Frame::Response(frame.clone()));
        let mut stream = self.stream.lock().expect("conn lock poisoned");
        stream.write_all(&bytes)
    }
}

fn reject_response(client_id: u64, status: Status) -> ResponseFrame {
    ResponseFrame {
        id: client_id,
        status,
        label: 0,
        queue_us: 0,
        service_us: 0,
        latency_us: 0,
    }
}

fn to_us(seconds: f64) -> u32 {
    let us = seconds * 1e6;
    if us >= f64::from(u32::MAX) {
        u32::MAX
    } else {
        us.max(0.0) as u32
    }
}

/// Mutable serving state shared by readers and the engine thread.
struct Core {
    queue: AdmissionQueue<Pending>,
    stats: DeviceStats,
    latency: LogHistogram,
    rejects: RejectCounts,
    next_trace_id: u64,
    draining: bool,
}

struct SharedState {
    core: Mutex<Core>,
    /// Signalled on enqueue and on shutdown; the engine waits on it.
    work: Condvar,
    shutdown: AtomicBool,
    connections: AtomicU64,
    protocol_errors: AtomicU64,
    send_errors: AtomicU64,
    clock: WallClock,
    sink: SinkHandle,
    config: LiveConfig,
    /// Measured single-inference floor; written once during warmup before
    /// any reader thread exists.
    min_service_s: Mutex<f64>,
}

/// A cloneable remote control for a running server.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<SharedState>,
}

impl ServerHandle {
    /// Initiates graceful shutdown: stop accepting, finish the in-flight
    /// batch, drain the queue with `ShuttingDown` responses, join all
    /// workers. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work.notify_all();
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

/// A bound-but-not-yet-serving live server.
pub struct LiveServer<'g> {
    listener: TcpListener,
    graph: &'g CnnGraph,
    shared: Arc<SharedState>,
}

impl<'g> LiveServer<'g> {
    /// Binds the listener (use port 0 for an ephemeral port) and prepares
    /// shared state. No thread is spawned until [`run`](Self::run).
    ///
    /// # Errors
    ///
    /// I/O errors from binding.
    pub fn bind(
        addr: impl ToSocketAddrs,
        graph: &'g CnnGraph,
        config: LiveConfig,
        sink: SinkHandle,
    ) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let core = Core {
            queue: AdmissionQueue::new(config.serve.queue_capacity, config.serve.overflow),
            stats: DeviceStats::default(),
            latency: LogHistogram::latency_s(),
            rejects: RejectCounts::default(),
            next_trace_id: 0,
            draining: false,
        };
        let shared = Arc::new(SharedState {
            core: Mutex::new(core),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            send_errors: AtomicU64::new(0),
            clock: WallClock::start(),
            sink,
            config,
            min_service_s: Mutex::new(0.0),
        });
        Ok(Self {
            listener,
            graph,
            shared,
        })
    }

    /// The bound address (interesting when binding port 0).
    ///
    /// # Errors
    ///
    /// I/O errors from the socket query.
    pub fn local_addr(&self) -> Result<SocketAddr, NetError> {
        Ok(self.listener.local_addr()?)
    }

    /// A remote control usable from other threads.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: self.shared.clone(),
        }
    }

    /// Serves until [`ServerHandle::shutdown`] is called, then drains and
    /// returns the run report. Consumes the server; when this returns,
    /// every worker thread has joined and the listener is closed.
    ///
    /// # Errors
    ///
    /// Engine construction/warmup failures. Per-connection I/O problems
    /// are not errors — they are counted in the report.
    pub fn run(self) -> Result<LiveReport, NetError> {
        let engine = Engine::new(self.graph)?;
        let shape = self.graph.input_shape();

        // Warmup: measure the single-inference floor used for
        // deadline-infeasibility rejection (and to prime lazy init paths).
        let mut floor = f64::INFINITY;
        let mut scratch = engine.scratch();
        let zero = Activations::from_vec(shape, vec![0; shape.elements()]);
        for _ in 0..self.shared.config.warmup_iters.max(1) {
            let t0 = Instant::now();
            engine.run_with_scratch(&zero, &mut scratch)?;
            floor = floor.min(t0.elapsed().as_secs_f64());
        }
        *self.shared.min_service_s.lock().expect("floor lock") = floor;

        let runner = BatchRunner::new(engine).with_threads(self.shared.config.threads);
        let model_name = self.graph.name().to_string();
        let shared = &self.shared;

        std::thread::scope(|scope| {
            scope.spawn(|| engine_loop(shared, &runner, &model_name));

            // Accept loop on the calling thread.
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        shared.connections.fetch_add(1, Ordering::Relaxed);
                        scope.spawn(move || reader_loop(shared, stream, shape.elements()));
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(shared.config.poll_interval);
                    }
                    Err(_) => break,
                }
            }
            // Scope exit joins the engine thread (which drains the queue
            // once the flag is up) and every reader (bounded by the read
            // timeout) — no worker can outlive this function.
        });
        drop(self.listener);

        let duration_s = self.shared.clock.now_s();
        let core = self.shared.core.lock().expect("core lock poisoned");
        debug_assert_eq!(
            core.stats.arrived,
            core.stats.completed + core.stats.shed,
            "live conservation"
        );
        let summary = ServeSummary::from_device("live", &core.stats, &core.latency);
        Ok(LiveReport {
            rejects: core.rejects,
            duration_s,
            connections: self.shared.connections.load(Ordering::Relaxed),
            protocol_errors: self.shared.protocol_errors.load(Ordering::Relaxed),
            send_errors: self.shared.send_errors.load(Ordering::Relaxed),
            min_service_s: floor,
            throughput_rps: summary.completed / duration_s.max(1e-9),
            summary,
        })
    }
}

/// Sends `frame` on `conn`, counting (not propagating) failures.
fn send_counted(shared: &SharedState, conn: &Conn, frame: &ResponseFrame) {
    if conn.send(frame).is_err() {
        shared.send_errors.fetch_add(1, Ordering::Relaxed);
    }
}

fn reader_loop(shared: &SharedState, stream: TcpStream, expected_elements: usize) {
    if stream
        .set_read_timeout(Some(shared.config.read_timeout))
        .is_err()
    {
        return;
    }
    stream.set_nodelay(true).ok();
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let conn = Arc::new(Conn {
        stream: Mutex::new(write_half),
    });
    let mut stream = stream;
    let mut frames = FrameReader::new();
    let mut buf = [0u8; 16 * 1024];
    'conn: loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                frames.feed(&buf[..n]);
                loop {
                    match frames.next_frame() {
                        Ok(Some(Frame::Request(request))) => {
                            admit(shared, &conn, request, expected_elements);
                        }
                        Ok(Some(Frame::Response(_))) => {
                            // Clients don't send responses; the stream is
                            // not speaking our protocol.
                            shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            break 'conn;
                        }
                        Ok(None) => break,
                        Err(_) => {
                            shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            break 'conn;
                        }
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
}

/// Validates one decoded request and offers it to the admission queue.
fn admit(shared: &SharedState, conn: &Arc<Conn>, request: RequestFrame, expected_elements: usize) {
    let config = &shared.config;
    if !config.model_id.is_empty() && request.model != config.model_id {
        let mut core = shared.core.lock().expect("core lock poisoned");
        core.rejects.unknown_model += 1;
        drop(core);
        send_counted(
            shared,
            conn,
            &reject_response(request.id, Status::UnknownModel),
        );
        return;
    }
    let elements =
        usize::from(request.channels) * usize::from(request.height) * usize::from(request.width);
    if elements != expected_elements {
        let mut core = shared.core.lock().expect("core lock poisoned");
        core.rejects.bad_request += 1;
        drop(core);
        send_counted(
            shared,
            conn,
            &reject_response(request.id, Status::BadRequest),
        );
        return;
    }
    let budget_s = if request.deadline_us == 0 {
        config.serve.deadline_s
    } else {
        request.deadline_us as f64 / 1e6
    };
    let now = shared.clock.now_s();
    let floor = *shared.min_service_s.lock().expect("floor lock");
    if budget_s < floor {
        let mut core = shared.core.lock().expect("core lock poisoned");
        core.stats.arrived += 1;
        core.stats.shed += 1;
        core.rejects.deadline_infeasible += 1;
        let trace_id = core.next_trace_id;
        core.next_trace_id += 1;
        let depth = core.queue.len() as u64;
        drop(core);
        shared.sink.emit(
            now,
            EventKind::RequestShed {
                id: trace_id,
                reason: "deadline-infeasible".to_string(),
                queue_depth: depth,
            },
        );
        send_counted(
            shared,
            conn,
            &reject_response(request.id, Status::DeadlineInfeasible),
        );
        return;
    }

    let mut responses: Vec<(Arc<Conn>, ResponseFrame)> = Vec::new();
    {
        let mut core = shared.core.lock().expect("core lock poisoned");
        core.stats.arrived += 1;
        let trace_id = core.next_trace_id;
        core.next_trace_id += 1;
        if core.draining || shared.shutdown.load(Ordering::SeqCst) {
            core.stats.shed += 1;
            core.rejects.shutting_down += 1;
            let depth = core.queue.len() as u64;
            drop(core);
            shared.sink.emit(
                now,
                EventKind::RequestShed {
                    id: trace_id,
                    reason: "shutting-down".to_string(),
                    queue_depth: depth,
                },
            );
            send_counted(
                shared,
                conn,
                &reject_response(request.id, Status::ShuttingDown),
            );
            return;
        }
        let pending = Pending {
            trace_id,
            client_id: request.id,
            arrival_s: now,
            budget_s,
            input: Activations::from_vec(
                adaflow_model::TensorShape::new(
                    usize::from(request.channels),
                    usize::from(request.height),
                    usize::from(request.width),
                ),
                request.data,
            ),
            conn: conn.clone(),
        };
        let policy = core.queue.policy();
        match core.queue.offer(pending) {
            adaflow_serve::Admission::Enqueued { depth } => {
                shared.sink.emit(
                    now,
                    EventKind::RequestEnqueued {
                        id: trace_id,
                        device: 0,
                        queue_depth: depth,
                    },
                );
                shared.work.notify_all();
            }
            adaflow_serve::Admission::Rejected => {
                core.stats.shed += 1;
                core.rejects.queue_full += 1;
                let depth = core.queue.len() as u64;
                shared.sink.emit(
                    now,
                    EventKind::RequestShed {
                        id: trace_id,
                        reason: policy.shed_reason().to_string(),
                        queue_depth: depth,
                    },
                );
                responses.push((conn.clone(), reject_response(request.id, Status::QueueFull)));
            }
            adaflow_serve::Admission::Displaced { victim, depth } => {
                core.stats.shed += 1;
                core.rejects.queue_full += 1;
                shared.sink.emit(
                    now,
                    EventKind::RequestShed {
                        id: victim.trace_id,
                        reason: policy.shed_reason().to_string(),
                        queue_depth: depth,
                    },
                );
                shared.sink.emit(
                    now,
                    EventKind::RequestEnqueued {
                        id: trace_id,
                        device: 0,
                        queue_depth: depth,
                    },
                );
                responses.push((
                    victim.conn.clone(),
                    reject_response(victim.client_id, Status::QueueFull),
                ));
                shared.work.notify_all();
            }
        }
    }
    for (target, frame) in responses {
        send_counted(shared, &target, &frame);
    }
}

/// What the engine thread decided to do with the lock held.
enum EngineStep {
    /// Nothing due yet; the wait already happened inside the lock.
    Idle,
    /// Close and execute this batch (closed at `close_s`, oldest arrival
    /// `oldest_s`).
    Execute {
        batch: Vec<Pending>,
        close_s: f64,
        oldest_s: f64,
    },
    /// Shutdown: these queued requests will never be served.
    Drain(Vec<Pending>),
    Exit,
}

fn engine_loop(shared: &SharedState, runner: &BatchRunner<'_>, model_name: &str) {
    let serve = &shared.config.serve;
    loop {
        let step = {
            let mut core = shared.core.lock().expect("core lock poisoned");
            if shared.shutdown.load(Ordering::SeqCst) {
                core.draining = true;
                let leftovers = core.queue.take_batch(usize::MAX);
                if leftovers.is_empty() {
                    EngineStep::Exit
                } else {
                    EngineStep::Drain(leftovers)
                }
            } else if core.queue.is_empty() {
                drop(
                    shared
                        .work
                        .wait_timeout(core, shared.config.poll_interval)
                        .expect("core lock poisoned"),
                );
                EngineStep::Idle
            } else {
                let now = shared.clock.now_s();
                let oldest_s = core.queue.oldest_arrival_s().expect("nonempty queue");
                let due_s = oldest_s + serve.max_wait_s;
                if core.queue.len() >= serve.max_batch || now >= due_s {
                    let batch = core.queue.take_batch(serve.max_batch);
                    let close_s = shared.clock.now_s();
                    core.stats.batches += 1;
                    core.stats.batched_requests += batch.len() as u64;
                    EngineStep::Execute {
                        batch,
                        close_s,
                        oldest_s,
                    }
                } else {
                    let wait = (due_s - now).clamp(0.0, 0.05);
                    drop(
                        shared
                            .work
                            .wait_timeout(core, Duration::from_secs_f64(wait))
                            .expect("core lock poisoned"),
                    );
                    EngineStep::Idle
                }
            }
        };
        match step {
            EngineStep::Idle => {}
            EngineStep::Exit => break,
            EngineStep::Drain(leftovers) => {
                let now = shared.clock.now_s();
                let mut core = shared.core.lock().expect("core lock poisoned");
                core.stats.shed += leftovers.len() as u64;
                core.rejects.shutting_down += leftovers.len() as u64;
                drop(core);
                for (i, pending) in leftovers.iter().enumerate() {
                    shared.sink.emit(
                        now,
                        EventKind::RequestShed {
                            id: pending.trace_id,
                            reason: "shutting-down".to_string(),
                            queue_depth: (leftovers.len() - 1 - i) as u64,
                        },
                    );
                    send_counted(
                        shared,
                        &pending.conn,
                        &reject_response(pending.client_id, Status::ShuttingDown),
                    );
                }
                // Loop again: new arrivals racing the drain get rejected
                // at admission; exit once the queue stays empty.
            }
            EngineStep::Execute {
                batch,
                close_s,
                oldest_s,
            } => {
                shared.sink.emit(
                    close_s,
                    EventKind::BatchClosed {
                        size: batch.len() as u64,
                        oldest_wait_s: close_s - oldest_s,
                        model: model_name.to_string(),
                    },
                );
                execute_batch(shared, runner, &batch, close_s);
            }
        }
    }
}

/// Runs one closed batch on the engine and settles every member.
fn execute_batch(shared: &SharedState, runner: &BatchRunner<'_>, batch: &[Pending], close_s: f64) {
    let inputs: Vec<Activations> = batch.iter().map(|p| p.input.clone()).collect();
    let start_s = shared.clock.now_s();
    let results = runner.run_full(&inputs);
    let done_s = shared.clock.now_s();
    match results {
        Ok(results) => {
            let service_s = done_s - start_s;
            let mut responses: VecDeque<(Arc<Conn>, ResponseFrame)> =
                VecDeque::with_capacity(batch.len());
            {
                let mut core = shared.core.lock().expect("core lock poisoned");
                core.stats.busy_service_s += service_s;
                for (pending, result) in batch.iter().zip(&results) {
                    let queue_wait_s = (close_s - pending.arrival_s).max(0.0);
                    let batch_wait_s = (start_s - close_s).max(0.0);
                    let latency_s = (done_s - pending.arrival_s).max(0.0);
                    let deadline_met = latency_s <= pending.budget_s;
                    core.stats.completed += 1;
                    core.stats.deadline_hits += u64::from(deadline_met);
                    core.stats.queue_wait_sum_s += queue_wait_s;
                    core.stats.batch_wait_sum_s += batch_wait_s;
                    core.stats.service_sum_s += service_s;
                    core.stats.latency_sum_s += latency_s;
                    core.stats.accuracy_sum_pct += shared.config.accuracy_pct;
                    core.latency.record(latency_s);
                    let done = CompletedRequest {
                        id: pending.trace_id,
                        device: 0,
                        arrival_s: pending.arrival_s,
                        queue_wait_s,
                        batch_wait_s,
                        stall_s: 0.0,
                        service_s,
                        latency_s,
                        deadline_met,
                    };
                    shared.sink.emit(
                        done_s,
                        EventKind::RequestCompleted {
                            id: pending.trace_id,
                            latency_s,
                            deadline_met,
                        },
                    );
                    emit_request_trace(&shared.sink, &done, 0, false);
                    responses.push_back((
                        pending.conn.clone(),
                        ResponseFrame {
                            id: pending.client_id,
                            status: Status::Ok,
                            label: result.label.min(usize::from(u16::MAX)) as u16,
                            queue_us: to_us(queue_wait_s),
                            service_us: to_us(service_s),
                            latency_us: to_us(latency_s),
                        },
                    ));
                }
            }
            for (conn, frame) in responses {
                send_counted(shared, &conn, &frame);
            }
        }
        Err(_) => {
            // Inputs were shape-validated at admission, so an engine error
            // here is exceptional; answer the whole batch as BadRequest so
            // no client hangs, and keep conservation (count as shed).
            let mut core = shared.core.lock().expect("core lock poisoned");
            core.stats.shed += batch.len() as u64;
            core.rejects.bad_request += batch.len() as u64;
            drop(core);
            for pending in batch {
                send_counted(
                    shared,
                    &pending.conn,
                    &reject_response(pending.client_id, Status::BadRequest),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_us_saturates_and_clamps() {
        assert_eq!(to_us(-1.0), 0);
        assert_eq!(to_us(0.5), 500_000);
        assert_eq!(to_us(1e9), u32::MAX);
    }

    #[test]
    fn reject_counts_total() {
        let r = RejectCounts {
            queue_full: 1,
            deadline_infeasible: 2,
            shutting_down: 3,
            unknown_model: 4,
            bad_request: 5,
        };
        assert_eq!(r.total(), 15);
    }
}
