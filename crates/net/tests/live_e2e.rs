//! End-to-end tests over real localhost sockets: the full
//! client → protocol → admission → batcher → engine → response path,
//! graceful-shutdown semantics, and machine-readable reject reasons.
//!
//! Every test binds an ephemeral port (`127.0.0.1:0`) and runs the server
//! inside `std::thread::scope`, so a returning test *proves* every server
//! worker joined — the no-leak assertion is structural, not sampled.

use adaflow_model::{topology, QuantSpec};
use adaflow_net::{LiveConfig, LiveReport, LiveServer, LoadConfig, LoadMode, NetError};
use adaflow_proto::{
    decode_frame, encode_frame, Frame, FrameReader, RequestFrame, ResponseFrame, Status,
};
use adaflow_serve::ServeConfig;
use adaflow_telemetry::{EventKind, SinkHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn tiny_graph() -> adaflow_model::CnnGraph {
    topology::tiny(QuantSpec::w2a2(), 10).expect("builds")
}

fn request(id: u64, shape: adaflow_model::TensorShape, deadline_us: u64) -> Vec<u8> {
    encode_frame(&Frame::Request(RequestFrame {
        id,
        deadline_us,
        model: String::new(),
        channels: shape.channels as u16,
        height: shape.height as u16,
        width: shape.width as u16,
        data: (0..shape.elements()).map(|i| i as u8).collect(),
    }))
}

/// Reads exactly one response frame (blocking, generous timeout).
fn read_response(stream: &mut TcpStream, frames: &mut FrameReader) -> ResponseFrame {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut buf = [0u8; 4096];
    loop {
        if let Some(Frame::Response(r)) = frames.next_frame().expect("valid stream") {
            return r;
        }
        let n = stream.read(&mut buf).expect("read");
        assert!(n > 0, "server closed before responding");
        frames.feed(&buf[..n]);
    }
}

/// Runs `client` against a server with `config`, returning (report, client
/// result). Shutdown is triggered after the client body finishes.
fn with_server<T>(
    config: LiveConfig,
    sink: SinkHandle,
    client: impl FnOnce(SocketAddr) -> T,
) -> (LiveReport, T) {
    let graph = tiny_graph();
    let server = LiveServer::bind("127.0.0.1:0", &graph, config, sink).expect("binds");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    std::thread::scope(|scope| {
        let server_thread = scope.spawn(|| server.run());
        let out = client(addr);
        handle.shutdown();
        let report: Result<LiveReport, NetError> = server_thread.join().expect("no panic");
        (report.expect("serves"), out)
    })
}

#[test]
fn closed_loop_requests_are_served_end_to_end() {
    let shape = tiny_graph().input_shape();
    let config = LiveConfig {
        serve: ServeConfig {
            max_batch: 4,
            max_wait_s: 0.001,
            ..ServeConfig::default()
        },
        ..LiveConfig::default()
    };
    let (sink, recorder) = SinkHandle::recorder(65_536);
    let (report, summary) = with_server(config, sink, |addr| {
        let mut lc = LoadConfig::closed(addr, "", shape, 20);
        lc.deadline_us = 5_000_000; // generous: asserting delivery, not speed
        adaflow_net::loadgen::run_load(&lc)
    });

    assert_eq!(summary.sent, 20);
    assert_eq!(summary.ok, 20, "{summary:?}");
    assert_eq!(summary.protocol_errors, 0);
    assert_eq!(summary.missing, 0);
    assert_eq!(summary.deadline_hits, 20);
    assert!(summary.rtt_p50_s > 0.0);

    assert_eq!(report.summary.completed, 20.0);
    assert!(report.summary.conservation_holds(), "{:?}", report.summary);
    assert_eq!(report.protocol_errors, 0);
    assert_eq!(report.send_errors, 0);
    assert!(report.min_service_s > 0.0);
    assert_eq!(report.connections, 1);

    // Telemetry flowed into the PR 6 pipeline: completions and span trees.
    let events = recorder.drain();
    let completions = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::RequestCompleted { .. }))
        .count();
    assert_eq!(completions, 20);
    let forest = adaflow_telemetry::TraceForest::from_events(&events);
    assert_eq!(forest.len(), 20, "one span tree per completion");
    forest.validate().expect("well-formed live traces");
}

#[test]
fn graceful_shutdown_answers_queued_requests_with_shutting_down() {
    let shape = tiny_graph().input_shape();
    // A batch shape that never closes on its own: the 5 queued requests
    // are deterministically still queued when shutdown arrives.
    let config = LiveConfig {
        serve: ServeConfig {
            max_batch: 16,
            max_wait_s: 60.0,
            queue_capacity: 8,
            ..ServeConfig::default()
        },
        ..LiveConfig::default()
    };
    let (report, statuses) = with_server(config, SinkHandle::null(), |addr| {
        let mut stream = TcpStream::connect(addr).expect("connects");
        for id in 0..5 {
            stream.write_all(&request(id, shape, 0)).expect("writes");
        }
        // Let the reader admit all five before we pull the plug.
        std::thread::sleep(Duration::from_millis(300));
        stream
    });
    // Shutdown has been requested; the drain must answer all five.
    let mut stream = statuses;
    let mut frames = FrameReader::new();
    let mut got: Vec<Status> = (0..5)
        .map(|_| read_response(&mut stream, &mut frames).status)
        .collect();
    got.sort_by_key(|s| s.code());
    assert_eq!(got, vec![Status::ShuttingDown; 5]);

    assert_eq!(report.rejects.shutting_down, 5);
    assert_eq!(report.summary.shed, 5.0);
    assert_eq!(report.summary.completed, 0.0);
    assert!(report.summary.conservation_holds());
}

#[test]
fn listener_closes_after_shutdown() {
    let config = LiveConfig::default();
    let (report, addr) = with_server(config, SinkHandle::null(), |addr| addr);
    assert_eq!(report.connections, 0);
    // The listener socket is gone; fresh connections must fail (allow a
    // moment for the OS to tear the socket down).
    let mut refused = false;
    for _ in 0..50 {
        match TcpStream::connect_timeout(&addr, Duration::from_millis(100)) {
            Err(_) => {
                refused = true;
                break;
            }
            Ok(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    assert!(refused, "listener still accepting after shutdown");
}

#[test]
fn reject_reasons_are_machine_readable() {
    let shape = tiny_graph().input_shape();
    // Queue of 2 that never closes a batch: requests 0-1 enqueue, 2-4 are
    // queue-full, and the drain answers 0-1 with shutting-down.
    let config = LiveConfig {
        serve: ServeConfig {
            max_batch: 16,
            max_wait_s: 60.0,
            queue_capacity: 2,
            ..ServeConfig::default()
        },
        model_id: "tiny-w2a2".to_string(),
        ..LiveConfig::default()
    };
    let (report, (mut stream, mut frames)) = with_server(config, SinkHandle::null(), |addr| {
        let mut stream = TcpStream::connect(addr).expect("connects");
        let mut frames = FrameReader::new();

        // Infeasible deadline: 1 µs is below any measured service floor.
        stream
            .write_all(&encode_frame(&Frame::Request(RequestFrame {
                id: 100,
                deadline_us: 1,
                model: "tiny-w2a2".to_string(),
                channels: shape.channels as u16,
                height: shape.height as u16,
                width: shape.width as u16,
                data: vec![0; shape.elements()],
            })))
            .expect("writes");
        let r = read_response(&mut stream, &mut frames);
        assert_eq!(r.status, Status::DeadlineInfeasible);
        assert_eq!(r.id, 100);

        // Unknown model id.
        stream
            .write_all(&encode_frame(&Frame::Request(RequestFrame {
                id: 101,
                deadline_us: 0,
                model: "cnv-w2a2".to_string(),
                channels: shape.channels as u16,
                height: shape.height as u16,
                width: shape.width as u16,
                data: vec![0; shape.elements()],
            })))
            .expect("writes");
        assert_eq!(
            read_response(&mut stream, &mut frames).status,
            Status::UnknownModel
        );

        // Shape mismatch → bad request.
        stream
            .write_all(&encode_frame(&Frame::Request(RequestFrame {
                id: 102,
                deadline_us: 0,
                model: "tiny-w2a2".to_string(),
                channels: 1,
                height: 2,
                width: 2,
                data: vec![0; 4],
            })))
            .expect("writes");
        assert_eq!(
            read_response(&mut stream, &mut frames).status,
            Status::BadRequest
        );

        // Fill the queue (2 slots), then overflow it three times.
        for id in 0..5 {
            let mut req = request(id, shape, 0);
            // request() uses empty model id; this server pins one.
            let Frame::Request(mut rf) = decode_frame(&req).expect("own frame").0 else {
                unreachable!()
            };
            rf.model = "tiny-w2a2".to_string();
            req = encode_frame(&Frame::Request(rf));
            stream.write_all(&req).expect("writes");
        }
        let mut statuses: Vec<Status> = (0..3)
            .map(|_| read_response(&mut stream, &mut frames).status)
            .collect();
        statuses.sort_by_key(|s| s.code());
        assert_eq!(statuses, vec![Status::QueueFull; 3]);
        (stream, frames)
    });
    // Drain answers for the two enqueued requests.
    let mut tail: Vec<Status> = (0..2)
        .map(|_| read_response(&mut stream, &mut frames).status)
        .collect();
    tail.sort_by_key(|s| s.code());
    assert_eq!(tail, vec![Status::ShuttingDown; 2]);

    assert_eq!(report.rejects.deadline_infeasible, 1);
    assert_eq!(report.rejects.unknown_model, 1);
    assert_eq!(report.rejects.bad_request, 1);
    assert_eq!(report.rejects.queue_full, 3);
    assert_eq!(report.rejects.shutting_down, 2);
    // Conservation over the shed classes that entered the stats.
    assert!(report.summary.conservation_holds(), "{:?}", report.summary);
    assert_eq!(report.summary.arrived, 6.0, "1 infeasible + 5 offered");
    assert_eq!(report.summary.shed, 6.0);
}

#[test]
fn pipelined_connection_gets_id_matched_responses() {
    let shape = tiny_graph().input_shape();
    let config = LiveConfig {
        serve: ServeConfig {
            max_batch: 4,
            max_wait_s: 0.001,
            queue_capacity: 16,
            ..ServeConfig::default()
        },
        ..LiveConfig::default()
    };
    let (report, responses) = with_server(config, SinkHandle::null(), |addr| {
        let mut client = adaflow_proto::ProtoClient::connect(addr).expect("connects");
        client
            .set_read_timeout(Some(Duration::from_millis(50)))
            .expect("timeout");
        // Three outstanding requests on ONE connection, no reads between
        // the sends — the protocol's ids must carry the correlation.
        let ids = [901u64, 902, 903];
        for &id in &ids {
            let Frame::Request(rf) = decode_frame(&request(id, shape, 0)).expect("own frame").0
            else {
                unreachable!()
            };
            client.send(&rf).expect("sends");
        }
        // Claim out of send order to prove correlation is by id, not
        // arrival position.
        let mut got = Vec::new();
        for &id in &[903u64, 901, 902] {
            let r = client
                .recv_id(id, Duration::from_secs(10))
                .expect("no error")
                .expect("response arrives");
            assert_eq!(r.id, id);
            got.push(r);
        }
        assert_eq!(client.sent(), 3);
        assert_eq!(client.received(), 3);
        assert_eq!(client.stashed(), 0, "exactly 3 responses, none extra");
        got
    });
    assert_eq!(responses.len(), 3);
    assert!(responses.iter().all(|r| r.status == Status::Ok));
    assert_eq!(report.summary.completed, 3.0);
    assert!(report.summary.conservation_holds());
}

#[test]
fn protocol_garbage_drops_the_connection() {
    let (report, eof) = with_server(LiveConfig::default(), SinkHandle::null(), |addr| {
        let mut stream = TcpStream::connect(addr).expect("connects");
        stream.write_all(&[0xFF; 64]).expect("writes");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let mut buf = [0u8; 64];
        matches!(stream.read(&mut buf), Ok(0))
    });
    assert!(eof, "server must close a non-protocol connection");
    assert_eq!(report.protocol_errors, 1);
    assert_eq!(
        report.summary.arrived, 0.0,
        "garbage never reaches admission"
    );
}

#[test]
fn open_loop_every_request_gets_exactly_one_answer() {
    let shape = tiny_graph().input_shape();
    let config = LiveConfig {
        serve: ServeConfig {
            max_batch: 8,
            max_wait_s: 0.002,
            queue_capacity: 64,
            ..ServeConfig::default()
        },
        ..LiveConfig::default()
    };
    let (report, summary) = with_server(config, SinkHandle::null(), |addr| {
        let lc = LoadConfig {
            addr,
            model: String::new(),
            shape,
            connections: 3,
            mode: LoadMode::Open {
                rate_fps: 300.0,
                duration_s: 1.0,
            },
            deadline_us: 0,
            seed: 11,
            recv_grace: Duration::from_secs(5),
        };
        adaflow_net::loadgen::run_load(&lc)
    });
    assert!(summary.sent > 50, "open loop actually offered load");
    assert_eq!(summary.protocol_errors, 0);
    assert_eq!(summary.io_errors, 0);
    // The one-answer-per-request invariant: nothing lost, nothing extra.
    assert_eq!(
        summary.ok + summary.rejected() + summary.missing,
        summary.sent,
        "{summary:?}"
    );
    assert_eq!(summary.missing, 0, "server answered everything it was sent");
    assert!(report.summary.conservation_holds());
    assert_eq!(report.summary.arrived, summary.sent as f64);
    assert_eq!(report.connections, 3);
}
