//! Workload generation.
//!
//! The paper's setting: 20 IoT devices produce inference requests at the
//! real-time rate of 30 FPS (600 FPS nominal), with the incoming rate
//! deviating over time due to FPS fluctuation, network congestion and node
//! churn. Two scenarios are evaluated (§V):
//!
//! * **Scenario 1** (stable): ±30 % uniform deviation redrawn every 5 s;
//! * **Scenario 2** (unpredictable): ±70 % deviation every 500 ms;
//! * **Scenario 1+2** (shifting): Scenario 1 until 15 s, Scenario 2 after.
//!
//! Workloads are piecewise-constant FPS levels, deterministic in the seed.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One piecewise-constant workload segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSegment {
    /// Segment start time in seconds.
    pub start_s: f64,
    /// Segment length in seconds.
    pub duration_s: f64,
    /// Incoming frame rate during the segment.
    pub fps: f64,
}

/// The paper's evaluation scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scenario {
    /// Scenario 1: 30 % deviation every 5 s.
    Stable,
    /// Scenario 2: 70 % deviation every 500 ms.
    Unpredictable,
    /// Scenario 1+2: stable until 15 s, unpredictable afterwards.
    Shifting,
    /// A custom piecewise-random scenario.
    Custom {
        /// Fractional deviation amplitude (0.3 = ±30 %).
        deviation: f64,
        /// Redraw period in seconds.
        period_s: f64,
    },
    /// Bursty on/off traffic: alternating heavy (nominal × (1 + surge)) and
    /// light (nominal × idle) phases of the given period — cameras waking
    /// on motion events.
    Bursty {
        /// Relative surge above nominal during the on-phase.
        surge: f64,
        /// Fraction of nominal during the off-phase.
        idle: f64,
        /// Phase length in seconds.
        period_s: f64,
    },
}

impl Scenario {
    /// `(deviation, period)` active at time `t`.
    #[must_use]
    pub fn params_at(&self, t: f64) -> (f64, f64) {
        match self {
            Scenario::Stable => (0.3, 5.0),
            Scenario::Unpredictable => (0.7, 0.5),
            Scenario::Shifting => {
                if t < 15.0 {
                    (0.3, 5.0)
                } else {
                    (0.7, 0.5)
                }
            }
            Scenario::Custom {
                deviation,
                period_s,
            } => (*deviation, *period_s),
            Scenario::Bursty { period_s, .. } => (0.0, *period_s),
        }
    }

    /// Display name matching the paper's terminology.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::Stable => "scenario-1",
            Scenario::Unpredictable => "scenario-2",
            Scenario::Shifting => "scenario-1+2",
            Scenario::Custom { .. } => "custom",
            Scenario::Bursty { .. } => "bursty",
        }
    }
}

/// Full workload specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of IoT devices.
    pub devices: usize,
    /// Per-device nominal frame rate.
    pub fps_per_device: f64,
    /// Evaluation length in seconds.
    pub duration_s: f64,
    /// The deviation scenario.
    pub scenario: Scenario,
}

impl WorkloadSpec {
    /// The paper's setup: 20 devices × 30 FPS, 25 s runs.
    #[must_use]
    pub fn paper_edge(scenario: Scenario) -> Self {
        Self {
            devices: 20,
            fps_per_device: 30.0,
            duration_s: 25.0,
            scenario,
        }
    }

    /// Nominal (undeviated) offered rate.
    #[must_use]
    pub fn nominal_fps(&self) -> f64 {
        self.devices as f64 * self.fps_per_device
    }

    /// Generates the piecewise-constant workload for one seeded run.
    ///
    /// Segments cover `[0, duration_s)` contiguously; each level is
    /// `nominal × (1 + U(−dev, +dev))`, floored at zero.
    #[must_use]
    pub fn generate(&self, seed: u64) -> Vec<WorkloadSegment> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xED6E_10AD);
        let nominal = self.nominal_fps();
        let mut segments = Vec::new();
        let mut t = 0.0;
        let mut phase = 0usize;
        while t < self.duration_s {
            let (dev, period) = self.scenario.params_at(t);
            let len = period.min(self.duration_s - t);
            let factor = match self.scenario {
                Scenario::Bursty { surge, idle, .. } => {
                    // Deterministic alternation with a small random jitter.
                    let jitter = 1.0 + rng.gen_range(-0.05..=0.05);
                    if phase.is_multiple_of(2) {
                        (1.0 + surge) * jitter
                    } else {
                        idle * jitter
                    }
                }
                _ => 1.0 + rng.gen_range(-dev..=dev),
            };
            segments.push(WorkloadSegment {
                start_s: t,
                duration_s: len,
                fps: (nominal * factor).max(0.0),
            });
            t += len;
            phase += 1;
        }
        segments
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_setup_nominal_600fps() {
        let spec = WorkloadSpec::paper_edge(Scenario::Stable);
        assert_eq!(spec.nominal_fps(), 600.0);
        assert_eq!(spec.duration_s, 25.0);
    }

    #[test]
    fn stable_scenario_has_five_second_segments() {
        let spec = WorkloadSpec::paper_edge(Scenario::Stable);
        let segs = spec.generate(1);
        assert_eq!(segs.len(), 5);
        assert!(segs.iter().all(|s| (s.duration_s - 5.0).abs() < 1e-9));
    }

    #[test]
    fn unpredictable_scenario_has_50_segments() {
        let spec = WorkloadSpec::paper_edge(Scenario::Unpredictable);
        let segs = spec.generate(1);
        assert_eq!(segs.len(), 50);
    }

    #[test]
    fn shifting_scenario_changes_cadence_at_15s() {
        let spec = WorkloadSpec::paper_edge(Scenario::Shifting);
        let segs = spec.generate(1);
        let before: Vec<_> = segs.iter().filter(|s| s.start_s < 15.0).collect();
        let after: Vec<_> = segs.iter().filter(|s| s.start_s >= 15.0).collect();
        assert_eq!(before.len(), 3);
        assert_eq!(after.len(), 20);
        assert!(after.iter().all(|s| (s.duration_s - 0.5).abs() < 1e-9));
    }

    #[test]
    fn deviations_respect_amplitude() {
        let spec = WorkloadSpec::paper_edge(Scenario::Stable);
        for seed in 0..20 {
            for s in spec.generate(seed) {
                assert!(s.fps >= 600.0 * 0.7 - 1e-9 && s.fps <= 600.0 * 1.3 + 1e-9);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = WorkloadSpec::paper_edge(Scenario::Unpredictable);
        assert_eq!(spec.generate(7), spec.generate(7));
        assert_ne!(spec.generate(7), spec.generate(8));
    }

    #[test]
    fn segments_are_contiguous() {
        let spec = WorkloadSpec::paper_edge(Scenario::Shifting);
        let segs = spec.generate(3);
        let mut t = 0.0;
        for s in &segs {
            assert!((s.start_s - t).abs() < 1e-9);
            t += s.duration_s;
        }
        assert!((t - 25.0).abs() < 1e-9);
    }

    #[test]
    fn bursty_alternates_heavy_and_light() {
        let spec = WorkloadSpec {
            scenario: Scenario::Bursty {
                surge: 0.5,
                idle: 0.2,
                period_s: 2.5,
            },
            ..WorkloadSpec::paper_edge(Scenario::Stable)
        };
        let segments = spec.generate(4);
        assert_eq!(segments.len(), 10);
        for (i, s) in segments.iter().enumerate() {
            if i % 2 == 0 {
                assert!(s.fps > 600.0 * 1.4, "on-phase fps {}", s.fps);
            } else {
                assert!(s.fps < 600.0 * 0.3, "off-phase fps {}", s.fps);
            }
        }
    }

    #[test]
    fn generated_fps_never_negative_even_past_full_deviation() {
        // deviation > 1 can draw factors below zero; the clamp must floor
        // every segment at 0 FPS (a negative rate would drain queues in the
        // fluid simulator and corrupt arrival generation in the serve layer).
        let spec = WorkloadSpec {
            scenario: Scenario::Custom {
                deviation: 2.0,
                period_s: 0.5,
            },
            ..WorkloadSpec::paper_edge(Scenario::Stable)
        };
        let mut clamped = 0usize;
        for seed in 0..32 {
            for s in spec.generate(seed) {
                assert!(s.fps >= 0.0, "negative fps {} at seed {seed}", s.fps);
                if s.fps == 0.0 {
                    clamped += 1;
                }
            }
        }
        // With ±200 % deviation, some draws must actually hit the clamp,
        // otherwise this test exercises nothing.
        assert!(clamped > 0, "no segment hit the zero floor");
    }

    #[test]
    fn custom_scenario_params() {
        let sc = Scenario::Custom {
            deviation: 0.1,
            period_s: 2.0,
        };
        assert_eq!(sc.params_at(0.0), (0.1, 2.0));
        assert_eq!(sc.name(), "custom");
    }
}
