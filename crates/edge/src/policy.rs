//! Serving policies: how the Edge server reacts to workload changes.

use adaflow::{Library, RuntimeConfig, RuntimeManager, SwitchKind};
use adaflow_dataflow::AcceleratorKind;
use adaflow_hls::PowerModel;
use adaflow_telemetry::{EventKind, SinkHandle};
use std::time::Duration;

/// The serving state a policy establishes after a workload change.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingState {
    /// Serving throughput once the stall (if any) completes.
    pub throughput_fps: f64,
    /// Seconds of service suspension applying this state (reconfiguration
    /// or flexible weight reload).
    pub stall_s: f64,
    /// TOP-1 accuracy of the model now serving, percent.
    pub accuracy: f64,
    /// Power model of the loaded fabric.
    pub power: PowerModel,
    /// Activity factor of the loaded fabric (1.0 for fixed accelerators).
    pub activity: f64,
    /// Name of the loaded model.
    pub model: String,
    /// Loaded accelerator kind.
    pub accelerator: AcceleratorKind,
    /// Whether this change switched the CNN model.
    pub model_switched: bool,
    /// Whether this change reconfigured the FPGA.
    pub reconfigured: bool,
}

/// Emits the telemetry events implied by a freshly-established serving
/// state: a [`EventKind::ModelSwitch`] when the model changed, and a
/// [`EventKind::ReconfigStart`]/[`EventKind::ReconfigEnd`] pair spanning the
/// stall when the FPGA was reconfigured.
fn emit_switch_events(sink: &SinkHandle, now_s: f64, from: &str, state: &ServingState) {
    if !sink.enabled() {
        return;
    }
    if state.model_switched {
        sink.emit(
            now_s,
            EventKind::ModelSwitch {
                from: from.to_string(),
                to: state.model.clone(),
                flexible: !state.reconfigured
                    && state.accelerator == AcceleratorKind::FlexiblePruning,
            },
        );
    }
    if state.reconfigured {
        sink.emit(
            now_s,
            EventKind::ReconfigStart {
                model: state.model.clone(),
            },
        );
        sink.emit(
            now_s + state.stall_s,
            EventKind::ReconfigEnd {
                model: state.model.clone(),
                stall_s: state.stall_s,
            },
        );
    }
}

/// A serving policy driven by workload-change events.
pub trait ServerPolicy {
    /// Policy display name.
    fn name(&self) -> &str;

    /// Reacts to a workload estimate observed at `now_s`.
    fn on_workload_change(&mut self, now_s: f64, incoming_fps: f64) -> ServingState;
}

/// The static baseline: the original FINN accelerator, loaded once and
/// never changed.
#[derive(Debug, Clone)]
pub struct OriginalFinnPolicy<'l> {
    library: &'l Library,
    loaded: bool,
    sink: SinkHandle,
}

impl<'l> OriginalFinnPolicy<'l> {
    /// Creates the baseline policy over a library (uses only its baseline
    /// accelerator and unpruned accuracy).
    #[must_use]
    pub fn new(library: &'l Library) -> Self {
        Self {
            library,
            loaded: false,
            sink: SinkHandle::default(),
        }
    }

    /// Attaches a telemetry sink (the static baseline never switches, so it
    /// only ever emits the shared switch/reconfiguration events vacuously).
    #[must_use]
    pub fn with_sink(mut self, sink: SinkHandle) -> Self {
        self.sink = sink;
        self
    }
}

impl ServerPolicy for OriginalFinnPolicy<'_> {
    fn name(&self) -> &str {
        "original-finn"
    }

    fn on_workload_change(&mut self, now_s: f64, _incoming_fps: f64) -> ServingState {
        self.loaded = true;
        let baseline = &self.library.baseline;
        let state = ServingState {
            throughput_fps: baseline.throughput_fps,
            stall_s: 0.0, // assumed resident before the evaluation window
            accuracy: self.library.base_accuracy(),
            power: baseline.power,
            activity: 1.0,
            model: self.library.initial_model.clone(),
            accelerator: AcceleratorKind::Finn,
            model_switched: false,
            reconfigured: false,
        };
        emit_switch_events(&self.sink, now_s, &self.library.initial_model, &state);
        state
    }
}

/// The Fig. 1(b) policy: model switching restricted to fixed accelerators,
/// paying a configurable reconfiguration time per switch.
#[derive(Debug, Clone)]
pub struct PruningReconfPolicy<'l> {
    library: &'l Library,
    manager: RuntimeManager<'l>,
    reconfiguration_time: Duration,
    current: Option<usize>,
    sink: SinkHandle,
}

impl<'l> PruningReconfPolicy<'l> {
    /// Creates the policy with the paper's default 10 % accuracy threshold
    /// and an explicit reconfiguration time (0 ms models the ideal switch).
    #[must_use]
    pub fn new(library: &'l Library, reconfiguration_time: Duration) -> Self {
        Self {
            library,
            manager: RuntimeManager::new(library, RuntimeConfig::default()),
            reconfiguration_time,
            current: None,
            sink: SinkHandle::default(),
        }
    }

    /// Attaches a telemetry sink; model switches and their reconfiguration
    /// spans are emitted at decision time on the simulation clock.
    #[must_use]
    pub fn with_sink(mut self, sink: SinkHandle) -> Self {
        self.sink = sink;
        self
    }
}

impl ServerPolicy for PruningReconfPolicy<'_> {
    fn name(&self) -> &str {
        "pruning-reconf"
    }

    fn on_workload_change(&mut self, now_s: f64, incoming_fps: f64) -> ServingState {
        let idx = self
            .manager
            .select_model(incoming_fps, AcceleratorKind::FixedPruning);
        let entry = &self.library.entries()[idx];
        // The very first load is assumed resident (like the baseline);
        // subsequent switches pay the reconfiguration time and count.
        let switched = self.current.is_some() && self.current != Some(idx);
        let stall_s = if switched {
            self.reconfiguration_time.as_secs_f64()
        } else {
            0.0
        };
        let from = self.current.map_or_else(
            || entry.name.clone(),
            |i| self.library.entries()[i].name.clone(),
        );
        self.current = Some(idx);
        let state = ServingState {
            throughput_fps: entry.fixed.throughput_fps,
            stall_s,
            accuracy: entry.accuracy,
            power: entry.fixed.power,
            activity: 1.0,
            model: entry.name.clone(),
            accelerator: AcceleratorKind::FixedPruning,
            model_switched: switched,
            reconfigured: switched && stall_s > 0.0,
        };
        emit_switch_events(&self.sink, now_s, &from, &state);
        state
    }
}

/// The full AdaFlow policy: wraps the [`RuntimeManager`].
#[derive(Debug, Clone)]
pub struct AdaFlowPolicy<'l> {
    library: &'l Library,
    manager: RuntimeManager<'l>,
    first: bool,
    /// Scheduled accuracy-threshold changes `(time, points)`, sorted by
    /// time; applied before the decision at the first event at or past the
    /// scheduled instant (the paper's user-driven threshold events).
    threshold_schedule: Vec<(f64, f64)>,
    sink: SinkHandle,
}

impl<'l> AdaFlowPolicy<'l> {
    /// Creates the policy from a library and runtime configuration.
    #[must_use]
    pub fn new(library: &'l Library, config: RuntimeConfig) -> Self {
        Self {
            library,
            manager: RuntimeManager::new(library, config),
            first: true,
            threshold_schedule: Vec::new(),
            sink: SinkHandle::default(),
        }
    }

    /// Attaches a telemetry sink to both the policy (model-switch and
    /// reconfiguration-span events) and its [`RuntimeManager`]
    /// (`DecisionMade` events with stall accounting).
    #[must_use]
    pub fn with_sink(mut self, sink: SinkHandle) -> Self {
        self.manager = self.manager.with_sink(sink.clone());
        self.sink = sink;
        self
    }

    /// Schedules accuracy-threshold changes over the run: each `(t, points)`
    /// pair updates the manager's threshold at the first decision at or
    /// after `t`.
    #[must_use]
    pub fn with_threshold_schedule(mut self, mut schedule: Vec<(f64, f64)>) -> Self {
        schedule.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("times are finite"));
        self.threshold_schedule = schedule;
        self
    }

    /// Access to the underlying manager (e.g. to change the threshold
    /// mid-run).
    pub fn manager_mut(&mut self) -> &mut RuntimeManager<'l> {
        &mut self.manager
    }
}

impl ServerPolicy for AdaFlowPolicy<'_> {
    fn name(&self) -> &str {
        "adaflow"
    }

    fn on_workload_change(&mut self, now_s: f64, incoming_fps: f64) -> ServingState {
        while let Some(&(t, points)) = self.threshold_schedule.first() {
            if t <= now_s {
                self.manager.set_accuracy_threshold(points);
                self.threshold_schedule.remove(0);
            } else {
                break;
            }
        }
        let from = self
            .manager
            .current()
            .map(|(i, _)| self.library.entries()[i].name.clone());
        let decision = self.manager.decide(now_s, incoming_fps);
        let entry = &self.library.entries()[decision.entry_index];
        let (power, activity) = match decision.accelerator {
            AcceleratorKind::FlexiblePruning => {
                (self.library.flexible.power, entry.flexible_activity)
            }
            _ => (entry.fixed.power, 1.0),
        };
        // Like the baselines, the initial image is assumed resident when
        // the evaluation window opens.
        let stall_s = if self.first { 0.0 } else { decision.stall_s };
        let reconfigured = !self.first && decision.switch == SwitchKind::Reconfiguration;
        let model_switched = !self.first && decision.switch != SwitchKind::None;
        self.first = false;
        let state = ServingState {
            throughput_fps: decision.throughput_fps,
            stall_s,
            accuracy: decision.accuracy,
            power,
            activity,
            model: decision.model_name,
            accelerator: decision.accelerator,
            model_switched,
            reconfigured,
        };
        let from = from.unwrap_or_else(|| state.model.clone());
        emit_switch_events(&self.sink, now_s, &from, &state);
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaflow::LibraryGenerator;
    use adaflow_model::prelude::*;
    use adaflow_nn::DatasetKind;

    fn library() -> Library {
        LibraryGenerator::default_edge_setup()
            .generate(
                &topology::cnv_w2a2_cifar10().expect("builds"),
                DatasetKind::Cifar10,
            )
            .expect("generates")
    }

    #[test]
    fn finn_policy_is_static() {
        let lib = library();
        let mut p = OriginalFinnPolicy::new(&lib);
        let a = p.on_workload_change(0.0, 100.0);
        let b = p.on_workload_change(5.0, 1000.0);
        assert_eq!(a.throughput_fps, b.throughput_fps);
        assert_eq!(b.stall_s, 0.0);
        assert!(!b.model_switched);
        assert_eq!(a.accuracy, lib.base_accuracy());
    }

    #[test]
    fn reconf_policy_pays_for_switches() {
        let lib = library();
        let mut p = PruningReconfPolicy::new(&lib, Duration::from_millis(290));
        let base_fps = lib.unpruned().fixed.throughput_fps;
        let first = p.on_workload_change(0.0, 100.0);
        assert_eq!(first.stall_s, 0.0, "initial image resident");
        let up = p.on_workload_change(5.0, base_fps * 1.4);
        assert!(up.model_switched);
        assert!((up.stall_s - 0.29).abs() < 1e-9);
        let same = p.on_workload_change(10.0, base_fps * 1.35);
        assert!(!same.model_switched);
        assert_eq!(same.stall_s, 0.0);
    }

    #[test]
    fn adaflow_policy_uses_flexible_under_rapid_change() {
        let lib = library();
        let mut p = AdaFlowPolicy::new(&lib, RuntimeConfig::default());
        let base_fps = lib.unpruned().fixed.throughput_fps;
        p.on_workload_change(0.0, 100.0);
        // First switch establishes the cadence (fixed), second goes
        // flexible, third is a fast in-fabric switch.
        p.on_workload_change(0.4, base_fps * 1.4);
        let d = p.on_workload_change(0.8, 100.0);
        assert_eq!(d.accelerator, AcceleratorKind::FlexiblePruning);
        let d2 = p.on_workload_change(1.2, base_fps * 1.4);
        assert_eq!(d2.accelerator, AcceleratorKind::FlexiblePruning);
        assert!(d2.stall_s < 0.005, "flexible switch must be fast");
        assert!(d2.model_switched);
        assert!(!d2.reconfigured);
    }

    #[test]
    fn threshold_schedule_changes_selection_mid_run() {
        let lib = library();
        let base_fps = lib.unpruned().fixed.throughput_fps;
        let overload = base_fps * 1.4;
        // Tight threshold first (no model can match the overload), loosened
        // at t = 10: the policy must upgrade to a faster pruned model.
        let mut p = AdaFlowPolicy::new(
            &lib,
            RuntimeConfig {
                accuracy_threshold_points: 2.0,
                ..RuntimeConfig::default()
            },
        )
        .with_threshold_schedule(vec![(10.0, 15.0)]);
        let before = p.on_workload_change(0.0, overload);
        let after = p.on_workload_change(10.0, overload);
        assert!(after.throughput_fps > before.throughput_fps);
        assert!(after.accuracy < before.accuracy);
    }

    #[test]
    fn adaflow_first_load_is_free_like_baselines() {
        let lib = library();
        let mut p = AdaFlowPolicy::new(&lib, RuntimeConfig::default());
        let d = p.on_workload_change(0.0, 600.0);
        assert_eq!(d.stall_s, 0.0);
        assert!(!d.reconfigured);
    }

    #[test]
    fn flexible_power_uses_flexible_fabric() {
        let lib = library();
        let mut p = AdaFlowPolicy::new(&lib, RuntimeConfig::default());
        let base_fps = lib.unpruned().fixed.throughput_fps;
        p.on_workload_change(0.0, 100.0);
        p.on_workload_change(0.4, base_fps * 1.4);
        p.on_workload_change(0.8, 100.0);
        // Pruned model loaded on the flexible fabric.
        let d = p.on_workload_change(1.2, base_fps * 1.4);
        assert_eq!(d.accelerator, AcceleratorKind::FlexiblePruning);
        // Flexible fabric's peak dynamic power exceeds any fixed one's.
        assert!(
            d.power.peak_dynamic_w() > lib.baseline.power.peak_dynamic_w(),
            "flexible fabric should be the power-hungriest"
        );
        assert!(
            d.activity < 1.0,
            "pruned model leaves fabric partially idle"
        );
    }
}
