//! # adaflow-edge — Edge inference-serving simulation
//!
//! Reproduces the paper's evaluation environment (§V): an FPGA-equipped
//! Edge server receiving camera frames from 20 IoT devices at a nominal
//! 30 FPS each, under fluctuating workload scenarios, serving CNN
//! inferences through one of three policies:
//!
//! * **Original FINN** — the static baseline, synthesized once;
//! * **Pruning-Reconf** — model switching with fixed accelerators only,
//!   paying a configurable FPGA reconfiguration time per switch (the
//!   Fig. 1(b) motivation experiment);
//! * **AdaFlow** — the full Runtime Manager with fixed *and* flexible
//!   accelerators.
//!
//! The server is modelled as a fluid queue with a finite frame buffer:
//! frames arrive at the workload rate, are served at the loaded
//! accelerator's throughput, queue while the buffer has room and are lost
//! beyond it; reconfiguration/switch stalls suspend service. Power is
//! integrated from the synthesized accelerators' power models with
//! duty-cycle and fabric-activity scaling, yielding the paper's metrics:
//! frame loss, QoE (accuracy × fraction of processed frames), average
//! power and power efficiency (inferences per joule).
//!
//! ## Quickstart
//!
//! ```no_run
//! use adaflow::prelude::*;
//! use adaflow_edge::prelude::*;
//! use adaflow_model::prelude::*;
//! use adaflow_nn::DatasetKind;
//!
//! let library = LibraryGenerator::default_edge_setup()
//!     .generate(&topology::cnv_w2a2_cifar10()?, DatasetKind::Cifar10)?;
//! let spec = WorkloadSpec::paper_edge(Scenario::Stable);
//! let metrics = Experiment::new(&library, spec)
//!     .runs(100)
//!     .run_adaflow(RuntimeConfig::default());
//! println!("frame loss: {:.2}%", metrics.frame_loss_pct);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod metrics;
pub mod monitor;
pub mod policy;
pub mod sim;
pub mod workload;

pub use experiment::Experiment;
pub use metrics::{trace_to_csv, RunMetrics, TracePoint};
pub use monitor::{FpsMonitor, MonitoredPolicy, RateMonitor};
pub use policy::{
    AdaFlowPolicy, OriginalFinnPolicy, PruningReconfPolicy, ServerPolicy, ServingState,
};
pub use sim::{EdgeSim, SimConfig};
pub use workload::{Scenario, WorkloadSegment, WorkloadSpec};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::experiment::Experiment;
    pub use crate::metrics::{trace_to_csv, RunMetrics, TracePoint};
    pub use crate::monitor::{FpsMonitor, MonitoredPolicy, RateMonitor};
    pub use crate::policy::{
        AdaFlowPolicy, OriginalFinnPolicy, PruningReconfPolicy, ServerPolicy, ServingState,
    };
    pub use crate::sim::{EdgeSim, SimConfig};
    pub use crate::workload::{Scenario, WorkloadSegment, WorkloadSpec};
}
