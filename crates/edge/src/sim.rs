//! The Edge server simulation: a fluid queue with finite buffer, service
//! stalls and power integration.

use crate::metrics::{RunMetrics, TracePoint};
use crate::policy::{ServerPolicy, ServingState};
use crate::workload::WorkloadSegment;
use adaflow_dataflow::AcceleratorKind;
use adaflow_telemetry::{EventKind, LogHistogram, SinkHandle};

/// Simulation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Frame buffer capacity in frames (requests queued beyond it are
    /// dropped). Defaults to 64 (~100 ms at the nominal 600 FPS).
    pub buffer_frames: f64,
    /// Integration / trace step in seconds.
    pub step_s: f64,
    /// Whether to record a trace (one [`TracePoint`] per step).
    pub record_trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            buffer_frames: 64.0,
            step_s: 0.01,
            record_trace: false,
        }
    }
}

/// The Edge serving simulator.
#[derive(Debug, Clone, Default)]
pub struct EdgeSim {
    config: SimConfig,
    sink: SinkHandle,
}

impl EdgeSim {
    /// Creates a simulator with the given configuration.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        Self {
            config,
            sink: SinkHandle::default(),
        }
    }

    /// Attaches a telemetry sink; the simulator emits frame-arrival,
    /// frame-drop, queue-depth and stall-span events stamped with the
    /// simulation clock. With the default [`SinkHandle::null`] the
    /// instrumentation reduces to a branch per step.
    #[must_use]
    pub fn with_sink(mut self, sink: SinkHandle) -> Self {
        self.sink = sink;
        self
    }

    /// Runs one serving simulation of `policy` against a piecewise-constant
    /// workload, returning metrics and (if enabled) the trace.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty or the configured step is not positive.
    #[must_use]
    pub fn run(
        &self,
        policy: &mut dyn ServerPolicy,
        segments: &[WorkloadSegment],
    ) -> (RunMetrics, Vec<TracePoint>) {
        assert!(!segments.is_empty(), "workload must have segments");
        assert!(self.config.step_s > 0.0, "step must be positive");
        let buffer = self.config.buffer_frames;

        let mut q = 0.0f64;
        let mut offered = 0.0f64;
        let mut processed = 0.0f64;
        let mut dropped = 0.0f64;
        let mut energy = 0.0f64;
        let mut queue_time_integral = 0.0f64; // frames x seconds
        let mut service_rate_integral = 0.0f64; // FPS x seconds (capacity)
        let mut qoe_num = 0.0f64; // accuracy-weighted processed frames
        let mut acc_max = f64::MIN;
        let mut acc_min_serving = f64::MAX;
        let mut switches = 0.0;
        let mut reconfigs = 0.0;
        let mut flex_switches = 0.0;
        let mut trace = Vec::new();
        let mut latency_hist = LogHistogram::latency_s();
        let telemetry = self.sink.enabled();

        let mut stall_until = 0.0f64;
        for segment in segments {
            let state: ServingState = policy.on_workload_change(segment.start_s, segment.fps);
            if state.model_switched {
                switches += 1.0;
            }
            if state.reconfigured {
                reconfigs += 1.0;
            }
            if state.model_switched
                && !state.reconfigured
                && state.accelerator == AcceleratorKind::FlexiblePruning
            {
                flex_switches += 1.0;
            }
            acc_max = acc_max.max(state.accuracy);
            if state.stall_s > 0.0 {
                stall_until = segment.start_s + state.stall_s;
                if telemetry {
                    self.sink.emit(
                        segment.start_s,
                        EventKind::SpanBegin {
                            name: "stall".to_string(),
                        },
                    );
                    self.sink.emit(
                        stall_until,
                        EventKind::SpanEnd {
                            name: "stall".to_string(),
                        },
                    );
                }
            }

            // Integrate the segment in fixed steps, with exact fluid
            // arithmetic inside each step.
            let end = segment.start_s + segment.duration_s;
            let mut t = segment.start_s;
            while t < end - 1e-12 {
                let dt = self.config.step_s.min(end - t);
                let lambda = segment.fps;
                // Service is suspended while the stall lasts; a stall
                // boundary inside the step is handled by splitting.
                let (dt_stalled, dt_active) = if t >= stall_until {
                    (0.0, dt)
                } else if t + dt <= stall_until {
                    (dt, 0.0)
                } else {
                    (stall_until - t, t + dt - stall_until)
                };

                for (phase_dt, mu) in [(dt_stalled, 0.0), (dt_active, state.throughput_fps)] {
                    if phase_dt <= 0.0 {
                        continue;
                    }
                    offered += lambda * phase_dt;
                    let (served, overflow, q1) = fluid_step(q, lambda, mu, phase_dt, buffer);
                    processed += served;
                    dropped += overflow;
                    queue_time_integral += 0.5 * (q + q1) * phase_dt;
                    service_rate_integral += mu * phase_dt;
                    if served > 0.0 && mu > 0.0 {
                        // Sojourn estimate for frames served in this phase:
                        // mean queueing delay at the phase's average depth
                        // plus one service time, weighted by frames served.
                        let sojourn_s = 0.5 * (q + q1) / mu + 1.0 / mu;
                        latency_hist.record_weighted(sojourn_s, served);
                    }
                    if telemetry {
                        self.sink.emit(
                            t,
                            EventKind::FrameArrived {
                                count: lambda * phase_dt,
                            },
                        );
                        if overflow > 1e-12 {
                            self.sink.emit(
                                t,
                                EventKind::FrameDropped {
                                    count: overflow,
                                    queue_frames: q1,
                                },
                            );
                        }
                    }
                    q = q1;
                    qoe_num += served * state.accuracy;
                    if served > 0.0 {
                        acc_min_serving = acc_min_serving.min(state.accuracy);
                    }
                    let duty = if mu > 0.0 {
                        (served / phase_dt / mu).min(1.0)
                    } else {
                        0.0
                    };
                    energy += state.power.power(duty, state.activity).total_w * phase_dt;
                }

                t += dt;
                if telemetry {
                    self.sink.emit(t, EventKind::QueueDepth { frames: q });
                }
                if self.config.record_trace {
                    let loss_so_far = dropped / offered.max(1e-12) * 100.0;
                    trace.push(TracePoint {
                        t_s: t,
                        workload_fps: lambda,
                        throughput_fps: if t < stall_until {
                            0.0
                        } else {
                            state.throughput_fps
                        },
                        queue_frames: q,
                        cumulative_loss_pct: loss_so_far,
                        cumulative_qoe_pct: qoe_num / offered.max(1e-12),
                        model: state.model.clone(),
                        accelerator: state.accelerator.short_name().to_string(),
                    });
                }
            }
        }

        // Frames still queued at the end of the window were not served.
        let lost = dropped + q;
        let duration: f64 = segments.iter().map(|s| s.duration_s).sum();
        let mean_queue = queue_time_integral / duration.max(1e-12);
        // Little's law: mean queueing delay = mean queue / throughput of
        // processed frames; plus one service time of the time-averaged
        // serving capacity.
        let processed_rate = processed / duration.max(1e-12);
        let mean_capacity = service_rate_integral / duration.max(1e-12);
        let mean_latency_s = if processed_rate > 0.0 && mean_capacity > 0.0 {
            mean_queue / processed_rate + 1.0 / mean_capacity
        } else {
            0.0
        };
        let metrics = RunMetrics {
            offered,
            processed,
            lost,
            frame_loss_pct: lost / offered.max(1e-12) * 100.0,
            qoe_pct: qoe_num / offered.max(1e-12),
            mean_accuracy_pct: qoe_num / processed.max(1e-12),
            max_accuracy_drop: if acc_min_serving <= acc_max {
                acc_max - acc_min_serving
            } else {
                0.0
            },
            avg_power_w: energy / duration.max(1e-12),
            energy_j: energy,
            inferences_per_joule: processed / energy.max(1e-12),
            model_switches: switches,
            reconfigurations: reconfigs,
            flexible_switches: flex_switches,
            mean_queue_frames: mean_queue,
            mean_latency_ms: mean_latency_s * 1e3,
            latency_p50_ms: latency_hist.p50() * 1e3,
            latency_p95_ms: latency_hist.p95() * 1e3,
            latency_p99_ms: latency_hist.p99() * 1e3,
        };
        (metrics, trace)
    }
}

/// Exact fluid-queue step: arrival rate `lambda`, service rate `mu`,
/// initial queue `q0`, horizon `dt`, buffer `b`.
///
/// Returns `(served, overflow, q1)`.
fn fluid_step(q0: f64, lambda: f64, mu: f64, dt: f64, b: f64) -> (f64, f64, f64) {
    if mu >= lambda {
        // Draining (or keeping up).
        let drain = mu - lambda;
        let t_empty = if drain > 0.0 {
            q0 / drain
        } else {
            f64::INFINITY
        };
        if dt <= t_empty {
            // Queue never empties: the server is saturated the whole step.
            (mu * dt, 0.0, q0 - drain * dt)
        } else {
            // Saturated until the queue empties, then serving at λ.
            let served = mu * t_empty + lambda * (dt - t_empty);
            (served, 0.0, 0.0)
        }
    } else {
        // Filling: served at μ throughout, queue grows to the buffer cap,
        // everything beyond overflows.
        let fill = lambda - mu;
        let t_full = (b - q0) / fill;
        if dt <= t_full {
            (mu * dt, 0.0, q0 + fill * dt)
        } else {
            (mu * dt, fill * (dt - t_full), b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ServingState;
    use adaflow_hls::{PowerModel, ResourceEstimate};

    /// A scripted test policy serving at a constant rate.
    struct ConstPolicy {
        fps: f64,
        stall_on_change: f64,
        last_fps: Option<f64>,
    }

    impl ConstPolicy {
        fn new(fps: f64) -> Self {
            Self {
                fps,
                stall_on_change: 0.0,
                last_fps: None,
            }
        }
    }

    impl ServerPolicy for ConstPolicy {
        fn name(&self) -> &str {
            "const"
        }

        fn on_workload_change(&mut self, _now: f64, incoming: f64) -> ServingState {
            let changed = self.last_fps.is_some_and(|f| (f - incoming).abs() > 1e-9);
            self.last_fps = Some(incoming);
            ServingState {
                throughput_fps: self.fps,
                stall_s: if changed { self.stall_on_change } else { 0.0 },
                accuracy: 80.0,
                power: PowerModel::new(ResourceEstimate {
                    lut: 50_000,
                    ff: 50_000,
                    bram36: 100,
                    dsp: 0,
                }),
                activity: 1.0,
                model: "const".into(),
                accelerator: adaflow_dataflow::AcceleratorKind::Finn,
                model_switched: changed,
                reconfigured: false,
            }
        }
    }

    fn one_segment(fps: f64, duration: f64) -> Vec<WorkloadSegment> {
        vec![WorkloadSegment {
            start_s: 0.0,
            duration_s: duration,
            fps,
        }]
    }

    #[test]
    fn underload_has_no_loss() {
        let sim = EdgeSim::default();
        let (m, _) = sim.run(&mut ConstPolicy::new(500.0), &one_segment(300.0, 10.0));
        assert!(m.frame_loss_pct < 0.01, "loss {}", m.frame_loss_pct);
        assert!((m.offered - 3000.0).abs() < 1.0);
        assert!((m.processed - m.offered).abs() < 1.0);
    }

    #[test]
    fn overload_loss_matches_rate_gap() {
        let sim = EdgeSim::default();
        // 600 in, 400 out over 10 s: loss → (600−400)/600 = 33 % minus the
        // buffered tail.
        let (m, _) = sim.run(&mut ConstPolicy::new(400.0), &one_segment(600.0, 10.0));
        assert!(
            (m.frame_loss_pct - 33.3).abs() < 1.0,
            "loss {}",
            m.frame_loss_pct
        );
    }

    #[test]
    fn qoe_is_accuracy_times_processed_fraction() {
        let sim = EdgeSim::default();
        let (m, _) = sim.run(&mut ConstPolicy::new(400.0), &one_segment(600.0, 10.0));
        let expect = 80.0 * m.processed / m.offered;
        assert!((m.qoe_pct - expect).abs() < 1e-6);
        assert!((m.mean_accuracy_pct - 80.0).abs() < 1e-9);
    }

    #[test]
    fn stall_causes_extra_loss() {
        let mut no_stall = ConstPolicy::new(700.0);
        let mut with_stall = ConstPolicy::new(700.0);
        with_stall.stall_on_change = 1.0;
        let segments = vec![
            WorkloadSegment {
                start_s: 0.0,
                duration_s: 5.0,
                fps: 600.0,
            },
            WorkloadSegment {
                start_s: 5.0,
                duration_s: 5.0,
                fps: 660.0,
            },
        ];
        let sim = EdgeSim::default();
        let (a, _) = sim.run(&mut no_stall, &segments);
        let (b, _) = sim.run(&mut with_stall, &segments);
        assert!(
            b.frame_loss_pct > a.frame_loss_pct + 3.0,
            "{} vs {}",
            b.frame_loss_pct,
            a.frame_loss_pct
        );
    }

    #[test]
    fn frame_conservation() {
        // offered = processed + dropped + final queue, in every regime.
        let sim = EdgeSim::default();
        for (mu, lambda) in [(400.0, 600.0), (700.0, 600.0), (600.0, 600.0)] {
            let (m, _) = sim.run(&mut ConstPolicy::new(mu), &one_segment(lambda, 7.0));
            let balance = m.processed + m.lost;
            assert!(
                (balance - m.offered).abs() < 1e-6,
                "conservation violated: {balance} vs {}",
                m.offered
            );
        }
    }

    #[test]
    fn energy_scales_with_duty() {
        let sim = EdgeSim::default();
        let (busy, _) = sim.run(&mut ConstPolicy::new(400.0), &one_segment(600.0, 10.0));
        let (idle, _) = sim.run(&mut ConstPolicy::new(400.0), &one_segment(100.0, 10.0));
        assert!(busy.avg_power_w > idle.avg_power_w);
        assert!(idle.avg_power_w > 0.5, "static floor present");
    }

    #[test]
    fn latency_reflects_queueing() {
        let sim = EdgeSim::default();
        // Saturated server: queue pinned at the buffer -> latency is about
        // buffer/throughput + service.
        let (hot, _) = sim.run(&mut ConstPolicy::new(400.0), &one_segment(600.0, 10.0));
        // Idle server: near-zero queue, latency ~ one service time (2.5 ms).
        let (cold, _) = sim.run(&mut ConstPolicy::new(400.0), &one_segment(100.0, 10.0));
        assert!(
            hot.mean_latency_ms > 100.0,
            "hot latency {}",
            hot.mean_latency_ms
        );
        assert!(
            cold.mean_latency_ms < 10.0,
            "cold latency {}",
            cold.mean_latency_ms
        );
        assert!(hot.mean_queue_frames > cold.mean_queue_frames);
    }

    #[test]
    fn trace_is_recorded_when_enabled() {
        let sim = EdgeSim::new(SimConfig {
            record_trace: true,
            ..SimConfig::default()
        });
        let (_, trace) = sim.run(&mut ConstPolicy::new(500.0), &one_segment(300.0, 1.0));
        assert_eq!(trace.len(), 100);
        assert!(trace.iter().all(|p| p.workload_fps == 300.0));
        assert!(trace.last().expect("nonempty").t_s <= 1.0 + 1e-9);
    }

    #[test]
    fn fluid_step_drains_exactly() {
        // q0=10, λ=0, μ=5 over 4 s: empties after 2 s, serves 10 frames.
        let (served, overflow, q1) = fluid_step(10.0, 0.0, 5.0, 4.0, 100.0);
        assert!((served - 10.0).abs() < 1e-12);
        assert_eq!(overflow, 0.0);
        assert_eq!(q1, 0.0);
    }

    #[test]
    fn fluid_step_overflows_exactly() {
        // q0=0, λ=10, μ=0, buffer 5 over 2 s: 5 buffered, 15 dropped.
        let (served, overflow, q1) = fluid_step(0.0, 10.0, 0.0, 2.0, 5.0);
        assert_eq!(served, 0.0);
        assert!((overflow - 15.0).abs() < 1e-12);
        assert_eq!(q1, 5.0);
    }
}
