//! Run metrics and traces.

use serde::{Deserialize, Serialize};

/// Aggregate metrics of one (or the mean of many) serving run(s).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Frames offered by the workload.
    pub offered: f64,
    /// Frames processed by the accelerator.
    pub processed: f64,
    /// Frames lost (buffer overflow or left queued at the end).
    pub lost: f64,
    /// Frame loss percentage (`lost / offered`).
    pub frame_loss_pct: f64,
    /// Quality of Experience: accuracy × percentage of processed frames
    /// (the paper's §V definition), in percent.
    pub qoe_pct: f64,
    /// Processing-weighted mean accuracy, percent.
    pub mean_accuracy_pct: f64,
    /// Largest accuracy drop versus the unpruned model observed while
    /// processing, percentage points.
    pub max_accuracy_drop: f64,
    /// Time-averaged board power, watts.
    pub avg_power_w: f64,
    /// Total energy over the run, joules.
    pub energy_j: f64,
    /// Power efficiency: processed inferences per joule.
    pub inferences_per_joule: f64,
    /// Number of CNN model switches performed.
    pub model_switches: f64,
    /// Number of FPGA reconfigurations performed.
    pub reconfigurations: f64,
    /// Number of fast (flexible) model switches performed.
    pub flexible_switches: f64,
    /// Time-averaged queue occupancy in frames.
    pub mean_queue_frames: f64,
    /// Mean sojourn time of a processed frame (queueing delay by Little's
    /// law plus one service time), milliseconds.
    pub mean_latency_ms: f64,
    /// Median frame sojourn time over the run, milliseconds (from the
    /// per-step latency histogram; 0 when nothing was processed).
    pub latency_p50_ms: f64,
    /// 95th-percentile frame sojourn time, milliseconds.
    pub latency_p95_ms: f64,
    /// 99th-percentile frame sojourn time, milliseconds.
    pub latency_p99_ms: f64,
}

impl RunMetrics {
    /// Element-wise mean of several runs, or `None` for an empty slice.
    #[must_use]
    pub fn mean(runs: &[RunMetrics]) -> Option<RunMetrics> {
        if runs.is_empty() {
            return None;
        }
        let n = runs.len() as f64;
        let mut m = RunMetrics::default();
        for r in runs {
            m.offered += r.offered;
            m.processed += r.processed;
            m.lost += r.lost;
            m.frame_loss_pct += r.frame_loss_pct;
            m.qoe_pct += r.qoe_pct;
            m.mean_accuracy_pct += r.mean_accuracy_pct;
            m.max_accuracy_drop = m.max_accuracy_drop.max(r.max_accuracy_drop);
            m.avg_power_w += r.avg_power_w;
            m.energy_j += r.energy_j;
            m.inferences_per_joule += r.inferences_per_joule;
            m.model_switches += r.model_switches;
            m.reconfigurations += r.reconfigurations;
            m.flexible_switches += r.flexible_switches;
            m.mean_queue_frames += r.mean_queue_frames;
            m.mean_latency_ms += r.mean_latency_ms;
            m.latency_p50_ms += r.latency_p50_ms;
            m.latency_p95_ms += r.latency_p95_ms;
            m.latency_p99_ms += r.latency_p99_ms;
        }
        m.offered /= n;
        m.processed /= n;
        m.lost /= n;
        m.frame_loss_pct /= n;
        m.qoe_pct /= n;
        m.mean_accuracy_pct /= n;
        m.avg_power_w /= n;
        m.energy_j /= n;
        m.inferences_per_joule /= n;
        m.model_switches /= n;
        m.reconfigurations /= n;
        m.flexible_switches /= n;
        m.mean_queue_frames /= n;
        m.mean_latency_ms /= n;
        m.latency_p50_ms /= n;
        m.latency_p95_ms /= n;
        m.latency_p99_ms /= n;
        Some(m)
    }
}

/// Renders a trace as CSV (header + one line per point), for plotting the
/// Fig. 1(b)/Fig. 6 curves with external tools.
#[must_use]
pub fn trace_to_csv(trace: &[TracePoint]) -> String {
    let mut out = String::from(
        "t_s,workload_fps,throughput_fps,queue_frames,cumulative_loss_pct,cumulative_qoe_pct,model,accelerator\n",
    );
    for p in trace {
        out.push_str(&format!(
            "{:.3},{:.2},{:.2},{:.2},{:.4},{:.4},{},{}\n",
            p.t_s,
            p.workload_fps,
            p.throughput_fps,
            p.queue_frames,
            p.cumulative_loss_pct,
            p.cumulative_qoe_pct,
            p.model,
            p.accelerator
        ));
    }
    out
}

/// One sampled point of a serving trace (for the Fig. 1(b)/Fig. 6 curves).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Sample time in seconds.
    pub t_s: f64,
    /// Incoming workload at this time, FPS.
    pub workload_fps: f64,
    /// Serving throughput (0 while stalled), FPS.
    pub throughput_fps: f64,
    /// Queue occupancy in frames.
    pub queue_frames: f64,
    /// Cumulative frame loss percentage up to this time.
    pub cumulative_loss_pct: f64,
    /// Cumulative QoE percentage up to this time.
    pub cumulative_qoe_pct: f64,
    /// Name of the model serving at this time.
    pub model: String,
    /// Accelerator kind serving at this time (`finn`/`fixed`/`flexible`).
    pub accelerator: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_averages_fields() {
        let a = RunMetrics {
            frame_loss_pct: 10.0,
            qoe_pct: 80.0,
            ..RunMetrics::default()
        };
        let b = RunMetrics {
            frame_loss_pct: 20.0,
            qoe_pct: 60.0,
            ..RunMetrics::default()
        };
        let m = RunMetrics::mean(&[a, b]).expect("nonempty");
        assert!((m.frame_loss_pct - 15.0).abs() < 1e-12);
        assert!((m.qoe_pct - 70.0).abs() < 1e-12);
    }

    #[test]
    fn mean_takes_max_of_max_drop() {
        let a = RunMetrics {
            max_accuracy_drop: 4.0,
            ..RunMetrics::default()
        };
        let b = RunMetrics {
            max_accuracy_drop: 7.0,
            ..RunMetrics::default()
        };
        let m = RunMetrics::mean(&[a, b]).expect("nonempty");
        assert_eq!(m.max_accuracy_drop, 7.0);
    }

    #[test]
    fn mean_of_nothing_is_none() {
        assert_eq!(RunMetrics::mean(&[]), None);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let trace = vec![TracePoint {
            t_s: 0.1,
            workload_fps: 600.0,
            throughput_fps: 443.0,
            queue_frames: 3.0,
            cumulative_loss_pct: 0.5,
            cumulative_qoe_pct: 80.0,
            model: "m".into(),
            accelerator: "fixed".into(),
        }];
        let csv = trace_to_csv(&trace);
        let mut lines = csv.lines();
        assert!(lines
            .next()
            .expect("header")
            .starts_with("t_s,workload_fps"));
        let row = lines.next().expect("row");
        assert!(row.contains("600.00"));
        assert!(row.ends_with("m,fixed"));
        assert_eq!(lines.next(), None);
    }
}
