//! Incoming-rate performance monitoring.
//!
//! The paper's Runtime Manager acts on workload changes "flagged by
//! performance monitors added to the software in charge of the incoming
//! inferences" (§IV-B2). The serving policies in [`crate::policy`] receive
//! oracle per-segment rates; this module provides the realistic counterpart:
//! a sliding-window FPS estimator with hysteresis-based change detection,
//! plus a policy adapter that feeds *estimated* rates to any inner policy.
//!
//! Comparing oracle vs monitored serving quantifies the cost of estimation
//! lag (see the `monitoring` bench binary).

use crate::policy::{ServerPolicy, ServingState};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Sliding-window estimator of the incoming frame rate with change
/// flagging.
///
/// Feed it arrival counts with [`FpsMonitor::observe`]; it maintains a
/// windowed rate estimate and reports a *change event* when the estimate
/// departs from the last flagged level by more than the relative
/// hysteresis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FpsMonitor {
    window_s: f64,
    hysteresis: f64,
    /// `(timestamp, frames)` observations inside the window.
    samples: VecDeque<(f64, f64)>,
    last_flagged: Option<f64>,
}

impl FpsMonitor {
    /// Creates a monitor with an averaging window (seconds) and a relative
    /// change-detection hysteresis (e.g. `0.1` = flag on ±10 % moves).
    ///
    /// # Panics
    ///
    /// Panics if the window is not positive or the hysteresis is negative.
    #[must_use]
    pub fn new(window_s: f64, hysteresis: f64) -> Self {
        assert!(window_s > 0.0, "window must be positive");
        assert!(hysteresis >= 0.0, "hysteresis must be nonnegative");
        Self {
            window_s,
            hysteresis,
            samples: VecDeque::new(),
            last_flagged: None,
        }
    }

    /// The paper-flavoured default: 250 ms window, 10 % hysteresis —
    /// responsive enough for Scenario 2's 500 ms deviations.
    #[must_use]
    pub fn default_edge() -> Self {
        Self::new(0.25, 0.1)
    }

    /// Records `frames` arrivals at time `now_s` and returns the flagged
    /// rate if this observation constitutes a change event.
    pub fn observe(&mut self, now_s: f64, frames: f64) -> Option<f64> {
        self.samples.push_back((now_s, frames));
        while let Some(&(t, _)) = self.samples.front() {
            if now_s - t > self.window_s {
                self.samples.pop_front();
            } else {
                break;
            }
        }
        let estimate = self.estimate(now_s);
        let changed = match self.last_flagged {
            None => true,
            Some(level) => {
                let rel = if level.abs() < 1e-9 {
                    if estimate.abs() < 1e-9 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    (estimate - level).abs() / level
                };
                rel > self.hysteresis
            }
        };
        if changed {
            self.last_flagged = Some(estimate);
            Some(estimate)
        } else {
            None
        }
    }

    /// Current windowed rate estimate at `now_s` (frames per second).
    ///
    /// Each observation represents the arrivals of the interval *ending* at
    /// its timestamp, so the rate is the frames observed **after** the
    /// oldest in-window timestamp divided by the elapsed span (the oldest
    /// sample only anchors the span — counting it too would overestimate by
    /// `n/(n-1)`).
    #[must_use]
    pub fn estimate(&self, now_s: f64) -> f64 {
        match self.samples.front() {
            None => 0.0,
            Some(&(t0, f0)) if self.samples.len() > 1 => {
                let total: f64 = self.samples.iter().map(|&(_, f)| f).sum();
                let span = (now_s - t0).max(1e-3);
                (total - f0) / span
            }
            Some(&(_, f0)) => f0 / self.window_s,
        }
    }

    /// The level of the last flagged change, if any.
    #[must_use]
    pub fn last_flagged(&self) -> Option<f64> {
        self.last_flagged
    }
}

/// Rate-level monitor for sparse observations: smooths direct rate readings
/// with a time-constant EWMA (estimation lag) and flags hysteresis-crossing
/// changes. This is the form the [`MonitoredPolicy`] adapter uses, since the
/// serving simulator reports rates at segment boundaries rather than
/// individual arrivals.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateMonitor {
    /// Smoothing time constant in seconds.
    pub time_constant_s: f64,
    /// Relative change-detection hysteresis.
    pub hysteresis: f64,
    estimate: Option<(f64, f64)>, // (timestamp, level)
    last_flagged: Option<f64>,
}

impl RateMonitor {
    /// Creates a rate monitor.
    ///
    /// # Panics
    ///
    /// Panics if the time constant is not positive or the hysteresis is
    /// negative.
    #[must_use]
    pub fn new(time_constant_s: f64, hysteresis: f64) -> Self {
        assert!(time_constant_s > 0.0, "time constant must be positive");
        assert!(hysteresis >= 0.0, "hysteresis must be nonnegative");
        Self {
            time_constant_s,
            hysteresis,
            estimate: None,
            last_flagged: None,
        }
    }

    /// The paper-flavoured default: 250 ms time constant, 10 % hysteresis.
    #[must_use]
    pub fn default_edge() -> Self {
        Self::new(0.25, 0.1)
    }

    /// Feeds a rate reading; returns the new estimate if it constitutes a
    /// flagged change.
    pub fn observe_rate(&mut self, now_s: f64, fps: f64) -> Option<f64> {
        let estimate = match self.estimate {
            None => fps,
            Some((t, level)) => {
                let alpha = 1.0 - (-(now_s - t).max(0.0) / self.time_constant_s).exp();
                level + alpha * (fps - level)
            }
        };
        self.estimate = Some((now_s, estimate));
        let changed = match self.last_flagged {
            None => true,
            Some(level) if level.abs() < 1e-9 => estimate.abs() > 1e-9,
            Some(level) => (estimate - level).abs() / level > self.hysteresis,
        };
        if changed {
            self.last_flagged = Some(estimate);
            Some(estimate)
        } else {
            None
        }
    }

    /// Current smoothed estimate, if any reading arrived yet.
    #[must_use]
    pub fn estimate(&self) -> Option<f64> {
        self.estimate.map(|(_, e)| e)
    }
}

/// Wraps a policy so it sees *monitored* rates: the inner policy is only
/// re-invoked when the monitor flags a change, and receives the smoothed
/// estimate instead of the oracle value.
pub struct MonitoredPolicy<P> {
    inner: P,
    monitor: RateMonitor,
    held: Option<ServingState>,
}

impl<P: ServerPolicy> MonitoredPolicy<P> {
    /// Wraps `inner` behind `monitor`.
    #[must_use]
    pub fn new(inner: P, monitor: RateMonitor) -> Self {
        Self {
            inner,
            monitor,
            held: None,
        }
    }
}

impl<P: ServerPolicy> ServerPolicy for MonitoredPolicy<P> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn on_workload_change(&mut self, now_s: f64, incoming_fps: f64) -> ServingState {
        match (self.monitor.observe_rate(now_s, incoming_fps), &self.held) {
            (Some(estimate), _) => {
                let state = self.inner.on_workload_change(now_s, estimate);
                self.held = Some(state.clone());
                state
            }
            (None, Some(state)) => {
                // No flagged change: hold the previous serving state with
                // the switch costs already paid.
                let mut held = state.clone();
                held.stall_s = 0.0;
                held.model_switched = false;
                held.reconfigured = false;
                held
            }
            (None, None) => {
                let state = self.inner.on_workload_change(now_s, incoming_fps);
                self.held = Some(state.clone());
                state
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_flags() {
        let mut m = FpsMonitor::default_edge();
        assert!(m.observe(0.0, 60.0).is_some());
    }

    #[test]
    fn steady_rate_flags_once() {
        let mut m = FpsMonitor::new(0.5, 0.1);
        let mut flags = 0;
        for i in 0..50 {
            let t = i as f64 * 0.1;
            if m.observe(t, 60.0).is_some() {
                flags += 1;
            }
        }
        assert!(flags <= 2, "steady input flagged {flags} times");
    }

    #[test]
    fn rate_jump_is_flagged() {
        let mut m = FpsMonitor::new(0.3, 0.1);
        for i in 0..10 {
            m.observe(i as f64 * 0.1, 60.0);
        }
        let before = m.last_flagged().expect("flagged");
        let mut flagged_after = None;
        for i in 10..20 {
            if let Some(level) = m.observe(i as f64 * 0.1, 120.0) {
                flagged_after = Some(level);
                break;
            }
        }
        let after = flagged_after.expect("jump must be flagged");
        assert!(after > before * 1.3, "estimate {after} vs {before}");
    }

    #[test]
    fn estimate_tracks_rate() {
        let mut m = FpsMonitor::new(0.5, 0.05);
        for i in 0..20 {
            m.observe(i as f64 * 0.1, 60.0); // 600 FPS
        }
        let est = m.estimate(1.9);
        assert!((est - 600.0).abs() < 120.0, "estimate {est}");
    }

    #[test]
    fn small_wiggle_not_flagged() {
        let mut m = FpsMonitor::new(0.5, 0.2);
        m.observe(0.0, 60.0);
        for i in 1..30 {
            let t = i as f64 * 0.1;
            let wiggle = 60.0 + (i % 3) as f64; // < 5% variation
            assert!(
                m.observe(t, wiggle).is_none() || i < 6,
                "wiggle flagged at {t}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = FpsMonitor::new(0.0, 0.1);
    }

    #[test]
    fn window_eviction_boundary_is_exclusive() {
        let mut m = FpsMonitor::new(1.0, 0.1);
        m.observe(0.0, 999.0);
        m.observe(1.0, 1.0);
        // The t=0 sample is exactly window_s old: eviction is strict `>`,
        // so it stays to anchor the span and its frames are excluded.
        assert!((m.estimate(1.0) - 1.0).abs() < 1e-9, "{}", m.estimate(1.0));
        // One step past the window it is gone; the estimate now spans only
        // the newer samples: (1 + 1 - 1) frames over 0.5 s.
        m.observe(1.5, 1.0);
        assert!((m.estimate(1.5) - 2.0).abs() < 1e-9, "{}", m.estimate(1.5));
    }

    #[test]
    fn hysteresis_boundary_is_exclusive() {
        // Window long enough that nothing is evicted; the estimate is then
        // exactly controllable through the observed frame counts.
        let mut m = FpsMonitor::new(10.0, 0.1);
        // Single sample: estimate = 50 / 10 s = 5.0, first observation flags.
        assert_eq!(m.observe(0.0, 50.0), Some(5.0));
        // Estimate moves to exactly 5.5 = +10.0 %: NOT flagged (strict `>`).
        assert_eq!(m.observe(1.0, 5.5), None);
        assert_eq!(m.last_flagged(), Some(5.0));
        // Estimate moves to ~5.6 = +12 % over the flagged level: flagged.
        let flagged = m.observe(2.0, 5.7).expect("12 % move flags");
        assert!((flagged - 5.6).abs() < 1e-9, "{flagged}");
    }

    #[test]
    fn idle_gap_flags_zero_rate_once() {
        let mut m = FpsMonitor::new(0.5, 0.1);
        for i in 0..5 {
            m.observe(i as f64 * 0.1, 60.0);
        }
        assert!(m.estimate(0.4) > 0.0);
        // A long idle gap evicts the whole window; the zero observation
        // flags the collapse to 0 FPS exactly once.
        assert_eq!(m.observe(10.0, 0.0), Some(0.0));
        assert_eq!(m.estimate(10.0), 0.0);
        assert!(m.observe(10.1, 0.0).is_none(), "steady zero re-flagged");
        // Recovery from zero is flagged again (relative move from 0 is
        // treated as infinite).
        assert!(m.observe(10.2, 60.0).is_some());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Feeding a constant offered rate in fixed steps converges the
            /// windowed estimate to that rate (equally-spaced samples make
            /// the span arithmetic exact, so only float error remains).
            #[test]
            fn estimate_converges_to_constant_rate(
                rate in 10.0f64..2000.0,
                dt in 0.01f64..0.2,
            ) {
                let mut m = FpsMonitor::new(0.5, 0.1);
                let steps = (2.0 / dt).ceil() as usize;
                let mut t = 0.0;
                for _ in 0..steps {
                    t += dt;
                    m.observe(t, rate * dt);
                }
                let est = m.estimate(t);
                prop_assert!(
                    (est - rate).abs() <= rate * 0.05 + 1e-6,
                    "estimate {} for offered rate {}", est, rate
                );
            }

            /// The monitor never flags while successive estimates stay
            /// within the hysteresis band of the last flagged level.
            #[test]
            fn no_flags_inside_hysteresis_band(
                rate in 50.0f64..1000.0,
                wiggle in 0.0f64..0.05,
            ) {
                let mut m = FpsMonitor::new(0.5, 0.2);
                let dt = 0.05;
                let mut flags = 0;
                for i in 0..60u32 {
                    let t = f64::from(i) * dt;
                    let f = rate * dt * (1.0 + if i % 2 == 0 { wiggle } else { -wiggle });
                    if m.observe(t, f).is_some() {
                        flags += 1;
                    }
                }
                // The first observation always flags; the ±5 % wiggle stays
                // inside the 20 % band thereafter (allow one settling flag).
                prop_assert!(flags <= 2, "flagged {} times", flags);
            }
        }
    }

    #[test]
    fn rate_monitor_converges_to_level() {
        let mut m = RateMonitor::new(0.25, 0.1);
        m.observe_rate(0.0, 600.0);
        for i in 1..10 {
            m.observe_rate(i as f64 * 0.5, 900.0);
        }
        let est = m.estimate().expect("has estimate");
        assert!((est - 900.0).abs() < 10.0, "estimate {est}");
    }

    #[test]
    fn rate_monitor_flags_jumps_not_wiggles() {
        let mut m = RateMonitor::new(0.1, 0.1);
        assert!(m.observe_rate(0.0, 600.0).is_some(), "first reading flags");
        assert!(m.observe_rate(1.0, 615.0).is_none(), "2.5% wiggle ignored");
        assert!(m.observe_rate(2.0, 900.0).is_some(), "50% jump flags");
    }

    #[test]
    fn rate_monitor_lags_with_large_time_constant() {
        let mut slow = RateMonitor::new(10.0, 0.0);
        slow.observe_rate(0.0, 600.0);
        slow.observe_rate(0.5, 1200.0);
        let est = slow.estimate().expect("has estimate");
        assert!(est < 700.0, "slow monitor moved too fast: {est}");
    }
}
