//! Multi-run experiment driver.
//!
//! The paper executes every evaluation 100 times and reports the average.
//! [`Experiment`] runs seeded workload realizations in parallel (one thread
//! per core via `std::thread::scope`) and averages the metrics.

use crate::metrics::{RunMetrics, TracePoint};
use crate::policy::{AdaFlowPolicy, OriginalFinnPolicy, PruningReconfPolicy, ServerPolicy};
use crate::sim::{EdgeSim, SimConfig};
use crate::workload::WorkloadSpec;
use adaflow::{Library, RuntimeConfig};
use std::time::Duration;

/// A repeated, seeded serving experiment over one library and workload.
#[derive(Debug, Clone)]
pub struct Experiment<'l> {
    library: &'l Library,
    workload: WorkloadSpec,
    runs: usize,
    base_seed: u64,
    sim: SimConfig,
}

impl<'l> Experiment<'l> {
    /// Creates an experiment with the paper's defaults: 100 runs, seed 1.
    #[must_use]
    pub fn new(library: &'l Library, workload: WorkloadSpec) -> Self {
        Self {
            library,
            workload,
            runs: 100,
            base_seed: 1,
            sim: SimConfig::default(),
        }
    }

    /// Sets the number of seeded repetitions.
    #[must_use]
    pub fn runs(mut self, runs: usize) -> Self {
        assert!(runs > 0, "need at least one run");
        self.runs = runs;
        self
    }

    /// Sets the base seed (run `i` uses `base_seed + i`).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Overrides the simulator configuration.
    #[must_use]
    pub fn sim_config(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// The model library this experiment serves from.
    #[must_use]
    pub fn library(&self) -> &'l Library {
        self.library
    }

    /// The workload specification under evaluation.
    #[must_use]
    pub fn workload(&self) -> &WorkloadSpec {
        &self.workload
    }

    /// The base seed (run `i` uses `base_seed + i`).
    #[must_use]
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// The number of seeded repetitions.
    #[must_use]
    pub fn run_count(&self) -> usize {
        self.runs
    }

    /// Runs the experiment with a policy factory (one fresh policy per run)
    /// and returns the averaged metrics.
    ///
    /// Runs are sharded over scoped worker threads (one per available core)
    /// through the order-preserving [`adaflow_nn::parallel`] helper, so the
    /// averaged metrics are identical to a serial sweep over the seeds.
    pub fn run_with<F>(&self, make_policy: F) -> RunMetrics
    where
        F: Fn() -> Box<dyn ServerPolicy + 'l> + Sync,
    {
        let seeds: Vec<u64> = (0..self.runs as u64).map(|i| self.base_seed + i).collect();
        let all = adaflow_nn::parallel::par_map(&seeds, 0, |&seed| {
            let segments = self.workload.generate(seed);
            let mut policy = make_policy();
            let sim = EdgeSim::new(self.sim.clone());
            sim.run(policy.as_mut(), &segments).0
        });
        RunMetrics::mean(&all).expect("at least one run")
    }

    /// Averaged metrics of the AdaFlow policy.
    #[must_use]
    pub fn run_adaflow(&self, config: RuntimeConfig) -> RunMetrics {
        let library = self.library;
        self.run_with(move || Box::new(AdaFlowPolicy::new(library, config.clone())))
    }

    /// Averaged metrics of the original FINN baseline.
    #[must_use]
    pub fn run_original_finn(&self) -> RunMetrics {
        let library = self.library;
        self.run_with(move || Box::new(OriginalFinnPolicy::new(library)))
    }

    /// Averaged metrics of the Pruning-Reconf policy at a reconfiguration
    /// time (the Fig. 1(b) sweep).
    #[must_use]
    pub fn run_pruning_reconf(&self, reconfiguration_time: Duration) -> RunMetrics {
        let library = self.library;
        self.run_with(move || Box::new(PruningReconfPolicy::new(library, reconfiguration_time)))
    }

    /// A single traced run (for the Fig. 1(b)/Fig. 6 time-series curves).
    pub fn trace_with<F>(&self, seed: u64, make_policy: F) -> (RunMetrics, Vec<TracePoint>)
    where
        F: FnOnce() -> Box<dyn ServerPolicy + 'l>,
    {
        let segments = self.workload.generate(seed);
        let mut policy = make_policy();
        let sim = EdgeSim::new(SimConfig {
            record_trace: true,
            ..self.sim.clone()
        });
        sim.run(policy.as_mut(), &segments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Scenario;
    use adaflow::LibraryGenerator;
    use adaflow_model::prelude::*;
    use adaflow_nn::DatasetKind;

    fn library() -> Library {
        LibraryGenerator::default_edge_setup()
            .generate(
                &topology::cnv_w2a2_cifar10().expect("builds"),
                DatasetKind::Cifar10,
            )
            .expect("generates")
    }

    #[test]
    fn adaflow_beats_finn_in_scenario_1() {
        let lib = library();
        let exp = Experiment::new(&lib, WorkloadSpec::paper_edge(Scenario::Stable)).runs(10);
        let ada = exp.run_adaflow(RuntimeConfig::default());
        let finn = exp.run_original_finn();
        // Table I shape: lower frame loss, higher QoE, better efficiency.
        assert!(ada.frame_loss_pct < finn.frame_loss_pct - 5.0);
        assert!(ada.qoe_pct > finn.qoe_pct);
        assert!(ada.inferences_per_joule > finn.inferences_per_joule);
        // FINN around its analytic loss: (600 - 443)/600 with deviations.
        assert!(
            (15.0..35.0).contains(&finn.frame_loss_pct),
            "finn loss {}",
            finn.frame_loss_pct
        );
        // AdaFlow scenario 1: near-zero loss (paper reports 0).
        assert!(
            ada.frame_loss_pct < 3.0,
            "adaflow loss {}",
            ada.frame_loss_pct
        );
    }

    #[test]
    fn adaflow_uses_flexible_in_scenario_2() {
        let lib = library();
        let exp = Experiment::new(&lib, WorkloadSpec::paper_edge(Scenario::Unpredictable)).runs(10);
        let ada = exp.run_adaflow(RuntimeConfig::default());
        // Rapid switching: flexible fast switches dominate reconfigurations.
        assert!(ada.flexible_switches > ada.reconfigurations);
        assert!(ada.model_switches > 5.0);
    }

    #[test]
    fn results_are_deterministic_in_seed() {
        let lib = library();
        let exp = Experiment::new(&lib, WorkloadSpec::paper_edge(Scenario::Stable)).runs(4);
        let a = exp.run_adaflow(RuntimeConfig::default());
        let b = exp.run_adaflow(RuntimeConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn different_base_seeds_change_results() {
        let lib = library();
        let exp = Experiment::new(&lib, WorkloadSpec::paper_edge(Scenario::Unpredictable));
        let a = exp.clone().runs(3).seed(1).run_original_finn();
        let b = exp.runs(3).seed(1000).run_original_finn();
        assert_ne!(a.frame_loss_pct, b.frame_loss_pct);
    }

    #[test]
    #[should_panic(expected = "need at least one run")]
    fn zero_runs_rejected() {
        let lib = library();
        let _ = Experiment::new(&lib, WorkloadSpec::paper_edge(Scenario::Stable)).runs(0);
    }

    #[test]
    fn trace_covers_whole_run() {
        let lib = library();
        let exp = Experiment::new(&lib, WorkloadSpec::paper_edge(Scenario::Shifting));
        let config = RuntimeConfig::default();
        let lib_ref = &lib;
        let (_, trace) = exp.trace_with(1, move || Box::new(AdaFlowPolicy::new(lib_ref, config)));
        assert!(!trace.is_empty());
        let last_t = trace.last().expect("nonempty").t_s;
        assert!((last_t - 25.0).abs() < 0.02, "trace ends at {last_t}");
    }
}
