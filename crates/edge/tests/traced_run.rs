//! End-to-end telemetry acceptance: a fully traced AdaFlow run of the
//! paper's Scenario 2 (unpredictable workload) must produce a Chrome
//! trace that round-trips through serde, contains the control-plane
//! events, and stays numerically consistent with the run's metrics.

use adaflow::{Library, LibraryGenerator, RuntimeConfig};
use adaflow_edge::prelude::*;
use adaflow_model::prelude::*;
use adaflow_nn::DatasetKind;
use adaflow_telemetry::{
    chrome_trace_json, events_from_jsonl, events_to_jsonl, ChromeTraceEvent, EventKind, SinkHandle,
    TraceSummary,
};

fn library() -> Library {
    LibraryGenerator::default_edge_setup()
        .generate(
            &topology::cnv_w2a2_cifar10().expect("builds"),
            DatasetKind::Cifar10,
        )
        .expect("generates")
}

/// Runs one traced AdaFlow Scenario-2 simulation and returns the metrics
/// plus the recorded events.
fn traced_scenario2_run(lib: &Library) -> (RunMetrics, Vec<adaflow_telemetry::Event>) {
    let (sink, recorder) = SinkHandle::recorder(1 << 16);
    let mut policy = AdaFlowPolicy::new(lib, RuntimeConfig::default()).with_sink(sink.clone());
    let segments = WorkloadSpec::paper_edge(Scenario::Unpredictable).generate(1);
    let sim = EdgeSim::default().with_sink(sink);
    let (metrics, _) = sim.run(&mut policy, &segments);
    assert_eq!(recorder.overwritten(), 0, "ring must hold the whole run");
    (metrics, recorder.drain())
}

#[test]
fn chrome_trace_round_trips_with_decisions_and_reconfig_spans() {
    let lib = library();
    let (_, events) = traced_scenario2_run(&lib);

    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::DecisionMade { .. })),
        "at least one DecisionMade event"
    );

    let json = chrome_trace_json(&events);
    let back: Vec<ChromeTraceEvent> = serde_json::from_str(&json).expect("trace parses back");
    assert!(back
        .iter()
        .any(|e| e.name == "decision_made" && e.ph == "i"));
    assert!(
        back.iter()
            .any(|e| e.name == "reconfiguration" && e.ph == "B"),
        "a reconfiguration span begins"
    );
    assert!(
        back.iter()
            .any(|e| e.name == "reconfiguration" && e.ph == "E"),
        "a reconfiguration span ends"
    );
    // Every span begin has a matching end at a later-or-equal timestamp.
    let begins: Vec<&ChromeTraceEvent> = back.iter().filter(|e| e.ph == "B").collect();
    let ends: Vec<&ChromeTraceEvent> = back.iter().filter(|e| e.ph == "E").collect();
    assert_eq!(begins.len(), ends.len(), "spans are balanced");
}

#[test]
fn frame_events_balance_against_run_metrics() {
    let lib = library();
    let (metrics, events) = traced_scenario2_run(&lib);

    let arrived: f64 = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::FrameArrived { count } => Some(*count),
            _ => None,
        })
        .sum();
    let dropped: f64 = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::FrameDropped { count, .. } => Some(*count),
            _ => None,
        })
        .sum();
    let final_queue = events
        .iter()
        .rev()
        .find_map(|e| match &e.kind {
            EventKind::QueueDepth { frames } => Some(*frames),
            _ => None,
        })
        .expect("queue depth sampled");

    assert!(
        (arrived - metrics.offered).abs() < 1e-6,
        "arrival events ({arrived}) must equal offered frames ({})",
        metrics.offered
    );
    assert!(
        (dropped + final_queue - metrics.lost).abs() < 1e-6,
        "drop events ({dropped}) plus final queue ({final_queue}) must equal \
         lost frames ({})",
        metrics.lost
    );

    let summary = TraceSummary::from_events(&events);
    assert!(summary.decisions >= 1);
    assert!((summary.frames_dropped - dropped).abs() < 1e-9);
    assert!((summary.frames_arrived - arrived).abs() < 1e-9);
}

#[test]
fn jsonl_export_round_trips_a_real_run() {
    let lib = library();
    let (_, events) = traced_scenario2_run(&lib);
    let text = events_to_jsonl(&events);
    let back = events_from_jsonl(&text).expect("jsonl parses back");
    assert_eq!(events, back);
}

#[test]
fn null_sink_run_matches_traced_run_metrics() {
    // Telemetry must observe, never perturb: the same seeded run with and
    // without a recording sink yields identical metrics.
    let lib = library();
    let (traced, _) = traced_scenario2_run(&lib);
    let mut policy = AdaFlowPolicy::new(&lib, RuntimeConfig::default());
    let segments = WorkloadSpec::paper_edge(Scenario::Unpredictable).generate(1);
    let (silent, _) = EdgeSim::default().run(&mut policy, &segments);
    assert_eq!(traced, silent);
}
