//! Property-based tests on workload generation and the serving simulation.

use adaflow_dataflow::AcceleratorKind;
use adaflow_edge::prelude::*;
use adaflow_hls::{PowerModel, ResourceEstimate};
use proptest::prelude::*;

/// A scripted constant-rate policy for simulation properties.
struct ConstPolicy {
    fps: f64,
    stall_on_change: f64,
    accuracy: f64,
    last: Option<f64>,
}

impl ServerPolicy for ConstPolicy {
    fn name(&self) -> &str {
        "const"
    }

    fn on_workload_change(&mut self, _now: f64, incoming: f64) -> ServingState {
        let changed = self.last.is_some_and(|f| (f - incoming).abs() > 1e-9);
        self.last = Some(incoming);
        ServingState {
            throughput_fps: self.fps,
            stall_s: if changed { self.stall_on_change } else { 0.0 },
            accuracy: self.accuracy,
            power: PowerModel::new(ResourceEstimate {
                lut: 50_000,
                ff: 50_000,
                bram36: 100,
                dsp: 0,
            }),
            activity: 1.0,
            model: "const".into(),
            accelerator: AcceleratorKind::Finn,
            model_switched: changed,
            reconfigured: false,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Workload segments always tile the horizon exactly and respect the
    /// deviation bounds of their scenario.
    #[test]
    fn workload_tiles_and_bounds(seed in 0u64..5_000, dev in 0.05f64..0.9, period in 0.2f64..6.0) {
        let spec = WorkloadSpec {
            devices: 20,
            fps_per_device: 30.0,
            duration_s: 25.0,
            scenario: Scenario::Custom { deviation: dev, period_s: period },
        };
        let segments = spec.generate(seed);
        let mut t = 0.0;
        for s in &segments {
            prop_assert!((s.start_s - t).abs() < 1e-9);
            prop_assert!(s.fps >= 600.0 * (1.0 - dev) - 1e-6);
            prop_assert!(s.fps <= 600.0 * (1.0 + dev) + 1e-6);
            t += s.duration_s;
        }
        prop_assert!((t - 25.0).abs() < 1e-9);
    }

    /// Frame conservation holds for arbitrary service rates, stalls,
    /// buffers and workloads: offered = processed + lost.
    #[test]
    fn frame_conservation_universal(
        seed in 0u64..2_000,
        mu in 50.0f64..2_000.0,
        stall in 0.0f64..1.0,
        buffer in 1.0f64..512.0,
        dev in 0.1f64..0.9,
    ) {
        let spec = WorkloadSpec {
            devices: 20,
            fps_per_device: 30.0,
            duration_s: 10.0,
            scenario: Scenario::Custom { deviation: dev, period_s: 1.0 },
        };
        let segments = spec.generate(seed);
        let mut policy =
            ConstPolicy { fps: mu, stall_on_change: stall, accuracy: 80.0, last: None };
        let sim = EdgeSim::new(SimConfig { buffer_frames: buffer, ..SimConfig::default() });
        let (m, _) = sim.run(&mut policy, &segments);
        prop_assert!((m.processed + m.lost - m.offered).abs() < 1e-6,
            "conservation violated: {} + {} != {}", m.processed, m.lost, m.offered);
        prop_assert!(m.frame_loss_pct >= -1e-9 && m.frame_loss_pct <= 100.0 + 1e-9);
        // QoE is accuracy x processed share.
        let expect_qoe = 80.0 * m.processed / m.offered.max(1e-12);
        prop_assert!((m.qoe_pct - expect_qoe).abs() < 1e-6);
    }

    /// More service capacity never increases frame loss (fixed workload).
    #[test]
    fn capacity_monotone(seed in 0u64..1_000, mu in 100.0f64..900.0) {
        let spec = WorkloadSpec::paper_edge(Scenario::Unpredictable);
        let segments = spec.generate(seed);
        let run = |fps: f64| {
            let mut p = ConstPolicy { fps, stall_on_change: 0.0, accuracy: 80.0, last: None };
            EdgeSim::default().run(&mut p, &segments).0
        };
        let slow = run(mu);
        let fast = run(mu + 200.0);
        prop_assert!(fast.frame_loss_pct <= slow.frame_loss_pct + 1e-6);
    }

    /// Stalls only ever hurt: loss with switching stalls >= loss without.
    #[test]
    fn stalls_never_help(seed in 0u64..1_000, stall in 0.01f64..0.5) {
        let spec = WorkloadSpec::paper_edge(Scenario::Unpredictable);
        let segments = spec.generate(seed);
        let run = |stall_s: f64| {
            let mut p =
                ConstPolicy { fps: 700.0, stall_on_change: stall_s, accuracy: 80.0, last: None };
            EdgeSim::default().run(&mut p, &segments).0
        };
        let clean = run(0.0);
        let stalled = run(stall);
        prop_assert!(stalled.frame_loss_pct >= clean.frame_loss_pct - 1e-9);
        prop_assert!(stalled.qoe_pct <= clean.qoe_pct + 1e-9);
    }

    /// Energy accounting: average power is bounded by static power below
    /// and static + peak dynamic above.
    #[test]
    fn power_bounds(seed in 0u64..1_000, mu in 100.0f64..2_000.0) {
        let spec = WorkloadSpec::paper_edge(Scenario::Stable);
        let segments = spec.generate(seed);
        let mut p = ConstPolicy { fps: mu, stall_on_change: 0.0, accuracy: 80.0, last: None };
        let (m, _) = EdgeSim::default().run(&mut p, &segments);
        let model = PowerModel::new(ResourceEstimate {
            lut: 50_000,
            ff: 50_000,
            bram36: 100,
            dsp: 0,
        });
        prop_assert!(m.avg_power_w >= adaflow_hls::power::STATIC_POWER_W - 1e-9);
        prop_assert!(m.avg_power_w <= model.power(1.0, 1.0).total_w + 1e-9);
    }
}
