//! Property-based tests on the inference engine and datasets.

use adaflow_model::prelude::*;
use adaflow_nn::prelude::*;
use proptest::prelude::*;

fn random_image(shape: TensorShape, seed: u64) -> Activations {
    let mut img = Activations::zeroed(shape);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for v in img.as_mut_slice() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *v = (state % 256) as u8;
    }
    img
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The engine is a pure function: identical inputs give identical
    /// outputs, across strategies.
    #[test]
    fn engine_is_deterministic(classes in 2usize..8, seed in 0u64..1000) {
        let graph = topology::tiny(QuantSpec::w2a2(), classes).expect("builds");
        let img = random_image(graph.input_shape(), seed);
        let direct = Engine::new(&graph).expect("engine");
        let gemm = Engine::new(&graph).expect("engine").with_strategy(ConvStrategy::Im2col);
        let a = direct.run(&img).expect("runs");
        let b = direct.run(&img).expect("runs");
        let c = gemm.run(&img).expect("runs");
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
        prop_assert!(a.label < classes);
        prop_assert_eq!(a.logits.len(), classes);
    }

    /// The predicted label always maximizes the logits.
    #[test]
    fn label_is_argmax_of_logits(seed in 0u64..500) {
        let graph = topology::tiny(QuantSpec::w1a2(), 6).expect("builds");
        let engine = Engine::new(&graph).expect("engine");
        let result = engine.run(&random_image(graph.input_shape(), seed)).expect("runs");
        let max = result.logits.iter().max().copied().expect("nonempty");
        prop_assert_eq!(result.logits[result.label], max);
    }

    /// Dataset samples: labels in range, pixels defined, deterministic in
    /// (seed, index), distinct across indices with overwhelming likelihood.
    #[test]
    fn dataset_sample_invariants(
        classes in 1usize..16,
        seed in 0u64..1000,
        index in 0u64..10_000,
    ) {
        let data = SyntheticDataset::new(DatasetSpec::tiny(classes), seed);
        let a = data.sample(index);
        let b = data.sample(index);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.label < classes);
        prop_assert_eq!(a.image.shape(), TensorShape::new(1, 12, 12));
    }

    /// The analytical accuracy model is monotone non-increasing and bounded
    /// between chance and its base, for every calibrated combination.
    #[test]
    fn accuracy_model_bounded_monotone(p1 in 0.0f64..1.0, p2 in 0.0f64..1.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        for dataset in DatasetKind::all() {
            for quant in [QuantSpec::w2a2(), QuantSpec::w1a2()] {
                let m = AccuracyModel::calibrated(dataset, quant);
                prop_assert!(m.accuracy_at(lo) >= m.accuracy_at(hi));
                prop_assert!(m.accuracy_at(hi) >= 100.0 / dataset.classes() as f64 - 1e-9);
                prop_assert!(m.accuracy_at(lo) <= m.base + 1e-9);
            }
        }
    }

    /// `max_pruning_for_loss` inverts `drop_at` within the curve's range.
    #[test]
    fn threshold_inversion(points in 0.1f64..30.0) {
        let m = AccuracyModel::calibrated(DatasetKind::Cifar10, QuantSpec::w2a2());
        let p = m.max_pruning_for_loss(points);
        prop_assert!(m.drop_at(p) <= points + 1e-6);
        if p < 1.0 {
            // One more step would exceed the budget.
            prop_assert!(m.drop_at((p + 1e-6).min(1.0)) >= points - 1e-3);
        }
    }

    /// Flexible execution reports full occupancy exactly when nothing is
    /// pruned.
    #[test]
    fn flexible_occupancy_of_self_is_full(classes in 2usize..8) {
        let graph = topology::tiny(QuantSpec::w2a2(), classes).expect("builds");
        let fabric = FlexibleExecutor::new(graph.clone());
        let occ = fabric.occupancy(&graph);
        prop_assert!(occ.iter().all(|o| o.idle_unit_fraction.abs() < 1e-12));
        prop_assert!(occ.iter().all(|o| o.iteration_saving.abs() < 1e-12));
    }

    /// Reusing one scratch arena across a shuffled batch is bit-identical to
    /// a fresh `run` per image, for both convolution strategies.
    #[test]
    fn scratch_reuse_is_bit_identical_over_shuffled_batches(
        classes in 2usize..8,
        seed in 0u64..1000,
        batch in 2usize..10,
    ) {
        let graph = topology::tiny(QuantSpec::w2a2(), classes).expect("builds");
        let images = shuffled(
            (0..batch)
                .map(|i| random_image(graph.input_shape(), seed.wrapping_add(i as u64)))
                .collect(),
            seed ^ 0xD1B5_4A32_D192_ED03,
        );
        for strategy in [
            ConvStrategy::Direct,
            ConvStrategy::Im2col,
            ConvStrategy::Packed,
            ConvStrategy::Auto,
        ] {
            let engine = Engine::new(&graph).expect("engine").with_strategy(strategy);
            let mut scratch = engine.scratch();
            for img in &images {
                let fresh = engine.run(img).expect("fresh run");
                let reused = engine.run_with_scratch(img, &mut scratch).expect("scratch run");
                prop_assert_eq!(fresh, reused);
            }
        }
    }

    /// Every kernel path — direct conv, blocked i32 GEMM, packed popcount
    /// on each available backend — produces bit-identical logits on random
    /// graphs and inputs. The GEMM path is the oracle the packed kernels
    /// are checked against.
    #[test]
    fn packed_kernels_are_bit_identical_to_gemm_oracle(
        classes in 2usize..8,
        seed in 0u64..1000,
        quant_w1 in proptest::bool::ANY,
    ) {
        let quant = if quant_w1 { QuantSpec::w1a2() } else { QuantSpec::w2a2() };
        let graph = topology::tiny(quant, classes).expect("builds");
        let img = random_image(graph.input_shape(), seed);
        let oracle = Engine::new(&graph)
            .expect("engine")
            .with_strategy(ConvStrategy::Im2col)
            .run(&img)
            .expect("oracle");
        let mut backends = vec![PackedBackend::Scalar];
        if adaflow_nn::packed::simd_available() {
            backends.push(PackedBackend::Avx2);
        }
        for backend in backends {
            let engine = Engine::new(&graph)
                .expect("engine")
                .with_strategy(ConvStrategy::Packed)
                .with_packed_backend(backend);
            prop_assert_eq!(&oracle, &engine.run(&img).expect("packed"));
        }
        let auto = Engine::new(&graph).expect("engine").run(&img).expect("auto");
        prop_assert_eq!(&oracle, &auto);
    }

    /// Batched packed inference is invariant in the worker-thread count and
    /// matches the serial GEMM oracle label-for-label.
    #[test]
    fn packed_batch_runner_matches_oracle_across_threads(
        classes in 2usize..6,
        seed in 0u64..500,
        threads in 3usize..9,
    ) {
        let graph = topology::tiny(QuantSpec::w2a2(), classes).expect("builds");
        let images: Vec<Activations> = (0..6)
            .map(|i| random_image(graph.input_shape(), seed.wrapping_add(77 * i)))
            .collect();
        let oracle_engine = Engine::new(&graph)
            .expect("engine")
            .with_strategy(ConvStrategy::Im2col);
        let oracle: Vec<usize> = images
            .iter()
            .map(|img| oracle_engine.run(img).expect("oracle").label)
            .collect();
        for t in [1, 2, threads] {
            let engine = Engine::new(&graph)
                .expect("engine")
                .with_strategy(ConvStrategy::Packed);
            let runner = BatchRunner::new(engine).with_threads(t);
            prop_assert_eq!(&runner.run(&images).expect("batch"), &oracle, "threads {}", t);
        }
    }

    /// `BatchRunner` yields the same label vector for 1, 2, and N worker
    /// threads (including auto), and it matches the serial engine.
    #[test]
    fn batch_runner_labels_invariant_in_thread_count(
        classes in 2usize..6,
        seed in 0u64..500,
        threads in 3usize..9,
    ) {
        let graph = topology::tiny(QuantSpec::w2a2(), classes).expect("builds");
        let images: Vec<Activations> = (0..7)
            .map(|i| random_image(graph.input_shape(), seed.wrapping_add(1000 * i)))
            .collect();
        let engine = Engine::new(&graph).expect("engine");
        let serial: Vec<usize> = images
            .iter()
            .map(|img| engine.run(img).expect("serial").label)
            .collect();
        for t in [1, 2, threads, 0] {
            let runner = BatchRunner::new(Engine::new(&graph).expect("engine")).with_threads(t);
            let labels = runner.run(&images).expect("batch");
            prop_assert_eq!(&labels, &serial, "thread count {}", t);
        }
    }
}

/// Deterministic Fisher-Yates shuffle driven by an xorshift stream.
fn shuffled(mut items: Vec<Activations>, seed: u64) -> Vec<Activations> {
    let mut state = seed | 1;
    for i in (1..items.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        items.swap(i, (state % (i as u64 + 1)) as usize);
    }
    items
}
