//! LeNet on the MNIST-like dataset: engine + metrics smoke coverage for the
//! second topology family.

use adaflow_model::prelude::*;
use adaflow_nn::prelude::*;
use adaflow_nn::{evaluate_confusion, evaluate_confusion_batched, ConvStrategy};

#[test]
fn lenet_runs_on_mnist_like_samples() {
    let graph = topology::lenet(QuantSpec::w2a2(), 10).expect("builds");
    let data = SyntheticDataset::new(DatasetSpec::mnist_like(), 7);
    let engine = Engine::new(&graph).expect("engine");
    let labels = engine
        .run_batch(data.batch(0, 8).iter().map(|s| &s.image))
        .expect("batch");
    assert_eq!(labels.len(), 8);
    assert!(labels.iter().all(|&l| l < 10));
}

#[test]
fn lenet_strategies_agree_on_dataset_samples() {
    let graph = topology::lenet(QuantSpec::w1a2(), 10).expect("builds");
    let data = SyntheticDataset::new(DatasetSpec::mnist_like(), 11);
    let direct = Engine::new(&graph).expect("engine");
    let gemm = Engine::new(&graph)
        .expect("engine")
        .with_strategy(ConvStrategy::Im2col);
    for sample in data.batch(0, 6) {
        assert_eq!(
            direct.run(&sample.image).expect("direct"),
            gemm.run(&sample.image).expect("im2col")
        );
    }
}

#[test]
fn confusion_matrix_over_lenet_predictions() {
    let graph = topology::lenet(QuantSpec::w2a2(), 10).expect("builds");
    let data = SyntheticDataset::new(DatasetSpec::mnist_like(), 13);
    let runner = BatchRunner::new(
        Engine::new(&graph)
            .expect("engine")
            .with_strategy(ConvStrategy::Im2col),
    );
    let cm = evaluate_confusion_batched(&data, 0, 40, &runner).expect("batched eval");
    assert_eq!(cm.total(), 40);
    assert_eq!(cm.classes(), 10);
    // Untrained random weights: no accuracy claim, but the bookkeeping must
    // be consistent.
    assert!(cm.accuracy() <= 1.0);
    assert!(cm.macro_recall() <= 1.0);

    // The threaded batch evaluation matches the serial closure-based path
    // bit for bit.
    let engine = Engine::new(&graph).expect("engine");
    let serial = evaluate_confusion(&data, 0, 40, |img| {
        engine.run(img).map(|r| r.label).unwrap_or(0)
    });
    assert_eq!(cm, serial);
}
