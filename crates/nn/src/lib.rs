//! # adaflow-nn — quantized inference, datasets and (re)training
//!
//! The execution layer of the AdaFlow reproduction. Where the original flow
//! relied on PyTorch/Brevitas for quantization-aware training and on FINN's
//! Verilator simulation for functional verification, this crate provides:
//!
//! * a bit-accurate integer inference engine over
//!   [`adaflow_model::CnnGraph`] (direct convolution, max-pool, FINN-style
//!   multi-threshold activations, label select), with a reusable scratch
//!   arena, a blocked integer GEMM and a multi-threaded [`BatchRunner`] —
//!   [`engine`];
//! * order-preserving scoped-thread helpers shared by the batch runner, the
//!   trainer and the edge experiment driver — [`parallel`];
//! * an emulation of the *flexible* accelerator's runtime-controllable
//!   channel execution, with idle-lane accounting, used to prove functional
//!   equivalence between pruned-fixed and flexible execution — [`flexible`];
//! * seeded synthetic datasets standing in for CIFAR-10 and GTSRB (see
//!   DESIGN.md for the substitution rationale) — [`dataset`];
//! * a small straight-through-estimator SGD trainer used to exercise the
//!   "retrain after pruning" path on real tensors — [`train`];
//! * the calibrated accuracy-vs-pruning model anchored to the paper's
//!   published operating points — [`accuracy`].
//!
//! ## Quickstart
//!
//! ```
//! use adaflow_model::prelude::*;
//! use adaflow_nn::prelude::*;
//!
//! let graph = topology::tiny(QuantSpec::w2a2(), 4)?;
//! let data = SyntheticDataset::new(DatasetSpec::tiny(4), 42);
//! let sample = data.sample(0);
//! let result = Engine::new(&graph)?.run(&sample.image)?;
//! assert!(result.label < 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// `deny` rather than `forbid`: the one cfg-gated AVX2 intrinsics module
// ([`packed::avx2`]) re-allows `unsafe` locally under a documented safety
// contract; everything else in the crate stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod dataset;
pub mod engine;
pub mod error;
pub mod flexible;
pub mod metrics;
pub mod packed;
pub mod parallel;
pub mod tensor;
pub mod train;

pub use accuracy::{AccuracyModel, DatasetKind};
pub use dataset::{DatasetSpec, Sample, SyntheticDataset};
pub use engine::{
    BatchRunner, ConvStrategy, Engine, EngineScratch, InferenceResult, KernelAttribution,
};
pub use error::NnError;
pub use flexible::{FlexibleExecution, FlexibleExecutor};
pub use metrics::{evaluate_confusion, evaluate_confusion_batched, ConfusionMatrix};
pub use packed::{default_backend, kernel_thresholds, KernelThresholds, PackedBackend};
pub use tensor::Activations;
pub use train::{Trainer, TrainingConfig, TrainingReport};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::accuracy::{AccuracyModel, DatasetKind};
    pub use crate::dataset::{DatasetSpec, Sample, SyntheticDataset};
    pub use crate::engine::{
        BatchRunner, ConvStrategy, Engine, EngineScratch, InferenceResult, KernelAttribution,
    };
    pub use crate::error::NnError;
    pub use crate::flexible::{FlexibleExecution, FlexibleExecutor};
    pub use crate::metrics::{evaluate_confusion, evaluate_confusion_batched, ConfusionMatrix};
    pub use crate::packed::{default_backend, PackedBackend};
    pub use crate::tensor::Activations;
    pub use crate::train::{Trainer, TrainingConfig, TrainingReport};
}
