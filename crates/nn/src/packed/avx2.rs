//! AVX2 popcount kernels for the packed bitplane dot products.
//!
//! This is the **only** module in the workspace permitted to use `unsafe`
//! (the crate root is `deny(unsafe_code)`, relaxed here alone). The unsafe
//! surface is confined to two things:
//!
//! 1. calling `#[target_feature(enable = "avx2,popcnt")]` functions, and
//! 2. unaligned 256-bit loads/stores through raw pointers inside them.
//!
//! ## Safety contract
//!
//! * Every `unsafe` entry point is reached only through the safe wrappers
//!   [`dot`] and [`gemm_row`], which consult the cached
//!   `is_x86_feature_detected!` probe and fall back to the scalar kernel
//!   when the CPU lacks AVX2/POPCNT — so the required target features are
//!   always present when the intrinsics execute.
//! * All raw-pointer loads derive from in-bounds slice indices: the loop
//!   bounds guarantee `i + 4 <= words`, so each `_mm256_loadu_si256` reads
//!   exactly the four `u64` lanes `[i, i+4)` of a live slice. Unaligned
//!   loads are used throughout, so no alignment precondition exists.
//!
//! The popcount itself is the vpshufb nibble-LUT reduction (Mula's
//! algorithm): per-byte counts via two 16-entry table lookups, horizontally
//! summed into 64-bit lanes with `_mm256_sad_epu8`. The scalar tail uses
//! `count_ones()`, which compiles to `popcnt` under the enabled feature.

#![allow(unsafe_code)]

use std::arch::x86_64::{
    __m256i, _mm256_add_epi64, _mm256_add_epi8, _mm256_and_si256, _mm256_loadu_si256,
    _mm256_sad_epu8, _mm256_set1_epi8, _mm256_setr_epi8, _mm256_setzero_si256, _mm256_shuffle_epi8,
    _mm256_srli_epi32, _mm256_storeu_si256,
};
use std::sync::OnceLock;

/// Cached capability probe: AVX2 for the vector kernels, POPCNT for the
/// scalar tail inside the target-feature region.
pub(crate) fn available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("popcnt")
    })
}

/// Safe entry point: one packed dot product on the AVX2 path, falling back
/// to the scalar kernel when the CPU lacks the features.
pub(crate) fn dot(plus: &[u64], minus: &[u64], act: &[u64], planes: usize, words: usize) -> i32 {
    if !available() {
        return super::dot_packed_scalar(plus, minus, act, planes, words);
    }
    // SAFETY: `available()` established AVX2+POPCNT at runtime.
    unsafe { dot_avx2(plus, minus, act, planes, words) }
}

/// Safe entry point: one weight row dotted against `n` packed activation
/// vectors (stride `planes * words`), falling back to scalar without AVX2.
pub(crate) fn gemm_row(
    plus: &[u64],
    minus: &[u64],
    acts: &[u64],
    n: usize,
    planes: usize,
    words: usize,
    out: &mut [i32],
) {
    let stride = planes * words;
    if !available() {
        for j in 0..n {
            out[j] = super::dot_packed_scalar(
                plus,
                minus,
                &acts[j * stride..(j + 1) * stride],
                planes,
                words,
            );
        }
        return;
    }
    for j in 0..n {
        // SAFETY: `available()` established AVX2+POPCNT at runtime.
        out[j] = unsafe {
            dot_avx2(
                plus,
                minus,
                &acts[j * stride..(j + 1) * stride],
                planes,
                words,
            )
        };
    }
}

/// Shift-weighted plane recombination over the vectorized plane-pair
/// popcounts.
///
/// # Safety
///
/// Requires AVX2 and POPCNT; callers must check [`available`] first.
#[target_feature(enable = "avx2,popcnt")]
unsafe fn dot_avx2(plus: &[u64], minus: &[u64], act: &[u64], planes: usize, words: usize) -> i32 {
    debug_assert_eq!(plus.len(), words);
    debug_assert_eq!(minus.len(), words);
    debug_assert!(act.len() >= planes * words);
    let mut acc = 0i32;
    for p in 0..planes {
        let plane = &act[p * words..(p + 1) * words];
        let (pos, neg) = plane_pair_counts(plus, minus, plane, words);
        acc += (pos as i32 - neg as i32) << p;
    }
    acc
}

/// `(popcount(plus & plane), popcount(minus & plane))` over `words` lanes:
/// four lanes per iteration through the nibble-LUT popcount, scalar
/// `popcnt` for the tail.
///
/// # Safety
///
/// Requires AVX2 and POPCNT; callers must check [`available`] first.
#[target_feature(enable = "avx2,popcnt")]
unsafe fn plane_pair_counts(
    plus: &[u64],
    minus: &[u64],
    plane: &[u64],
    words: usize,
) -> (u32, u32) {
    let mut pos_v = _mm256_setzero_si256();
    let mut neg_v = _mm256_setzero_si256();
    let vec_words = words & !3;
    let mut i = 0;
    while i < vec_words {
        // SAFETY: i + 4 <= vec_words <= words == len of each slice, so the
        // unaligned 32-byte loads stay inside the borrowed buffers.
        let (a, p, m) = unsafe {
            (
                _mm256_loadu_si256(plane.as_ptr().add(i).cast::<__m256i>()),
                _mm256_loadu_si256(plus.as_ptr().add(i).cast::<__m256i>()),
                _mm256_loadu_si256(minus.as_ptr().add(i).cast::<__m256i>()),
            )
        };
        pos_v = _mm256_add_epi64(pos_v, popcnt_epi64(_mm256_and_si256(p, a)));
        neg_v = _mm256_add_epi64(neg_v, popcnt_epi64(_mm256_and_si256(m, a)));
        i += 4;
    }
    let mut pos = hsum_epi64(pos_v) as u32;
    let mut neg = hsum_epi64(neg_v) as u32;
    for w in vec_words..words {
        pos += (plus[w] & plane[w]).count_ones();
        neg += (minus[w] & plane[w]).count_ones();
    }
    (pos, neg)
}

/// Per-64-bit-lane popcount of a 256-bit vector (Mula's vpshufb method):
/// nibble-LUT per byte, `_mm256_sad_epu8` to fold bytes into each lane.
#[target_feature(enable = "avx2")]
fn popcnt_epi64(v: __m256i) -> __m256i {
    let lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3,
        3, 4,
    );
    let low_mask = _mm256_set1_epi8(0x0f);
    let lo = _mm256_and_si256(v, low_mask);
    let hi = _mm256_and_si256(_mm256_srli_epi32::<4>(v), low_mask);
    let counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
    _mm256_sad_epu8(counts, _mm256_setzero_si256())
}

/// Horizontal sum of the four 64-bit lanes.
#[target_feature(enable = "avx2")]
fn hsum_epi64(v: __m256i) -> i64 {
    let mut lanes = [0i64; 4];
    // SAFETY: `lanes` is a live 32-byte buffer; unaligned store.
    unsafe { _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), v) };
    lanes.iter().sum()
}
