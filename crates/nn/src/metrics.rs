//! Classification quality metrics.
//!
//! Confusion-matrix-based metrics for evaluating trained/pruned models on
//! the synthetic datasets: top-1 accuracy, per-class recall, and macro
//! recall (balanced accuracy) — the quantities one would report next to the
//! paper's TOP-1 numbers.

use serde::{Deserialize, Serialize};

/// A `classes x classes` confusion matrix (rows = truth, columns =
/// prediction).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is zero.
    #[must_use]
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "need at least one class");
        Self {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Number of classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one `(truth, prediction)` observation.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn record(&mut self, truth: usize, prediction: usize) {
        assert!(
            truth < self.classes && prediction < self.classes,
            "label out of range"
        );
        self.counts[truth * self.classes + prediction] += 1;
    }

    /// Count at `(truth, prediction)`.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    #[must_use]
    pub fn count(&self, truth: usize, prediction: usize) -> u64 {
        assert!(
            truth < self.classes && prediction < self.classes,
            "label out of range"
        );
        self.counts[truth * self.classes + prediction]
    }

    /// Total recorded observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Top-1 accuracy in `[0, 1]` (0 when empty).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        correct as f64 / total as f64
    }

    /// Recall of one class (`None` when the class has no samples).
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    #[must_use]
    pub fn recall(&self, class: usize) -> Option<f64> {
        assert!(class < self.classes, "label out of range");
        let row: u64 = (0..self.classes).map(|p| self.count(class, p)).sum();
        if row == 0 {
            None
        } else {
            Some(self.count(class, class) as f64 / row as f64)
        }
    }

    /// Macro-averaged recall (balanced accuracy) over classes with samples.
    #[must_use]
    pub fn macro_recall(&self) -> f64 {
        let recalls: Vec<f64> = (0..self.classes).filter_map(|c| self.recall(c)).collect();
        if recalls.is_empty() {
            0.0
        } else {
            recalls.iter().sum::<f64>() / recalls.len() as f64
        }
    }

    /// Merges another matrix of the same shape into this one.
    ///
    /// # Panics
    ///
    /// Panics if the class counts differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.classes, other.classes, "class counts differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

/// Evaluates a classifier over `len` samples of `data` starting at `start`,
/// returning the filled confusion matrix.
pub fn evaluate_confusion<F>(
    data: &crate::dataset::SyntheticDataset,
    start: u64,
    len: usize,
    mut classify: F,
) -> ConfusionMatrix
where
    F: FnMut(&crate::tensor::Activations) -> usize,
{
    let classes = data.spec().classes;
    let mut cm = ConfusionMatrix::new(classes);
    for i in 0..len as u64 {
        let sample = data.sample(start + i);
        cm.record(sample.label, classify(&sample.image).min(classes - 1));
    }
    cm
}

/// Multi-threaded [`evaluate_confusion`]: materializes `len` samples and
/// classifies them through `runner`, sharded across worker threads. The
/// matrix is bit-identical to the serial per-image evaluation (labels are
/// order-preserving and each inference is a pure function).
///
/// # Errors
///
/// Propagates the first engine error (e.g. a graph/input shape mismatch).
pub fn evaluate_confusion_batched(
    data: &crate::dataset::SyntheticDataset,
    start: u64,
    len: usize,
    runner: &crate::engine::BatchRunner<'_>,
) -> Result<ConfusionMatrix, crate::error::NnError> {
    let classes = data.spec().classes;
    let (images, labels): (Vec<_>, Vec<_>) = data
        .batch(start, len)
        .into_iter()
        .map(|s| (s.image, s.label))
        .unzip();
    let preds = runner.run(&images)?;
    let mut cm = ConfusionMatrix::new(classes);
    for (truth, pred) in labels.into_iter().zip(preds) {
        cm.record(truth, pred.min(classes - 1));
    }
    Ok(cm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetSpec, SyntheticDataset};

    #[test]
    fn perfect_classifier_has_unit_accuracy() {
        let mut cm = ConfusionMatrix::new(3);
        for c in 0..3 {
            for _ in 0..5 {
                cm.record(c, c);
            }
        }
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.macro_recall(), 1.0);
        assert_eq!(cm.total(), 15);
    }

    #[test]
    fn recall_per_class() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 0);
        cm.record(0, 1);
        cm.record(1, 1);
        assert_eq!(cm.recall(0), Some(0.5));
        assert_eq!(cm.recall(1), Some(1.0));
        assert!((cm.macro_recall() - 0.75).abs() < 1e-12);
        assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_class_excluded_from_macro() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        assert_eq!(cm.recall(2), None);
        assert_eq!(cm.macro_recall(), 1.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ConfusionMatrix::new(2);
        a.record(0, 0);
        let mut b = ConfusionMatrix::new(2);
        b.record(0, 1);
        b.record(1, 1);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count(0, 1), 1);
    }

    #[test]
    fn evaluate_against_dataset() {
        let data = SyntheticDataset::new(DatasetSpec::tiny(4), 5);
        // Constant classifier: accuracy equals the frequency of class 0.
        let cm = evaluate_confusion(&data, 0, 100, |_| 0);
        assert_eq!(cm.total(), 100);
        let class0: u64 = (0..4).map(|p| cm.count(0, p)).sum();
        assert_eq!(cm.accuracy(), class0 as f64 / 100.0);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_panics() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(2, 0);
    }
}
