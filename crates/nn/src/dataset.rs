//! Synthetic datasets.
//!
//! The paper trains/evaluates on CIFAR-10 and GTSRB. Shipping those datasets
//! is not possible here, so we substitute seeded synthetic datasets with the
//! same geometry (3x32x32 inputs; 10 / 43 classes) and a class-conditional
//! Gaussian-mixture structure: each class owns a random template image and
//! samples are noisy draws around it. This preserves what the reproduction
//! needs from the data — a classification task whose difficulty scales with
//! noise, exercising the training, pruning-retrain and evaluation paths on
//! real tensors (see DESIGN.md §1 for the substitution table).
//!
//! All sampling is deterministic in the dataset seed.

use crate::tensor::Activations;
use adaflow_model::TensorShape;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A labelled sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// The input image.
    pub image: Activations,
    /// Ground-truth class in `0..classes`.
    pub label: usize,
}

/// Geometry and difficulty of a synthetic dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset display name.
    pub name: String,
    /// Number of classes.
    pub classes: usize,
    /// Input shape.
    pub shape: TensorShape,
    /// Template amplitude (peak brightness of class structure), `0..=255`.
    pub amplitude: u8,
    /// Standard deviation of per-pixel additive noise.
    pub noise_sigma: f64,
}

impl DatasetSpec {
    /// CIFAR-10-like geometry: 3x32x32, 10 classes.
    #[must_use]
    pub fn cifar10_like() -> Self {
        Self {
            name: "cifar10-like".into(),
            classes: 10,
            shape: TensorShape::new(3, 32, 32),
            amplitude: 180,
            noise_sigma: 28.0,
        }
    }

    /// GTSRB-like geometry: 3x32x32 (the paper rescales GTSRB to CIFAR-10
    /// resolution), 43 classes.
    #[must_use]
    pub fn gtsrb_like() -> Self {
        Self {
            name: "gtsrb-like".into(),
            classes: 43,
            shape: TensorShape::new(3, 32, 32),
            amplitude: 200,
            noise_sigma: 22.0,
        }
    }

    /// MNIST-like geometry matching [`adaflow_model::topology::lenet`]:
    /// 1x28x28 grayscale, 10 classes.
    #[must_use]
    pub fn mnist_like() -> Self {
        Self {
            name: "mnist-like".into(),
            classes: 10,
            shape: TensorShape::new(1, 28, 28),
            amplitude: 220,
            noise_sigma: 20.0,
        }
    }

    /// Tiny dataset matching [`adaflow_model::topology::tiny`]: 1x12x12.
    #[must_use]
    pub fn tiny(classes: usize) -> Self {
        Self {
            name: format!("tiny-{classes}"),
            classes,
            shape: TensorShape::new(1, 12, 12),
            amplitude: 200,
            noise_sigma: 12.0,
        }
    }
}

/// A seeded synthetic classification dataset.
///
/// Samples are indexed; `sample(i)` is deterministic in `(seed, i)`, so a
/// "test set" is simply a disjoint index range from the "train set".
///
/// ```
/// use adaflow_nn::{DatasetSpec, SyntheticDataset};
///
/// let data = SyntheticDataset::new(DatasetSpec::cifar10_like(), 7);
/// let a = data.sample(0);
/// let b = data.sample(0);
/// assert_eq!(a, b); // deterministic
/// assert!(a.label < 10);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    spec: DatasetSpec,
    seed: u64,
    templates: Vec<Vec<u8>>,
}

impl SyntheticDataset {
    /// Creates a dataset with per-class templates drawn from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec has zero classes or an empty shape.
    #[must_use]
    pub fn new(spec: DatasetSpec, seed: u64) -> Self {
        assert!(spec.classes > 0, "dataset needs at least one class");
        assert!(spec.shape.elements() > 0, "dataset shape must be nonempty");
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0DA7_A5E7);
        let n = spec.shape.elements();
        let amplitude = spec.amplitude;
        let templates = (0..spec.classes)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        // Smooth-ish class structure: blocky random pattern.
                        if rng.gen_bool(0.5) {
                            amplitude
                        } else {
                            amplitude / 4
                        }
                    })
                    .collect()
            })
            .collect();
        Self {
            spec,
            seed,
            templates,
        }
    }

    /// The dataset spec.
    #[must_use]
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// The template image of one class (noise-free class prototype).
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    #[must_use]
    pub fn template(&self, class: usize) -> Activations {
        Activations::from_vec(self.spec.shape, self.templates[class].clone())
    }

    /// Deterministically generates sample `index`.
    #[must_use]
    pub fn sample(&self, index: u64) -> Sample {
        let mut rng =
            ChaCha8Rng::seed_from_u64(self.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let label = (rng.gen::<u64>() % self.spec.classes as u64) as usize;
        let template = &self.templates[label];
        let sigma = self.spec.noise_sigma;
        let data = template
            .iter()
            .map(|&t| {
                // Box-Muller-free approximate Gaussian: sum of uniforms.
                let u: f64 = (0..4).map(|_| rng.gen::<f64>()).sum::<f64>() - 2.0;
                let noise = u * sigma; // var(sum of 4 U(0,1)) = 1/3; close enough
                (f64::from(t) + noise).clamp(0.0, 255.0) as u8
            })
            .collect();
        Sample {
            image: Activations::from_vec(self.spec.shape, data),
            label,
        }
    }

    /// Generates a batch of consecutive samples starting at `start`.
    #[must_use]
    pub fn batch(&self, start: u64, len: usize) -> Vec<Sample> {
        (0..len as u64).map(|i| self.sample(start + i)).collect()
    }

    /// Measures top-1 accuracy of `classify` over `len` samples starting at
    /// `start` (use a range disjoint from training indices for test
    /// accuracy).
    pub fn evaluate<F>(&self, start: u64, len: usize, mut classify: F) -> f64
    where
        F: FnMut(&Activations) -> usize,
    {
        if len == 0 {
            return 0.0;
        }
        let mut correct = 0usize;
        for i in 0..len as u64 {
            let s = self.sample(start + i);
            if classify(&s.image) == s.label {
                correct += 1;
            }
        }
        correct as f64 / len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_deterministic() {
        let d = SyntheticDataset::new(DatasetSpec::tiny(4), 99);
        assert_eq!(d.sample(5), d.sample(5));
        let d2 = SyntheticDataset::new(DatasetSpec::tiny(4), 99);
        assert_eq!(d.sample(5), d2.sample(5));
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticDataset::new(DatasetSpec::tiny(4), 1);
        let b = SyntheticDataset::new(DatasetSpec::tiny(4), 2);
        assert_ne!(a.sample(0), b.sample(0));
    }

    #[test]
    fn labels_in_range_and_varied() {
        let d = SyntheticDataset::new(DatasetSpec::cifar10_like(), 3);
        let labels: Vec<usize> = (0..64).map(|i| d.sample(i).label).collect();
        assert!(labels.iter().all(|&l| l < 10));
        let distinct: std::collections::HashSet<_> = labels.iter().collect();
        assert!(distinct.len() > 3, "labels should be spread across classes");
    }

    #[test]
    fn mnist_like_matches_lenet_geometry() {
        let spec = DatasetSpec::mnist_like();
        assert_eq!(spec.classes, 10);
        assert_eq!(spec.shape, TensorShape::new(1, 28, 28));
    }

    #[test]
    fn gtsrb_like_has_43_classes() {
        let spec = DatasetSpec::gtsrb_like();
        assert_eq!(spec.classes, 43);
        assert_eq!(spec.shape, TensorShape::new(3, 32, 32));
    }

    #[test]
    fn template_classifier_beats_chance() {
        // Nearest-template classification must do far better than chance on
        // this data — sanity check that the task has learnable structure.
        let d = SyntheticDataset::new(DatasetSpec::tiny(4), 7);
        let templates: Vec<Activations> = (0..4).map(|c| d.template(c)).collect();
        let acc = d.evaluate(1000, 200, |img| {
            templates
                .iter()
                .enumerate()
                .min_by_key(|(_, t)| {
                    t.as_slice()
                        .iter()
                        .zip(img.as_slice())
                        .map(|(&a, &b)| {
                            let diff = i64::from(a) - i64::from(b);
                            diff * diff
                        })
                        .sum::<i64>()
                })
                .map(|(i, _)| i)
                .unwrap_or(0)
        });
        assert!(acc > 0.9, "nearest-template accuracy was only {acc}");
    }

    #[test]
    fn batch_is_consecutive_samples() {
        let d = SyntheticDataset::new(DatasetSpec::tiny(4), 11);
        let batch = d.batch(10, 3);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0], d.sample(10));
        assert_eq!(batch[2], d.sample(12));
    }

    #[test]
    fn evaluate_empty_returns_zero() {
        let d = SyntheticDataset::new(DatasetSpec::tiny(4), 11);
        assert_eq!(d.evaluate(0, 0, |_| 0), 0.0);
    }
}
