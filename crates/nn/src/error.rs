//! Error types for inference and training.

use adaflow_model::{ModelError, TensorShape};
use thiserror::Error;

/// Errors produced by the inference engine, trainer or dataset layer.
#[derive(Debug, Clone, PartialEq, Error)]
#[non_exhaustive]
pub enum NnError {
    /// The input tensor does not match the graph's declared input shape.
    #[error("input shape {found} does not match graph input {expected}")]
    InputShape {
        /// Shape the graph expects.
        expected: TensorShape,
        /// Shape that was supplied.
        found: TensorShape,
    },

    /// A graph-level problem surfaced during execution.
    #[error(transparent)]
    Model(#[from] ModelError),

    /// The graph contains a layer arrangement the engine cannot execute
    /// (e.g. a dense layer before spatial layers).
    #[error("unsupported graph structure: {0}")]
    Unsupported(String),

    /// Training was configured with invalid hyper-parameters.
    #[error("invalid training configuration: {0}")]
    InvalidConfig(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }

    #[test]
    fn model_error_converts() {
        let err: NnError = ModelError::UnknownLayer(3).into();
        assert!(matches!(err, NnError::Model(_)));
        assert_eq!(err.to_string(), "unknown layer id 3");
    }

    #[test]
    fn input_shape_message() {
        let err = NnError::InputShape {
            expected: TensorShape::new(3, 32, 32),
            found: TensorShape::new(1, 32, 32),
        };
        assert!(err.to_string().contains("3x32x32"));
    }
}
