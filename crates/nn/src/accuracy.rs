//! Calibrated accuracy-vs-pruning model.
//!
//! At CNV scale, retraining each of the 18 pruned variants for 40 epochs (as
//! the paper does on a Tesla K20m) is outside this reproduction's budget, so
//! model accuracy is supplied by an analytical curve anchored to the paper's
//! published operating points:
//!
//! * the unpruned TOP-1 baselines of the CNV variants,
//! * the −9.9 %-points drop at 25 % pruning on CNVW2A2/CIFAR-10 (Fig. 5b),
//! * the steady decline toward 85 % pruning visible in Fig. 1(a).
//!
//! The curve is `drop(p) = c1·p + c3·p³` (percentage points, `p ∈ [0, 1]`),
//! which reproduces the near-linear low-rate regime and the steeper tail.
//! The real-training path (small scale) lives in [`crate::train`].

use crate::dataset::DatasetSpec;
use adaflow_model::QuantSpec;
use serde::{Deserialize, Serialize};

/// The two evaluation datasets of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// CIFAR-10 (10 classes, 3x32x32).
    Cifar10,
    /// German Traffic Sign Recognition Benchmark, rescaled to 3x32x32
    /// (43 classes).
    Gtsrb,
}

impl DatasetKind {
    /// Number of classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        match self {
            DatasetKind::Cifar10 => 10,
            DatasetKind::Gtsrb => 43,
        }
    }

    /// The synthetic stand-in dataset spec (see DESIGN.md §1).
    #[must_use]
    pub fn spec(&self) -> DatasetSpec {
        match self {
            DatasetKind::Cifar10 => DatasetSpec::cifar10_like(),
            DatasetKind::Gtsrb => DatasetSpec::gtsrb_like(),
        }
    }

    /// Short lowercase name used in model/library identifiers.
    #[must_use]
    pub fn short_name(&self) -> &'static str {
        match self {
            DatasetKind::Cifar10 => "cifar10",
            DatasetKind::Gtsrb => "gtsrb",
        }
    }

    /// Both datasets, in the paper's order.
    #[must_use]
    pub fn all() -> [DatasetKind; 2] {
        [DatasetKind::Cifar10, DatasetKind::Gtsrb]
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Analytical TOP-1 accuracy as a function of the filter-pruning rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyModel {
    /// Unpruned TOP-1 accuracy in percent.
    pub base: f64,
    /// Linear drop coefficient (percentage points at p = 1).
    pub c1: f64,
    /// Cubic drop coefficient.
    pub c3: f64,
    /// Accuracy floor (chance level) in percent.
    pub floor: f64,
}

impl AccuracyModel {
    /// An explicit model.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not in `(floor, 100]` or coefficients are
    /// negative.
    #[must_use]
    pub fn new(base: f64, c1: f64, c3: f64, floor: f64) -> Self {
        assert!(base > floor && base <= 100.0, "base accuracy out of range");
        assert!(
            c1 >= 0.0 && c3 >= 0.0,
            "drop coefficients must be nonnegative"
        );
        Self {
            base,
            c1,
            c3,
            floor,
        }
    }

    /// The calibrated model for one paper dataset/CNN combination.
    ///
    /// Calibration anchors (see module docs): CNVW2A2/CIFAR-10 loses 9.9
    /// points at 25 % pruning; the other combinations scale that curve by a
    /// redundancy factor.
    #[must_use]
    pub fn calibrated(dataset: DatasetKind, quant: QuantSpec) -> Self {
        // Reference curve fitted to drop(0.25) = 9.9 and drop(0.85) = 38.
        const C1: f64 = 39.12;
        const C3: f64 = 7.73;
        // Steepness stays at or slightly below 1.0 for every combination:
        // Table I shows all four dataset/model pairs adapting under the
        // 10% threshold, which requires the 25% pruning point to stay
        // within ~10 points of the unpruned accuracy.
        let (base, steepness) = match (dataset, quant.weight_bits) {
            (DatasetKind::Cifar10, 2) => (84.8, 1.0),
            (DatasetKind::Cifar10, _) => (79.5, 0.99),
            (DatasetKind::Gtsrb, 2) => (96.5, 0.96),
            (DatasetKind::Gtsrb, _) => (94.0, 0.97),
        };
        let floor = 100.0 / dataset.classes() as f64;
        Self::new(base, C1 * steepness, C3 * steepness, floor)
    }

    /// Accuracy drop in percentage points at pruning rate `p ∈ [0, 1]`.
    #[must_use]
    pub fn drop_at(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        (self.c1 * p + self.c3 * p * p * p).min(self.base - self.floor)
    }

    /// TOP-1 accuracy in percent at pruning rate `p ∈ [0, 1]`, floored at
    /// chance level.
    #[must_use]
    pub fn accuracy_at(&self, p: f64) -> f64 {
        (self.base - self.drop_at(p)).max(self.floor)
    }

    /// Largest pruning rate whose accuracy drop stays within
    /// `max_loss_points` — the paper's accuracy-threshold concept (10 % in
    /// the evaluation). Returns a rate in `[0, 1]`.
    #[must_use]
    pub fn max_pruning_for_loss(&self, max_loss_points: f64) -> f64 {
        if max_loss_points <= 0.0 {
            return 0.0;
        }
        // Bisection on the monotone drop curve.
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        if self.drop_at(hi) <= max_loss_points {
            return hi;
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.drop_at(mid) <= max_loss_points {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cifar10_w2a2_anchor_points() {
        let m = AccuracyModel::calibrated(DatasetKind::Cifar10, QuantSpec::w2a2());
        assert!((m.accuracy_at(0.0) - 84.8).abs() < 1e-9);
        // Paper: 9.9-point loss at 25 % pruning.
        assert!(
            (m.drop_at(0.25) - 9.9).abs() < 0.1,
            "drop at 25% = {}",
            m.drop_at(0.25)
        );
    }

    #[test]
    fn accuracy_is_monotone_decreasing() {
        for dataset in DatasetKind::all() {
            for quant in [QuantSpec::w2a2(), QuantSpec::w1a2()] {
                let m = AccuracyModel::calibrated(dataset, quant);
                let mut prev = f64::INFINITY;
                for step in 0..=17 {
                    let acc = m.accuracy_at(step as f64 * 0.05);
                    assert!(acc <= prev + 1e-12);
                    prev = acc;
                }
            }
        }
    }

    #[test]
    fn accuracy_never_below_chance() {
        let m = AccuracyModel::calibrated(DatasetKind::Cifar10, QuantSpec::w1a2());
        assert!(m.accuracy_at(1.0) >= 10.0);
        let g = AccuracyModel::calibrated(DatasetKind::Gtsrb, QuantSpec::w1a2());
        assert!(g.accuracy_at(1.0) >= 100.0 / 43.0);
    }

    #[test]
    fn ten_percent_threshold_allows_about_quarter_pruning() {
        // The paper's 10 % threshold admits models up to ~25 % pruning.
        let m = AccuracyModel::calibrated(DatasetKind::Cifar10, QuantSpec::w2a2());
        let p = m.max_pruning_for_loss(10.0);
        assert!(
            (0.22..=0.30).contains(&p),
            "max pruning for 10% loss was {p}"
        );
    }

    #[test]
    fn zero_threshold_admits_no_pruning() {
        let m = AccuracyModel::calibrated(DatasetKind::Cifar10, QuantSpec::w2a2());
        assert_eq!(m.max_pruning_for_loss(0.0), 0.0);
    }

    #[test]
    fn huge_threshold_admits_full_range() {
        let m = AccuracyModel::calibrated(DatasetKind::Cifar10, QuantSpec::w2a2());
        assert_eq!(m.max_pruning_for_loss(1000.0), 1.0);
    }

    #[test]
    fn gtsrb_base_is_higher_than_cifar() {
        let g = AccuracyModel::calibrated(DatasetKind::Gtsrb, QuantSpec::w2a2());
        let c = AccuracyModel::calibrated(DatasetKind::Cifar10, QuantSpec::w2a2());
        assert!(g.base > c.base);
    }

    #[test]
    fn w1a2_base_is_lower_than_w2a2() {
        for dataset in DatasetKind::all() {
            let w2 = AccuracyModel::calibrated(dataset, QuantSpec::w2a2());
            let w1 = AccuracyModel::calibrated(dataset, QuantSpec::w1a2());
            assert!(w1.base < w2.base);
        }
    }

    #[test]
    #[should_panic(expected = "base accuracy out of range")]
    fn rejects_base_below_floor() {
        let _ = AccuracyModel::new(5.0, 1.0, 1.0, 10.0);
    }

    #[test]
    fn dataset_kind_metadata() {
        assert_eq!(DatasetKind::Cifar10.classes(), 10);
        assert_eq!(DatasetKind::Gtsrb.classes(), 43);
        assert_eq!(DatasetKind::Gtsrb.to_string(), "gtsrb");
        assert_eq!(DatasetKind::Cifar10.spec().classes, 10);
    }
}
