//! Quantization-aware (re)training.
//!
//! The original flow retrains each pruned model for 40 epochs in Brevitas.
//! We reproduce the mechanism at laptop scale: a straight-through-estimator
//! (STE) SGD trainer that keeps a float shadow of every weight tensor,
//! trains with softmax cross-entropy on a [`SyntheticDataset`], then writes
//! quantized weights back into the graph and recalibrates every
//! multi-threshold table from observed accumulator quantiles (what real QAT
//! exporters do when folding batch-norm into thresholds).
//!
//! The trainer handles any graph built from this crate's layer set; it is
//! exercised on the `tiny` topology in tests and by the pruning crate's
//! retrain step. CNV-scale accuracy numbers come from the calibrated
//! [`crate::accuracy`] model instead (see DESIGN.md §1).

use crate::dataset::SyntheticDataset;
use crate::engine::{self, BatchRunner, Engine};
use crate::error::NnError;
use crate::parallel;
use crate::tensor::Activations;
use adaflow_model::{CnnGraph, Layer, QuantSpec, TensorShape, ThresholdTable};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Hyper-parameters of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingConfig {
    /// Number of passes over the training range.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate (the paper uses 0.001 with decay 0.1; we default to
    /// a larger rate suited to the small synthetic problems).
    pub learning_rate: f32,
    /// Multiplicative learning-rate decay applied after each epoch.
    pub lr_decay: f32,
    /// Number of training samples (dataset indices `0..train_samples`).
    pub train_samples: usize,
    /// Number of held-out evaluation samples (indices starting at
    /// `train_samples + 10_000` to stay disjoint).
    pub eval_samples: usize,
    /// Samples used for threshold calibration.
    pub calibration_samples: usize,
    /// RNG seed for weight init and shuffling.
    pub seed: u64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        Self {
            epochs: 8,
            batch_size: 16,
            learning_rate: 0.05,
            lr_decay: 0.7,
            train_samples: 256,
            eval_samples: 128,
            calibration_samples: 64,
            seed: 42,
        }
    }
}

impl TrainingConfig {
    /// Validates hyper-parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when a parameter is degenerate
    /// (zero epochs/batch/samples, non-positive learning rate).
    pub fn validate(&self) -> Result<(), NnError> {
        if self.epochs == 0 {
            return Err(NnError::InvalidConfig("epochs must be nonzero".into()));
        }
        if self.batch_size == 0 || self.train_samples == 0 {
            return Err(NnError::InvalidConfig(
                "batch and train sizes must be nonzero".into(),
            ));
        }
        if self.learning_rate <= 0.0
            || self.lr_decay <= 0.0
            || !self.learning_rate.is_finite()
            || !self.lr_decay.is_finite()
        {
            return Err(NnError::InvalidConfig(
                "learning rate and decay must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingReport {
    /// Mean cross-entropy loss of the final epoch.
    pub final_loss: f64,
    /// Top-1 accuracy of the float shadow network on the held-out range.
    pub float_accuracy: f64,
    /// Top-1 accuracy of the quantized graph (integer engine) on the
    /// held-out range, after weight write-back and threshold calibration.
    pub quantized_accuracy: f64,
}

/// Float shadow of one layer.
#[derive(Debug, Clone)]
enum Shadow {
    Conv {
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        quant: QuantSpec,
        w: Vec<f32>,
    },
    Dense {
        inf: usize,
        outf: usize,
        quant: QuantSpec,
        w: Vec<f32>,
    },
    /// Clipped-linear stand-in for the multi-threshold activation:
    /// `a = clamp(acc / scale, 0, levels)` with STE gradient.
    Act {
        levels: f32,
        scale: f32,
    },
    Pool {
        kernel: usize,
        stride: usize,
    },
    Label,
}

/// Cached forward values of one layer (inputs needed by backward).
#[derive(Debug, Clone)]
struct Cache {
    input: Vec<f32>,
    in_shape: TensorShape,
    out_shape: TensorShape,
    /// Pool: argmax index per output element; Act: in-range mask.
    aux: Vec<usize>,
}

/// The STE SGD trainer.
///
/// Owns a float shadow of the graph; [`Trainer::train`] consumes dataset
/// samples and [`Trainer::into_quantized_graph`] writes trained weights back
/// into a (threshold-recalibrated) quantized graph.
#[derive(Debug, Clone)]
pub struct Trainer {
    graph: CnnGraph,
    shadow: Vec<Shadow>,
}

impl Trainer {
    /// Builds a trainer for `graph`, initializing shadow weights with seeded
    /// He-style random values.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Unsupported`] if the graph is not executable (see
    /// [`Engine::new`]).
    pub fn new(graph: &CnnGraph, seed: u64) -> Result<Self, NnError> {
        Engine::new(graph)?; // structural validation
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7124_1AB5);
        let shadow = graph
            .iter()
            .map(|node| match &node.layer {
                Layer::Conv2d(c) => {
                    let fan_in = (c.in_channels * c.kernel * c.kernel) as f32;
                    let std = (2.0 / fan_in).sqrt();
                    let w = (0..c.weights.len())
                        .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * std)
                        .collect();
                    Shadow::Conv {
                        in_ch: c.in_channels,
                        out_ch: c.out_channels,
                        kernel: c.kernel,
                        stride: c.stride,
                        padding: c.padding,
                        quant: c.quant,
                        w,
                    }
                }
                Layer::Dense(d) => {
                    let std = (2.0 / d.in_features as f32).sqrt();
                    let w = (0..d.in_features * d.out_features)
                        .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * std)
                        .collect();
                    Shadow::Dense {
                        inf: d.in_features,
                        outf: d.out_features,
                        quant: d.quant,
                        w,
                    }
                }
                Layer::MultiThreshold(t) => Shadow::Act {
                    levels: t.table.levels() as f32,
                    // One activation step per unit of accumulator by default;
                    // the float net learns around this scale.
                    scale: 1.0,
                },
                Layer::MaxPool2d(p) => Shadow::Pool {
                    kernel: p.kernel,
                    stride: p.stride,
                },
                Layer::LabelSelect(_) => Shadow::Label,
            })
            .collect();
        Ok(Self {
            graph: graph.clone(),
            shadow,
        })
    }

    /// Float forward pass; returns logits and per-layer caches.
    fn forward(&self, image: &Activations) -> (Vec<f32>, Vec<Cache>) {
        let mut x: Vec<f32> = image
            .as_slice()
            .iter()
            .map(|&v| f32::from(v) / 255.0)
            .collect();
        let mut caches = Vec::with_capacity(self.shadow.len());
        let mut shape = image.shape();
        for (layer, node) in self.shadow.iter().zip(self.graph.iter()) {
            let out_shape = node.output_shape;
            let (out, aux) = match layer {
                Shadow::Conv {
                    in_ch,
                    out_ch,
                    kernel,
                    stride,
                    padding,
                    w,
                    ..
                } => (
                    conv_f32(
                        &x, shape, out_shape, *in_ch, *out_ch, *kernel, *stride, *padding, w,
                    ),
                    Vec::new(),
                ),
                Shadow::Dense { inf, outf, w, .. } => {
                    let mut out = vec![0f32; *outf];
                    for o in 0..*outf {
                        let row = &w[o * inf..(o + 1) * inf];
                        out[o] = row.iter().zip(&x).map(|(a, b)| a * b).sum();
                    }
                    (out, Vec::new())
                }
                Shadow::Act { levels, scale } => {
                    let mut aux = vec![0usize; x.len()];
                    let out = x
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| {
                            let a = v / scale;
                            if a > 0.0 && a < *levels {
                                aux[i] = 1;
                            }
                            a.clamp(0.0, *levels)
                        })
                        .collect();
                    (out, aux)
                }
                Shadow::Pool { kernel, stride } => pool_f32(&x, shape, out_shape, *kernel, *stride),
                Shadow::Label => (x.clone(), Vec::new()),
            };
            caches.push(Cache {
                input: std::mem::take(&mut x),
                in_shape: shape,
                out_shape,
                aux,
            });
            x = out;
            shape = out_shape;
        }
        // Logits are the input of the label-select layer.
        let logits = caches.last().map(|c| c.input.clone()).unwrap_or_default();
        (logits, caches)
    }

    /// One SGD step on a batch; returns the mean cross-entropy loss.
    fn step(&mut self, batch: &[(Activations, usize)], lr: f32) -> f64 {
        let mut total_loss = 0.0;
        let scale = lr / batch.len() as f32;
        // Accumulate gradients per layer.
        let mut grads: Vec<Vec<f32>> = self
            .shadow
            .iter()
            .map(|l| match l {
                Shadow::Conv { w, .. } | Shadow::Dense { w, .. } => vec![0f32; w.len()],
                _ => Vec::new(),
            })
            .collect();
        for (image, label) in batch {
            let (logits, caches) = self.forward(image);
            let probs = softmax(&logits);
            total_loss += -f64::from(probs[*label].max(1e-12).ln());
            // dL/dlogits
            let mut g: Vec<f32> = probs;
            g[*label] -= 1.0;
            // Backward in reverse layer order (skip the label layer, whose
            // input gradient is g itself).
            for (idx, layer) in self.shadow.iter().enumerate().rev() {
                let cache = &caches[idx];
                g = match layer {
                    Shadow::Label => g,
                    Shadow::Act { levels: _, scale } => g
                        .iter()
                        .zip(&cache.aux)
                        .map(|(&gi, &m)| if m == 1 { gi / scale } else { 0.0 })
                        .collect(),
                    Shadow::Pool { .. } => {
                        let mut gin = vec![0f32; cache.input.len()];
                        for (o, &src) in cache.aux.iter().enumerate() {
                            gin[src] += g[o];
                        }
                        gin
                    }
                    Shadow::Dense { inf, outf, .. } => {
                        let gw = &mut grads[idx];
                        let x = &cache.input;
                        let Shadow::Dense { w, .. } = &self.shadow[idx] else {
                            unreachable!()
                        };
                        let mut gin = vec![0f32; *inf];
                        for o in 0..*outf {
                            let go = g[o];
                            let row = &w[o * inf..(o + 1) * inf];
                            let grow = &mut gw[o * inf..(o + 1) * inf];
                            for i in 0..*inf {
                                grow[i] += go * x[i];
                                gin[i] += go * row[i];
                            }
                        }
                        gin
                    }
                    Shadow::Conv {
                        in_ch,
                        out_ch,
                        kernel,
                        stride,
                        padding,
                        w,
                        ..
                    } => conv_backward_f32(
                        &g,
                        cache,
                        *in_ch,
                        *out_ch,
                        *kernel,
                        *stride,
                        *padding,
                        w,
                        &mut grads[idx],
                    ),
                };
            }
        }
        // Apply accumulated gradients.
        for (layer, gw) in self.shadow.iter_mut().zip(&grads) {
            match layer {
                Shadow::Conv { w, .. } | Shadow::Dense { w, .. } => {
                    for (wi, gi) in w.iter_mut().zip(gw) {
                        *wi -= scale * gi;
                    }
                }
                _ => {}
            }
        }
        total_loss / batch.len() as f64
    }

    /// Trains on `data` and returns the trained quantized graph plus a
    /// report. The returned graph has trained quantized weights and
    /// recalibrated thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for degenerate hyper-parameters,
    /// or engine errors from evaluation.
    pub fn train(
        self,
        data: &SyntheticDataset,
        config: &TrainingConfig,
    ) -> Result<(CnnGraph, TrainingReport), NnError> {
        self.train_observed(data, config, |_, _| {})
    }

    /// Like [`Trainer::train`], invoking `observer(epoch, mean_loss)` after
    /// every epoch. The trainer stays sink-agnostic: callers adapt the
    /// callback to their own event sink.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for degenerate hyper-parameters,
    /// or engine errors from evaluation.
    pub fn train_observed(
        mut self,
        data: &SyntheticDataset,
        config: &TrainingConfig,
        mut observer: impl FnMut(usize, f64),
    ) -> Result<(CnnGraph, TrainingReport), NnError> {
        config.validate()?;
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x5EED);
        let mut lr = config.learning_rate;
        let mut final_loss = 0.0;
        for epoch in 0..config.epochs {
            let mut order: Vec<u64> = (0..config.train_samples as u64).collect();
            // Fisher-Yates shuffle.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(config.batch_size) {
                let batch: Vec<(Activations, usize)> = chunk
                    .iter()
                    .map(|&i| {
                        let s = data.sample(i);
                        (s.image, s.label)
                    })
                    .collect();
                epoch_loss += self.step(&batch, lr);
                batches += 1;
            }
            final_loss = epoch_loss / batches.max(1) as f64;
            observer(epoch, final_loss);
            lr *= config.lr_decay;
        }
        let eval_start = config.train_samples as u64 + 10_000;
        // Held-out evaluation runs batched: samples are materialized once,
        // the float net is mapped over worker threads, and the integer
        // engine goes through the BatchRunner (one scratch arena per
        // worker). Results are order-preserving, hence bit-identical to the
        // serial per-image loop.
        let eval_set = data.batch(eval_start, config.eval_samples);
        let (images, labels): (Vec<Activations>, Vec<usize>) =
            eval_set.into_iter().map(|s| (s.image, s.label)).unzip();
        let float_preds = parallel::par_map(&images, 0, |img| {
            let (logits, _) = self.forward(img);
            argmax_f32(&logits)
        });
        let float_accuracy = fraction_correct(&float_preds, &labels);
        let quantized = self.into_quantized_graph(data, config)?;
        let engine = Engine::new(&quantized)?;
        let quantized_preds = BatchRunner::new(engine).run(&images)?;
        let quantized_accuracy = fraction_correct(&quantized_preds, &labels);
        Ok((
            quantized,
            TrainingReport {
                final_loss,
                float_accuracy,
                quantized_accuracy,
            },
        ))
    }

    /// Writes trained shadow weights back into a quantized graph and
    /// recalibrates every threshold table from accumulator quantiles
    /// observed on a calibration batch.
    ///
    /// # Errors
    ///
    /// Propagates graph reconstruction errors.
    pub fn into_quantized_graph(
        &self,
        data: &SyntheticDataset,
        config: &TrainingConfig,
    ) -> Result<CnnGraph, NnError> {
        // 1. Quantize weights.
        let mut chain = self.graph.to_layer_chain();
        for ((_, layer), shadow) in chain.iter_mut().zip(&self.shadow) {
            match (layer, shadow) {
                (Layer::Conv2d(c), Shadow::Conv { w, quant, .. }) => {
                    quantize_into(w, *quant, c.weights.as_mut_slice());
                }
                (Layer::Dense(d), Shadow::Dense { w, quant, .. }) => {
                    quantize_into(w, *quant, d.weights.as_mut_slice());
                }
                _ => {}
            }
        }
        let graph = self.graph.with_layers(chain)?;

        // 2. Calibrate thresholds layer by layer on integer accumulators.
        let calib: Vec<Activations> = (0..config.calibration_samples as u64)
            .map(|i| data.sample(i).image)
            .collect();
        let graph = calibrate_thresholds(&graph, &calib)?;
        Ok(graph)
    }
}

/// Top-1 accuracy of `preds` against `labels` (0.0 when empty, matching
/// [`SyntheticDataset::evaluate`]).
fn fraction_correct(preds: &[usize], labels: &[usize]) -> f64 {
    if preds.is_empty() {
        return 0.0;
    }
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f64 / preds.len() as f64
}

/// Quantizes float weights into the integer domain by max-abs scaling.
fn quantize_into(w: &[f32], quant: QuantSpec, out: &mut [i8]) {
    let domain = quant.weight_domain();
    let max_abs = w.iter().fold(0f32, |m, &v| m.max(v.abs())).max(1e-12);
    let scale = domain.max as f32 / max_abs;
    for (o, &v) in out.iter_mut().zip(w) {
        let q = (v * scale).round() as i64;
        *o = domain.clamp(q) as i8;
    }
}

/// Re-derives every threshold table from per-channel accumulator quantiles
/// on a calibration batch, walking the graph layer by layer with the
/// integer engine semantics.
fn calibrate_thresholds(graph: &CnnGraph, calib: &[Activations]) -> Result<CnnGraph, NnError> {
    if calib.is_empty() {
        return Ok(graph.clone());
    }
    let mut chain = graph.to_layer_chain();
    // Current quantized activations per calibration sample.
    let mut state: Vec<Activations> = calib.to_vec();
    let mut pending: Vec<Vec<i32>> = Vec::new(); // accumulators per sample
    for (idx, node) in graph.iter().enumerate() {
        match &node.layer {
            Layer::Conv2d(_) | Layer::Dense(_) => {
                // Run the MVTU on each sample (sharded over worker threads;
                // the map preserves sample order); stash accumulators.
                let layer = &chain[idx].1;
                pending = parallel::par_map(&state, 0, |acts| {
                    mvtu_accumulate(layer, acts, node.output_shape)
                });
            }
            Layer::MultiThreshold(t) => {
                let shape = node.input_shape;
                let levels = t.table.levels();
                let spatial = shape.spatial();
                let mut rows = Vec::with_capacity(shape.channels);
                for ch in 0..shape.channels {
                    let mut vals: Vec<i32> = pending
                        .iter()
                        .flat_map(|acc| acc[ch * spatial..(ch + 1) * spatial].iter().copied())
                        .collect();
                    vals.sort_unstable();
                    let row: Vec<i32> = (1..=levels)
                        .map(|l| {
                            let q = l as f64 / (levels + 1) as f64;
                            let pos = ((vals.len() - 1) as f64 * q).round() as usize;
                            vals[pos]
                        })
                        .collect();
                    // Enforce monotonicity (duplicate quantiles are fine).
                    let mut mono = row;
                    for i in 1..mono.len() {
                        if mono[i] < mono[i - 1] {
                            mono[i] = mono[i - 1];
                        }
                    }
                    rows.push(mono);
                }
                let table = ThresholdTable::from_rows(&rows).map_err(NnError::Model)?;
                // Apply the new table to advance the calibration state.
                state = pending
                    .iter()
                    .map(|acc| {
                        let mut out = Activations::zeroed(shape);
                        let data = out.as_mut_slice();
                        for ch in 0..shape.channels {
                            for s in 0..spatial {
                                let i = ch * spatial + s;
                                data[i] = table.apply(ch, acc[i]);
                            }
                        }
                        out
                    })
                    .collect();
                pending = Vec::new();
                if let Layer::MultiThreshold(mt) = &mut chain[idx].1 {
                    mt.table = table;
                }
            }
            Layer::MaxPool2d(p) => {
                state = state
                    .iter()
                    .map(|acts| engine::pool_forward(p.kernel, p.stride, acts, node.output_shape))
                    .collect();
            }
            Layer::LabelSelect(_) => {}
        }
    }
    graph.with_layers(chain).map_err(NnError::Model)
}

/// Integer MVTU accumulation for calibration — delegates to the engine's
/// integer kernels, so calibration sees bit-exactly what inference will.
fn mvtu_accumulate(layer: &Layer, input: &Activations, out_shape: TensorShape) -> Vec<i32> {
    match layer {
        Layer::Conv2d(c) => engine::conv_forward(c, input, out_shape),
        Layer::Dense(d) => engine::dense_forward(d, input.as_slice()),
        _ => Vec::new(),
    }
}

#[allow(clippy::too_many_arguments)]
fn conv_f32(
    x: &[f32],
    in_shape: TensorShape,
    out_shape: TensorShape,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    w: &[f32],
) -> Vec<f32> {
    let (ih, iw) = (in_shape.height as isize, in_shape.width as isize);
    let (oh, ow) = (out_shape.height, out_shape.width);
    let mut out = vec![0f32; out_ch * oh * ow];
    for o in 0..out_ch {
        let fbase = o * in_ch * kernel * kernel;
        for y in 0..oh {
            for xo in 0..ow {
                let mut acc = 0f32;
                let by = (y * stride) as isize - padding as isize;
                let bx = (xo * stride) as isize - padding as isize;
                for i in 0..in_ch {
                    for ky in 0..kernel {
                        let sy = by + ky as isize;
                        if sy < 0 || sy >= ih {
                            continue;
                        }
                        for kx in 0..kernel {
                            let sx = bx + kx as isize;
                            if sx < 0 || sx >= iw {
                                continue;
                            }
                            let xi = (i as isize * ih + sy) * iw + sx;
                            acc += w[fbase + (i * kernel + ky) * kernel + kx] * x[xi as usize];
                        }
                    }
                }
                out[(o * oh + y) * ow + xo] = acc;
            }
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn conv_backward_f32(
    g: &[f32],
    cache: &Cache,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    w: &[f32],
    gw: &mut [f32],
) -> Vec<f32> {
    let (ih, iw) = (
        cache.in_shape.height as isize,
        cache.in_shape.width as isize,
    );
    let (oh, ow) = (cache.out_shape.height, cache.out_shape.width);
    let x = &cache.input;
    let mut gin = vec![0f32; x.len()];
    for o in 0..out_ch {
        let fbase = o * in_ch * kernel * kernel;
        for y in 0..oh {
            for xo in 0..ow {
                let go = g[(o * oh + y) * ow + xo];
                if go == 0.0 {
                    continue;
                }
                let by = (y * stride) as isize - padding as isize;
                let bx = (xo * stride) as isize - padding as isize;
                for i in 0..in_ch {
                    for ky in 0..kernel {
                        let sy = by + ky as isize;
                        if sy < 0 || sy >= ih {
                            continue;
                        }
                        for kx in 0..kernel {
                            let sx = bx + kx as isize;
                            if sx < 0 || sx >= iw {
                                continue;
                            }
                            let xi = ((i as isize * ih + sy) * iw + sx) as usize;
                            let fi = fbase + (i * kernel + ky) * kernel + kx;
                            gw[fi] += go * x[xi];
                            gin[xi] += go * w[fi];
                        }
                    }
                }
            }
        }
    }
    gin
}

fn pool_f32(
    x: &[f32],
    in_shape: TensorShape,
    out_shape: TensorShape,
    kernel: usize,
    stride: usize,
) -> (Vec<f32>, Vec<usize>) {
    let (ih, iw) = (in_shape.height, in_shape.width);
    let (oh, ow) = (out_shape.height, out_shape.width);
    let mut out = vec![0f32; out_shape.elements()];
    let mut aux = vec![0usize; out_shape.elements()];
    for c in 0..out_shape.channels {
        for y in 0..oh {
            for xo in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_i = 0usize;
                for ky in 0..kernel {
                    for kx in 0..kernel {
                        let i = (c * ih + y * stride + ky) * iw + xo * stride + kx;
                        if x[i] > best {
                            best = x[i];
                            best_i = i;
                        }
                    }
                }
                let oi = (c * oh + y) * ow + xo;
                out[oi] = best;
                aux[oi] = best_i;
            }
        }
    }
    (out, aux)
}

fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    let exps: Vec<f32> = logits.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|&e| e / sum.max(1e-12)).collect()
}

fn argmax_f32(v: &[f32]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetSpec, SyntheticDataset};
    use adaflow_model::prelude::*;

    fn quick_config() -> TrainingConfig {
        TrainingConfig {
            epochs: 6,
            batch_size: 16,
            learning_rate: 0.08,
            lr_decay: 0.75,
            train_samples: 192,
            eval_samples: 96,
            calibration_samples: 48,
            seed: 7,
        }
    }

    #[test]
    fn config_validation() {
        assert!(TrainingConfig::default().validate().is_ok());
        let zero_epochs = TrainingConfig {
            epochs: 0,
            ..TrainingConfig::default()
        };
        assert!(zero_epochs.validate().is_err());
        let bad_lr = TrainingConfig {
            learning_rate: -1.0,
            ..TrainingConfig::default()
        };
        assert!(bad_lr.validate().is_err());
        let nan_lr = TrainingConfig {
            learning_rate: f32::NAN,
            ..TrainingConfig::default()
        };
        assert!(nan_lr.validate().is_err());
    }

    #[test]
    fn training_reduces_loss_and_beats_chance() {
        let graph = topology::tiny(QuantSpec::w2a2(), 4).expect("builds");
        let data = SyntheticDataset::new(DatasetSpec::tiny(4), 3);
        let trainer = Trainer::new(&graph, 11).expect("trainer");
        let (trained, report) = trainer.train(&data, &quick_config()).expect("train");
        // Chance on 4 classes is 0.25; the float net must do clearly better.
        assert!(
            report.float_accuracy > 0.5,
            "float accuracy only {}",
            report.float_accuracy
        );
        // The quantized graph must remain a valid, executable model...
        assert!(Engine::new(&trained).is_ok());
        // ...and retain a useful share of the float accuracy.
        assert!(
            report.quantized_accuracy > 0.4,
            "quantized accuracy only {}",
            report.quantized_accuracy
        );
        assert!(report.final_loss.is_finite());
    }

    #[test]
    fn training_is_deterministic() {
        let graph = topology::tiny(QuantSpec::w2a2(), 4).expect("builds");
        let data = SyntheticDataset::new(DatasetSpec::tiny(4), 3);
        let cfg = quick_config();
        let r1 = Trainer::new(&graph, 11)
            .expect("t")
            .train(&data, &cfg)
            .expect("train");
        let r2 = Trainer::new(&graph, 11)
            .expect("t")
            .train(&data, &cfg)
            .expect("train");
        assert_eq!(r1.0, r2.0);
        assert_eq!(r1.1, r2.1);
    }

    #[test]
    fn quantize_into_respects_domain() {
        let w = vec![-0.9f32, -0.3, 0.0, 0.4, 1.2];
        let mut out = vec![0i8; 5];
        quantize_into(&w, QuantSpec::w2a2(), &mut out);
        assert!(out.iter().all(|&v| (-1..=1).contains(&v)));
        assert_eq!(out[4], 1); // largest magnitude maps to domain max
        assert_eq!(out[0], -1);
    }

    #[test]
    fn quantize_into_binary_never_zero() {
        let w = vec![-0.5f32, 0.0, 0.0001, 0.5];
        let mut out = vec![0i8; 4];
        quantize_into(&w, QuantSpec::w1a2(), &mut out);
        assert!(out.iter().all(|&v| v == -1 || v == 1));
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn calibration_produces_monotone_tables() {
        let graph = topology::tiny(QuantSpec::w2a2(), 4).expect("builds");
        let data = SyntheticDataset::new(DatasetSpec::tiny(4), 3);
        let calib: Vec<Activations> = (0..16).map(|i| data.sample(i).image).collect();
        let g = calibrate_thresholds(&graph, &calib).expect("calibrates");
        for node in g.iter() {
            if let Layer::MultiThreshold(t) = &node.layer {
                for c in 0..t.table.channels() {
                    let row = t.table.row(c);
                    assert!(row.windows(2).all(|w| w[0] <= w[1]));
                }
            }
        }
    }

    #[test]
    fn trainer_rejects_invalid_graph() {
        let g = GraphBuilder::new("bad", TensorShape::new(1, 8, 8))
            .conv2d(Conv2d::new(1, 4, 3, 1, 0, QuantSpec::w2a2()))
            .max_pool(MaxPool2d::new(2, 2))
            .dense(Dense::new(36, 4, QuantSpec::w2a2()))
            .label_select(4)
            .build()
            .expect("structurally ok");
        assert!(Trainer::new(&g, 1).is_err());
    }
}
