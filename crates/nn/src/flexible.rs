//! Flexible-accelerator execution semantics.
//!
//! The paper's Flexible-Pruning accelerator is synthesized for the
//! worst-case (unpruned) model and receives the current number of channels
//! per layer through a runtime-controllable parameter (§IV-A2, Fig. 3). Two
//! hardware situations arise:
//!
//! * modules whose *unroll* is independent of the channel count (the MVTU,
//!   unrolled on PE/SIMD) simply execute fewer pipeline iterations;
//! * modules unrolled *on* the channel count (MaxPool) keep their worst-case
//!   unrolled units, some of which are simply not fed.
//!
//! [`FlexibleExecutor`] emulates this: it verifies a pruned model is a
//! legal runtime configuration of the worst-case model, executes it
//! bit-accurately (the flexible fabric computes exactly the pruned network's
//! function), and reports the idle-unit/iteration accounting that the
//! synthesis simulator's power model builds on.

use crate::engine::{Engine, InferenceResult};
use crate::error::NnError;
use crate::tensor::Activations;
use adaflow_model::{CnnGraph, Layer};

/// Per-layer occupancy report of a flexible execution.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerOccupancy {
    /// Layer name in the worst-case graph.
    pub name: String,
    /// Worst-case (synthesized) channel count.
    pub worst_case_channels: usize,
    /// Channels configured at runtime.
    pub active_channels: usize,
    /// Fraction of unrolled units left idle (0 for MVTU-style modules whose
    /// unroll does not depend on the channel count).
    pub idle_unit_fraction: f64,
    /// Fraction of pipeline iterations saved relative to worst case.
    pub iteration_saving: f64,
}

/// Result of executing a pruned model on the flexible accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct FlexibleExecution {
    /// The inference output (bit-identical to running the pruned model on
    /// its own fixed accelerator).
    pub result: InferenceResult,
    /// Per-layer occupancy of the worst-case fabric.
    pub occupancy: Vec<LayerOccupancy>,
}

impl FlexibleExecution {
    /// Mean idle-unit fraction across channel-unrolled modules
    /// (0.0 when nothing is pruned).
    #[must_use]
    pub fn mean_idle_fraction(&self) -> f64 {
        let unrolled: Vec<&LayerOccupancy> = self
            .occupancy
            .iter()
            .filter(|o| o.worst_case_channels > 0)
            .collect();
        if unrolled.is_empty() {
            0.0
        } else {
            unrolled.iter().map(|o| o.idle_unit_fraction).sum::<f64>() / unrolled.len() as f64
        }
    }
}

/// Emulator of the Flexible-Pruning accelerator.
///
/// Constructed from the worst-case (unpruned) model the fabric was
/// synthesized for; executes any legal pruned configuration of it.
#[derive(Debug, Clone)]
pub struct FlexibleExecutor {
    worst_case: CnnGraph,
}

impl FlexibleExecutor {
    /// Creates an executor whose fabric is synthesized for `worst_case`.
    #[must_use]
    pub fn new(worst_case: CnnGraph) -> Self {
        Self { worst_case }
    }

    /// The worst-case model the fabric was synthesized for.
    #[must_use]
    pub fn worst_case(&self) -> &CnnGraph {
        &self.worst_case
    }

    /// Checks that `model` is a legal runtime configuration of the fabric:
    /// same layer sequence/kinds/kernels, channel counts not exceeding the
    /// worst case. This mirrors the hardware constraint that the flexible
    /// fabric can process *up to* `channels_worstcase` channels.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Unsupported`] describing the first incompatibility.
    pub fn check_compatible(&self, model: &CnnGraph) -> Result<(), NnError> {
        if model.len() != self.worst_case.len() {
            return Err(NnError::Unsupported(format!(
                "model has {} layers, fabric was synthesized for {}",
                model.len(),
                self.worst_case.len()
            )));
        }
        for (m, w) in model.iter().zip(self.worst_case.iter()) {
            let incompatible = |reason: String| {
                NnError::Unsupported(format!("layer {} ({}): {reason}", w.id, w.name))
            };
            match (&m.layer, &w.layer) {
                (Layer::Conv2d(a), Layer::Conv2d(b)) => {
                    if a.kernel != b.kernel || a.stride != b.stride || a.padding != b.padding {
                        return Err(incompatible("conv geometry differs".into()));
                    }
                    if a.quant != b.quant {
                        return Err(incompatible("quantization differs".into()));
                    }
                    if a.in_channels > b.in_channels || a.out_channels > b.out_channels {
                        return Err(incompatible(format!(
                            "channels {}→{} exceed worst case {}→{}",
                            a.in_channels, a.out_channels, b.in_channels, b.out_channels
                        )));
                    }
                }
                (Layer::MaxPool2d(a), Layer::MaxPool2d(b)) => {
                    if a != b {
                        return Err(incompatible("pool geometry differs".into()));
                    }
                }
                (Layer::Dense(a), Layer::Dense(b)) => {
                    if a.quant != b.quant {
                        return Err(incompatible("quantization differs".into()));
                    }
                    if a.in_features > b.in_features || a.out_features > b.out_features {
                        return Err(incompatible(format!(
                            "features {}→{} exceed worst case {}→{}",
                            a.in_features, a.out_features, b.in_features, b.out_features
                        )));
                    }
                }
                (Layer::MultiThreshold(a), Layer::MultiThreshold(b)) => {
                    if a.channels > b.channels {
                        return Err(incompatible(format!(
                            "{} threshold channels exceed worst case {}",
                            a.channels, b.channels
                        )));
                    }
                }
                (Layer::LabelSelect(a), Layer::LabelSelect(b)) => {
                    if a.classes != b.classes {
                        return Err(incompatible("class count differs".into()));
                    }
                }
                (got, want) => {
                    return Err(incompatible(format!(
                        "layer kind {} does not match fabric module {}",
                        got.kind(),
                        want.kind()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Executes `model` on the flexible fabric.
    ///
    /// The computation is bit-identical to running `model` on a fixed
    /// accelerator (the fabric loads the pruned weight matrices and simply
    /// leaves surplus capacity idle); additionally returns the occupancy
    /// accounting for each module.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Unsupported`] when `model` is not a legal
    /// configuration of the fabric, plus any error from the underlying
    /// engine.
    pub fn execute(
        &self,
        model: &CnnGraph,
        input: &Activations,
    ) -> Result<FlexibleExecution, NnError> {
        self.check_compatible(model)?;
        let result = Engine::new(model)?.run(input)?;
        let occupancy = self.occupancy(model);
        Ok(FlexibleExecution { result, occupancy })
    }

    /// Occupancy accounting for a legal configuration of the fabric (also
    /// usable without executing).
    #[must_use]
    pub fn occupancy(&self, model: &CnnGraph) -> Vec<LayerOccupancy> {
        model
            .iter()
            .zip(self.worst_case.iter())
            .map(|(m, w)| {
                let (worst, active, unrolled_on_channels) = match (&m.layer, &w.layer) {
                    (Layer::Conv2d(a), Layer::Conv2d(b)) => {
                        // MVTU: unroll is PE/SIMD-bound, not channel-bound
                        // (Fig. 3a) — fewer iterations, no idle units.
                        (b.out_channels, a.out_channels, false)
                    }
                    (Layer::Dense(a), Layer::Dense(b)) => (b.out_features, a.out_features, false),
                    (Layer::MaxPool2d(_), Layer::MaxPool2d(_)) => {
                        // Pool modules unroll on channels (Fig. 3b): idle
                        // units when fewer channels are fed.
                        (w.input_shape.channels, m.input_shape.channels, true)
                    }
                    (Layer::MultiThreshold(a), Layer::MultiThreshold(b)) => {
                        (b.channels, a.channels, true)
                    }
                    _ => (0, 0, false),
                };
                let ratio = if worst == 0 {
                    1.0
                } else {
                    active as f64 / worst as f64
                };
                LayerOccupancy {
                    name: w.name.clone(),
                    worst_case_channels: worst,
                    active_channels: active,
                    idle_unit_fraction: if unrolled_on_channels {
                        1.0 - ratio
                    } else {
                        0.0
                    },
                    iteration_saving: 1.0 - ratio,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaflow_model::prelude::*;

    fn tiny() -> CnnGraph {
        topology::tiny(QuantSpec::w2a2(), 4).expect("builds")
    }

    #[test]
    fn unpruned_model_is_compatible_with_itself() {
        let g = tiny();
        let fabric = FlexibleExecutor::new(g.clone());
        assert!(fabric.check_compatible(&g).is_ok());
    }

    #[test]
    fn occupancy_of_unpruned_model_is_full() {
        let g = tiny();
        let fabric = FlexibleExecutor::new(g.clone());
        let exec = fabric
            .execute(&g, &Activations::zeroed(g.input_shape()))
            .expect("executes");
        assert!(exec.mean_idle_fraction().abs() < 1e-12);
        assert!(exec
            .occupancy
            .iter()
            .all(|o| o.iteration_saving.abs() < 1e-12));
    }

    #[test]
    fn flexible_equals_fixed_execution() {
        let g = tiny();
        let fabric = FlexibleExecutor::new(g.clone());
        let mut img = Activations::zeroed(g.input_shape());
        for (i, v) in img.as_mut_slice().iter_mut().enumerate() {
            *v = (i * 37 % 251) as u8;
        }
        let fixed = Engine::new(&g).expect("engine").run(&img).expect("run");
        let flex = fabric.execute(&g, &img).expect("executes");
        assert_eq!(fixed, flex.result);
    }

    #[test]
    fn oversized_model_rejected() {
        let small = topology::tiny(QuantSpec::w2a2(), 4).expect("builds");
        let fabric = FlexibleExecutor::new(small);
        let big = topology::cnv_w2a2_cifar10().expect("builds");
        assert!(fabric.check_compatible(&big).is_err());
    }

    #[test]
    fn quantization_mismatch_rejected() {
        let fabric = FlexibleExecutor::new(tiny());
        let other = topology::tiny(QuantSpec::w1a2(), 4).expect("builds");
        let err = fabric.check_compatible(&other).unwrap_err();
        assert!(err.to_string().contains("quantization"));
    }

    #[test]
    fn class_count_mismatch_rejected() {
        let fabric = FlexibleExecutor::new(tiny());
        let other = topology::tiny(QuantSpec::w2a2(), 5).expect("builds");
        assert!(fabric.check_compatible(&other).is_err());
    }
}
