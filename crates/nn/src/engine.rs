//! Bit-accurate integer inference engine.
//!
//! Executes a [`CnnGraph`] the way the FINN dataflow hardware does:
//! convolutions and dense layers accumulate signed integer dot products
//! (the MVTU's PE accumulators), multi-threshold activations re-quantize
//! accumulators to low-precision unsigned activations, max-pooling operates
//! directly on quantized activations, and the final label-select picks the
//! arg-max class. There is no floating point anywhere on the datapath.
//!
//! ## Throughput layers
//!
//! The engine is the hot path under accuracy evaluation, threshold
//! calibration and the pruning retrain loop, so it is built in three
//! performance levels, each bit-identical to the plain path:
//!
//! 1. **Scratch-arena reuse** — [`EngineScratch`] holds the im2col window
//!    matrix, the accumulator buffer and two ping-pong activation buffers,
//!    sized once from the graph's maximum layer footprint.
//!    [`Engine::run_with_scratch`] allocates nothing per call beyond the
//!    returned logits.
//! 2. **Blocked integer GEMM** — im2col convolution and dense layers share
//!    one cache-blocked `i8 × u8 → i32` micro-kernel (4×4 register tile,
//!    inner loop unrolled over the window dimension), selected automatically
//!    when a layer is wide enough to profit. Integer accumulation is
//!    order-independent, so tiling cannot change a single bit of the result.
//! 3. **Parallel batch evaluation** — [`BatchRunner`] shards an image set
//!    across scoped worker threads, one scratch arena per worker, preserving
//!    input order.

use crate::error::NnError;
use crate::packed::{self, PackedBackend};
use crate::parallel;
use crate::tensor::Activations;
use adaflow_model::{CnnGraph, Layer, MvtuDomain, TensorShape};
use adaflow_telemetry::SinkHandle;
use std::sync::Arc;
use std::time::Instant;

/// Result of one inference.
///
/// Equality compares `label` and `logits` only: [`InferenceResult::kernels`]
/// is execution metadata, and two engines running different (bit-identical)
/// kernel plans must still compare equal on the same input.
#[derive(Debug, Clone)]
pub struct InferenceResult {
    /// Selected (top-1) class index.
    pub label: usize,
    /// Raw class accumulators from the classifier layer.
    pub logits: Vec<i32>,
    /// Per-layer kernel attribution of the engine plan that produced this
    /// result (shared, not per-inference — cloning is one refcount).
    pub kernels: Arc<[KernelAttribution]>,
}

impl PartialEq for InferenceResult {
    fn eq(&self, other: &Self) -> bool {
        self.label == other.label && self.logits == other.logits
    }
}

impl Eq for InferenceResult {}

/// Which kernel the engine planner chose for one layer, exposed through
/// [`InferenceResult::kernels`] and suffixed onto telemetry span names
/// (`conv2[packed-avx2]`) so `report` can attribute time per kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelAttribution {
    /// Layer name.
    pub layer: String,
    /// Kernel label: `direct`, `gemm`, `packed-scalar` or `packed-avx2`
    /// for MVTU layers; `threshold`, `maxpool` or `argmax` otherwise.
    pub kernel: &'static str,
}

/// Convolution lowering strategy.
///
/// Every strategy is bit-identical to every other; they differ only in
/// memory/speed trade-off:
///
/// * [`ConvStrategy::Auto`] (the default) picks per layer: the packed
///   popcount kernels where the verifier-established domains fit (≤2-bit
///   weights and activations) and the layer clears the measured
///   packed-vs-GEMM crossover, the GEMM lowering where the inner dimension
///   clears the measured naive-vs-blocked crossover, direct convolution
///   otherwise (see [`crate::packed::kernel_thresholds`]);
/// * [`ConvStrategy::Direct`] walks the input in place (no scratch memory);
/// * [`ConvStrategy::Im2col`] lowers each convolution to a dense
///   matrix-matrix product over an explicit window matrix — the classic GEMM
///   lowering, faster for wide layers at the cost of `out_pixels x k^2 x
///   ch_in` scratch bytes;
/// * [`ConvStrategy::Packed`] forces the bitplane popcount kernels on every
///   eligible MVTU regardless of crossover (ineligible layers fall back to
///   GEMM) — primarily for benchmarks and equivalence tests.
///
/// `Direct` and `Im2col` never touch the packed kernels, so they double as
/// the equivalence oracles the packed proptests compare against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConvStrategy {
    /// Per-layer choice from domain eligibility and measured crossovers.
    #[default]
    Auto,
    /// In-place direct convolution.
    Direct,
    /// GEMM lowering via an explicit im2col window matrix.
    Im2col,
    /// Bitplane popcount kernels wherever the domains allow.
    Packed,
}

/// Reusable scratch memory for [`Engine::run_with_scratch`].
///
/// Sized once from the graph's largest layer footprint; repeated inferences
/// through the same scratch allocate nothing. One scratch serves exactly one
/// in-flight inference — use one per worker thread (see [`BatchRunner`]).
#[derive(Debug, Clone)]
pub struct EngineScratch {
    /// im2col window matrix of the widest convolution.
    cols: Vec<u8>,
    /// MVTU accumulators of the widest conv/dense layer.
    accum: Vec<i32>,
    /// Ping-pong quantized-activation buffers.
    act_a: Vec<u8>,
    act_b: Vec<u8>,
    /// Activation bitplanes of the widest packed-eligible layer (empty when
    /// no layer qualifies). Sized from the graph alone — a superset of what
    /// any strategy's plan actually packs.
    packed: Vec<u64>,
}

impl EngineScratch {
    /// Allocates scratch buffers covering every layer of `graph`.
    #[must_use]
    pub fn for_graph(graph: &CnnGraph) -> Self {
        let domains = adaflow_model::mvtu_domains(graph);
        let mut domain_it = domains.iter();
        let mut act = graph.input_shape().elements();
        let mut accum = 0usize;
        let mut cols = 0usize;
        let mut packed = 0usize;
        let mut packed_budget = |d: &MvtuDomain, rows: usize| {
            if d.packed_eligible() {
                packed = packed.max(packed::act_pack_words(
                    rows,
                    d.fan_in,
                    d.act_in_planes as usize,
                ));
            }
        };
        for node in graph.iter() {
            match &node.layer {
                Layer::Conv2d(c) => {
                    accum = accum.max(node.output_shape.elements());
                    let window = c.kernel * c.kernel * c.in_channels;
                    cols = cols.max(node.output_shape.spatial() * window);
                    let d = domain_it.next().expect("one domain per MVTU");
                    packed_budget(d, node.output_shape.spatial());
                }
                Layer::Dense(_) => {
                    accum = accum.max(node.output_shape.elements());
                    let d = domain_it.next().expect("one domain per MVTU");
                    packed_budget(d, 1);
                }
                Layer::MultiThreshold(_) | Layer::MaxPool2d(_) => {
                    act = act.max(node.output_shape.elements());
                }
                Layer::LabelSelect(_) => {}
            }
        }
        Self {
            cols: vec![0; cols],
            accum: vec![0; accum],
            act_a: vec![0; act],
            act_b: vec![0; act],
            packed: vec![0; packed],
        }
    }

    /// Total scratch bytes held (diagnostics / capacity planning).
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.cols.len()
            + self.act_a.len()
            + self.act_b.len()
            + 4 * self.accum.len()
            + 8 * self.packed.len()
    }
}

/// The inference engine, borrowing the graph it executes.
///
/// ```
/// use adaflow_model::prelude::*;
/// use adaflow_nn::{Activations, Engine};
///
/// let graph = topology::tiny(QuantSpec::w2a2(), 4)?;
/// let engine = Engine::new(&graph)?;
/// let image = Activations::zeroed(graph.input_shape());
/// let result = engine.run(&image)?;
/// assert_eq!(result.logits.len(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Engine<'g> {
    graph: &'g CnnGraph,
    strategy: ConvStrategy,
    backend: PackedBackend,
    sink: SinkHandle,
    plan: Arc<Vec<NodePlan>>,
    kernels: Arc<[KernelAttribution]>,
    /// Debug builds carry the AF010 per-channel accumulator intervals
    /// (one `Some` entry per MVTU node) and assert every computed
    /// accumulator lands inside them — a live cross-check of the abstract
    /// interpretation against the real kernels. Release builds pay nothing.
    #[cfg(debug_assertions)]
    intervals: Arc<LayerIntervals>,
}

/// Per-node accumulator bounds: one `Some(per-channel (lo, hi))` entry per
/// MVTU layer, `None` for non-MVTU nodes.
#[cfg(debug_assertions)]
type LayerIntervals = Vec<Option<Vec<(i64, i64)>>>;

/// Value state machine of [`Engine::run_with_scratch`]: the current value
/// is either quantized activations living in one of the two ping-pong
/// buffers, or raw accumulators living in the scratch accumulator.
#[derive(Clone, Copy, PartialEq)]
enum Kind {
    ActA,
    ActB,
    Accum,
}

/// Which micro-kernel the planner chose for an MVTU layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MvtuKernel {
    DirectConv,
    Gemm,
    Packed,
}

/// Pre-packed weight planes of one packed-dispatch layer.
#[derive(Debug, Clone)]
struct PackedPlan {
    weights: packed::PackedWeights,
    planes: usize,
}

/// Per-node execution plan: kernel choice, packed weights (when the packed
/// kernel was chosen) and the precomputed telemetry span name.
#[derive(Debug, Clone)]
struct NodePlan {
    kernel: Option<MvtuKernel>,
    packed: Option<PackedPlan>,
    span: String,
}

/// Picks the kernel for one MVTU layer under `strategy`.
///
/// `rows` is the number of weight rows sharing one activation pack
/// (out-channels / out-features), `k` the dot-product length, `n` the
/// number of activation columns (output pixels; 1 for dense).
fn choose_kernel(
    strategy: ConvStrategy,
    domain: &MvtuDomain,
    is_conv: bool,
    rows: usize,
    n: usize,
    k: usize,
) -> MvtuKernel {
    match strategy {
        ConvStrategy::Direct => {
            if is_conv {
                MvtuKernel::DirectConv
            } else {
                MvtuKernel::Gemm
            }
        }
        ConvStrategy::Im2col => MvtuKernel::Gemm,
        ConvStrategy::Packed => {
            if domain.packed_eligible() {
                MvtuKernel::Packed
            } else {
                MvtuKernel::Gemm
            }
        }
        ConvStrategy::Auto => {
            let t = packed::kernel_thresholds();
            if domain.packed_eligible() && rows >= t.packed_min_rows {
                MvtuKernel::Packed
            } else if !is_conv || (rows >= GEMM_MR && n >= GEMM_NR && k >= t.gemm_min_k) {
                // Dense always runs the GEMM; convs only pay the im2col
                // lowering when the blocked kernel clears its crossover.
                MvtuKernel::Gemm
            } else {
                MvtuKernel::DirectConv
            }
        }
    }
}

/// Builds the per-node plan (kernel choices, packed weights, span names)
/// and the shared attribution table.
fn build_plan(
    graph: &CnnGraph,
    strategy: ConvStrategy,
    backend: PackedBackend,
) -> (Vec<NodePlan>, Arc<[KernelAttribution]>) {
    let packed_label = match backend {
        PackedBackend::Scalar => "packed-scalar",
        PackedBackend::Avx2 => "packed-avx2",
    };
    let domains = adaflow_model::mvtu_domains(graph);
    let mut domain_it = domains.iter();
    let mut plan = Vec::with_capacity(graph.len());
    let mut attributions = Vec::with_capacity(graph.len());
    for node in graph.iter() {
        let mvtu = match &node.layer {
            Layer::Conv2d(c) => {
                let d = domain_it.next().expect("one domain per MVTU");
                let k = c.kernel * c.kernel * c.in_channels;
                Some((
                    choose_kernel(
                        strategy,
                        d,
                        true,
                        c.out_channels,
                        node.output_shape.spatial(),
                        k,
                    ),
                    d,
                    c.weights.as_slice(),
                    c.out_channels,
                    k,
                ))
            }
            Layer::Dense(dn) => {
                let d = domain_it.next().expect("one domain per MVTU");
                Some((
                    choose_kernel(strategy, d, false, dn.out_features, 1, dn.in_features),
                    d,
                    dn.weights.as_slice(),
                    dn.out_features,
                    dn.in_features,
                ))
            }
            Layer::MultiThreshold(_) | Layer::MaxPool2d(_) | Layer::LabelSelect(_) => None,
        };
        let (kernel, packed_plan, label) = match mvtu {
            Some((MvtuKernel::Packed, d, weights, rows, k)) => (
                Some(MvtuKernel::Packed),
                Some(PackedPlan {
                    weights: packed::PackedWeights::pack(weights, rows, k),
                    planes: d.act_in_planes as usize,
                }),
                packed_label,
            ),
            Some((choice @ MvtuKernel::Gemm, ..)) => (Some(choice), None, "gemm"),
            Some((choice @ MvtuKernel::DirectConv, ..)) => (Some(choice), None, "direct"),
            None => (
                None,
                None,
                match &node.layer {
                    Layer::MultiThreshold(_) => "threshold",
                    Layer::MaxPool2d(_) => "maxpool",
                    _ => "argmax",
                },
            ),
        };
        let span = if kernel.is_some() {
            format!("{}[{label}]", node.name)
        } else {
            node.name.clone()
        };
        attributions.push(KernelAttribution {
            layer: node.name.clone(),
            kernel: label,
        });
        plan.push(NodePlan {
            kernel,
            packed: packed_plan,
            span,
        });
    }
    (plan, attributions.into())
}

/// Per-node AF010 accumulator intervals for the runtime debug asserts:
/// `Some((lo, hi) per output channel)` for MVTU nodes, `None` elsewhere.
/// Saturated to `i64` — far beyond anything an `i32` accumulator can hold.
#[cfg(debug_assertions)]
fn layer_intervals(graph: &CnnGraph) -> LayerIntervals {
    let clamp = |v: i128| v.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64;
    let analysis = adaflow_verify::interval_analysis(graph);
    if !analysis.stats.converged {
        return vec![None; graph.len()];
    }
    (0..graph.len())
        .map(|i| {
            analysis.mvtu(i).map(|m| {
                m.per_channel
                    .iter()
                    .map(|iv| (clamp(iv.lo), clamp(iv.hi)))
                    .collect()
            })
        })
        .collect()
}

impl<'g> Engine<'g> {
    /// Asserts every freshly computed accumulator lies inside the layer's
    /// statically derived AF010 interval. `spatial` is the number of output
    /// positions sharing one channel (1 for dense); the accumulator layout
    /// is channel-major.
    #[cfg(debug_assertions)]
    fn assert_accum_intervals(&self, node_idx: usize, name: &str, accums: &[i32], spatial: usize) {
        let Some(Some(per_channel)) = self.intervals.get(node_idx) else {
            return;
        };
        let spatial = spatial.max(1);
        for (i, &v) in accums.iter().enumerate() {
            let Some(&(lo, hi)) = per_channel.get(i / spatial) else {
                return;
            };
            let v = i64::from(v);
            assert!(
                lo <= v && v <= hi,
                "{name}: accumulator {v} at index {i} escapes the AF010 interval \
                 [{lo}, {hi}] of channel {} — interval analysis or kernel is unsound",
                i / spatial,
            );
        }
    }

    /// Prepares an engine for `graph`, checking that the layer arrangement
    /// is executable (thresholds follow MVTUs, the graph ends in a
    /// label-select fed by accumulators).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Unsupported`] when the chain cannot be executed
    /// (e.g. a max-pool directly on raw accumulators).
    pub fn new(graph: &'g CnnGraph) -> Result<Self, NnError> {
        // Debug builds run the full static verifier once per engine (not
        // per inference — construction is the entry to the hot path).
        #[cfg(debug_assertions)]
        {
            let report = adaflow_verify::verify_graph(graph);
            if report.has_errors() {
                return Err(NnError::Unsupported(format!(
                    "graph failed static verification:\n{report}"
                )));
            }
        }
        // Static walk over the quant/accum state machine.
        let mut accum = false; // true when the current value is accumulators
        for node in graph.iter() {
            match &node.layer {
                Layer::Conv2d(_) | Layer::Dense(_) => {
                    if accum {
                        return Err(NnError::Unsupported(format!(
                            "{} ({}) consumes raw accumulators; insert a threshold first",
                            node.id, node.name
                        )));
                    }
                    accum = true;
                }
                Layer::MultiThreshold(_) => {
                    if !accum {
                        return Err(NnError::Unsupported(format!(
                            "{} ({}) thresholds already-quantized activations",
                            node.id, node.name
                        )));
                    }
                    accum = false;
                }
                Layer::MaxPool2d(_) => {
                    if accum {
                        return Err(NnError::Unsupported(format!(
                            "{} ({}) pools raw accumulators; insert a threshold first",
                            node.id, node.name
                        )));
                    }
                }
                Layer::LabelSelect(_) => {
                    if !accum {
                        return Err(NnError::Unsupported(format!(
                            "{} ({}) needs classifier accumulators",
                            node.id, node.name
                        )));
                    }
                    accum = false;
                }
            }
        }
        let strategy = ConvStrategy::default();
        let backend = packed::default_backend();
        let (plan, kernels) = build_plan(graph, strategy, backend);
        Ok(Self {
            graph,
            strategy,
            backend,
            sink: SinkHandle::null(),
            plan: Arc::new(plan),
            kernels,
            #[cfg(debug_assertions)]
            intervals: Arc::new(layer_intervals(graph)),
        })
    }

    /// Returns this engine with a different convolution strategy,
    /// re-planning every layer's kernel.
    #[must_use]
    pub fn with_strategy(mut self, strategy: ConvStrategy) -> Self {
        self.strategy = strategy;
        self.replan();
        self
    }

    /// Returns this engine with an explicit packed-kernel backend,
    /// re-planning so span names and attributions stay honest. Requesting
    /// [`PackedBackend::Avx2`] on a machine without AVX2 pins scalar
    /// instead — the choice can never make dispatch unsound.
    #[must_use]
    pub fn with_packed_backend(mut self, backend: PackedBackend) -> Self {
        self.backend = if backend == PackedBackend::Avx2 && packed::simd_available() {
            PackedBackend::Avx2
        } else {
            PackedBackend::Scalar
        };
        self.replan();
        self
    }

    fn replan(&mut self) {
        let (plan, kernels) = build_plan(self.graph, self.strategy, self.backend);
        self.plan = Arc::new(plan);
        self.kernels = kernels;
    }

    /// The per-layer kernel attribution of the current plan (one entry per
    /// graph node, in dataflow order).
    #[must_use]
    pub fn kernels(&self) -> &[KernelAttribution] {
        &self.kernels
    }

    /// The packed-kernel backend in effect for this engine.
    #[must_use]
    pub fn packed_backend(&self) -> PackedBackend {
        self.backend
    }

    /// Returns this engine with a telemetry sink. When the sink is enabled,
    /// every inference emits one `SpanBegin`/`SpanEnd` pair per layer, with
    /// timestamps in wall-clock seconds relative to the inference start.
    #[must_use]
    pub fn with_sink(mut self, sink: SinkHandle) -> Self {
        self.sink = sink;
        self
    }

    /// The graph this engine executes.
    #[must_use]
    pub fn graph(&self) -> &'g CnnGraph {
        self.graph
    }

    /// A scratch arena sized for this engine's graph.
    #[must_use]
    pub fn scratch(&self) -> EngineScratch {
        EngineScratch::for_graph(self.graph)
    }

    /// Runs one inference, allocating fresh intermediate buffers.
    ///
    /// Convenience wrapper over [`Engine::run_with_scratch`]; hot loops
    /// should hold a scratch arena (or use [`BatchRunner`]) instead.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] if `input` does not match the graph's
    /// input shape, or [`NnError::Unsupported`] if the graph does not end in
    /// a label-select.
    pub fn run(&self, input: &Activations) -> Result<InferenceResult, NnError> {
        self.run_with_scratch(input, &mut self.scratch())
    }

    /// Runs one inference through a reusable scratch arena. Apart from the
    /// returned logits vector, no memory is allocated.
    ///
    /// Bit-identical to [`Engine::run`] for every input and strategy.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] if `input` does not match the graph's
    /// input shape, or [`NnError::Unsupported`] if the graph does not end in
    /// a label-select.
    pub fn run_with_scratch(
        &self,
        input: &Activations,
        scratch: &mut EngineScratch,
    ) -> Result<InferenceResult, NnError> {
        if input.shape() != self.graph.input_shape() {
            return Err(NnError::InputShape {
                expected: self.graph.input_shape(),
                found: input.shape(),
            });
        }
        let timing = self.sink.enabled();
        let started = Instant::now();
        let n_in = input.shape().elements();
        scratch.act_a[..n_in].copy_from_slice(input.as_slice());
        let mut kind = Kind::ActA;
        let mut shape = input.shape();
        let mut result = None;

        for (_node_idx, (node, plan)) in self.graph.iter().zip(self.plan.iter()).enumerate() {
            let t_begin = if timing {
                started.elapsed().as_secs_f64()
            } else {
                0.0
            };
            let out_shape = node.output_shape;
            match (&node.layer, kind) {
                (Layer::Conv2d(c), Kind::ActA | Kind::ActB) => {
                    let src = if kind == Kind::ActA {
                        &scratch.act_a[..shape.elements()]
                    } else {
                        &scratch.act_b[..shape.elements()]
                    };
                    let out = &mut scratch.accum[..out_shape.elements()];
                    let window = c.kernel * c.kernel * c.in_channels;
                    match plan.kernel {
                        Some(MvtuKernel::DirectConv) | None => {
                            conv_direct_into(c, src, shape, out_shape, out);
                        }
                        Some(MvtuKernel::Gemm) => {
                            let cols = &mut scratch.cols[..out_shape.spatial() * window];
                            im2col_into(c, src, shape, out_shape, cols);
                            gemm_i32(
                                c.weights.as_slice(),
                                cols,
                                c.out_channels,
                                out_shape.spatial(),
                                window,
                                out,
                            );
                        }
                        Some(MvtuKernel::Packed) => {
                            let pp = plan.packed.as_ref().expect("packed plan carries weights");
                            let cols = &mut scratch.cols[..out_shape.spatial() * window];
                            im2col_into(c, src, shape, out_shape, cols);
                            packed::pack_act_rows(
                                cols,
                                out_shape.spatial(),
                                window,
                                pp.planes,
                                &mut scratch.packed,
                            );
                            packed::packed_gemm(
                                &pp.weights,
                                &scratch.packed,
                                out_shape.spatial(),
                                pp.planes,
                                out,
                                self.backend,
                            );
                        }
                    }
                    #[cfg(debug_assertions)]
                    self.assert_accum_intervals(_node_idx, &node.name, out, out_shape.spatial());
                    kind = Kind::Accum;
                }
                (Layer::Dense(d), Kind::ActA | Kind::ActB) => {
                    let src = if kind == Kind::ActA {
                        &scratch.act_a[..shape.elements()]
                    } else {
                        &scratch.act_b[..shape.elements()]
                    };
                    let out = &mut scratch.accum[..d.out_features];
                    if let (Some(MvtuKernel::Packed), Some(pp)) =
                        (plan.kernel, plan.packed.as_ref())
                    {
                        packed::pack_act_rows(
                            src,
                            1,
                            d.in_features,
                            pp.planes,
                            &mut scratch.packed,
                        );
                        packed::packed_gemm(
                            &pp.weights,
                            &scratch.packed,
                            1,
                            pp.planes,
                            out,
                            self.backend,
                        );
                    } else {
                        gemm_i32(
                            d.weights.as_slice(),
                            src,
                            d.out_features,
                            1,
                            d.in_features,
                            out,
                        );
                    }
                    #[cfg(debug_assertions)]
                    self.assert_accum_intervals(_node_idx, &node.name, out, 1);
                    kind = Kind::Accum;
                }
                (Layer::MultiThreshold(t), Kind::Accum) => {
                    let accums = &scratch.accum[..out_shape.elements()];
                    let out = &mut scratch.act_a[..out_shape.elements()];
                    threshold_into(t, out_shape, accums, out);
                    kind = Kind::ActA;
                }
                (Layer::MaxPool2d(p), Kind::ActA) => {
                    let src = &scratch.act_a[..shape.elements()];
                    let out = &mut scratch.act_b[..out_shape.elements()];
                    pool_into(p.kernel, p.stride, src, shape, out_shape, out);
                    kind = Kind::ActB;
                }
                (Layer::MaxPool2d(p), Kind::ActB) => {
                    let src = &scratch.act_b[..shape.elements()];
                    let out = &mut scratch.act_a[..out_shape.elements()];
                    pool_into(p.kernel, p.stride, src, shape, out_shape, out);
                    kind = Kind::ActA;
                }
                (Layer::LabelSelect(_), Kind::Accum) => {
                    let logits = scratch.accum[..shape.elements()].to_vec();
                    let label = argmax(&logits);
                    result = Some(InferenceResult {
                        label,
                        logits,
                        kernels: self.kernels.clone(),
                    });
                }
                (layer, _) => {
                    // `new` validated the chain; reaching here means the graph
                    // was mutated behind our back.
                    return Err(NnError::Unsupported(format!(
                        "layer {} cannot consume the current value kind",
                        layer.kind()
                    )));
                }
            }
            shape = out_shape;
            if timing {
                self.sink
                    .emit_span(t_begin, started.elapsed().as_secs_f64(), &plan.span);
            }
        }
        result.ok_or_else(|| NnError::Unsupported("graph has no label-select output".into()))
    }

    /// Classifies a batch serially through one shared scratch arena,
    /// returning the predicted label per sample. For multi-core batch
    /// evaluation use [`BatchRunner`].
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`Engine::run_with_scratch`].
    pub fn run_batch<'a, I>(&self, inputs: I) -> Result<Vec<usize>, NnError>
    where
        I: IntoIterator<Item = &'a Activations>,
    {
        let mut scratch = self.scratch();
        inputs
            .into_iter()
            .map(|x| self.run_with_scratch(x, &mut scratch).map(|r| r.label))
            .collect()
    }
}

/// Parallel batch evaluator: shards an image set across scoped worker
/// threads, one [`EngineScratch`] per worker.
///
/// Labels (and full results) are returned in input order and are bit-exactly
/// those of the serial path, independent of the thread count — integer
/// inference is a pure per-image function and the sharding preserves order.
///
/// ```
/// use adaflow_model::prelude::*;
/// use adaflow_nn::{Activations, BatchRunner, Engine};
///
/// let graph = topology::tiny(QuantSpec::w2a2(), 4)?;
/// let runner = BatchRunner::new(Engine::new(&graph)?);
/// let images = vec![Activations::zeroed(graph.input_shape()); 8];
/// let labels = runner.run(&images)?;
/// assert_eq!(labels.len(), 8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct BatchRunner<'g> {
    engine: Engine<'g>,
    threads: usize,
}

impl<'g> BatchRunner<'g> {
    /// Wraps an engine; uses one thread per available core by default.
    #[must_use]
    pub fn new(engine: Engine<'g>) -> Self {
        Self { engine, threads: 0 }
    }

    /// Sets the worker-thread count (`0` = one per available core).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The wrapped engine.
    #[must_use]
    pub fn engine(&self) -> &Engine<'g> {
        &self.engine
    }

    /// The batch size this runner prefers to be fed: enough images to keep
    /// every worker busy (see [`parallel::preferred_batch`]) without
    /// inflating batch-assembly latency. Dynamic batchers upstream (the
    /// serving layer) use this as their max-size hint.
    #[must_use]
    pub fn batch_size_hint(&self) -> usize {
        parallel::preferred_batch(self.threads)
    }

    /// Classifies `images`, returning one label per image in input order.
    ///
    /// # Errors
    ///
    /// Propagates the first engine error (e.g. a shape mismatch).
    pub fn run(&self, images: &[Activations]) -> Result<Vec<usize>, NnError> {
        self.map_batch(images, |r| r.label)
    }

    /// Runs full inference on `images`, returning logits and labels in input
    /// order.
    ///
    /// # Errors
    ///
    /// Propagates the first engine error (e.g. a shape mismatch).
    pub fn run_full(&self, images: &[Activations]) -> Result<Vec<InferenceResult>, NnError> {
        self.map_batch(images, |r| r)
    }

    fn map_batch<R: Send>(
        &self,
        images: &[Activations],
        project: impl Fn(InferenceResult) -> R + Sync,
    ) -> Result<Vec<R>, NnError> {
        parallel::par_map_init(
            images,
            self.threads,
            || self.engine.scratch(),
            |scratch, image| self.engine.run_with_scratch(image, scratch).map(&project),
        )
        .into_iter()
        .collect()
    }
}

// ---------------------------------------------------------------------------
// Integer kernels. All kernels are pure functions of their integer inputs;
// accumulation order never changes the result, so every lowering below is
// bit-identical to the naive triple loop.
// ---------------------------------------------------------------------------

/// Register tile height (output channels) of the blocked GEMM.
pub(crate) const GEMM_MR: usize = 4;
/// Register tile width (output pixels) of the blocked GEMM.
pub(crate) const GEMM_NR: usize = 4;

/// `out[i][j] = Σ_k a[i*k..][k'] · b[j*k..][k']` — both operands row-major
/// over the shared inner dimension (filters × im2col windows, or dense
/// weight rows × the input vector when `n == 1`).
///
/// Dispatches to the 4×4 register-blocked kernel when the inner dimension
/// clears the crossover measured by [`packed::kernel_thresholds`], else to
/// the plain row-dot loop. Both paths produce identical bits, so the
/// measurement can only affect speed.
pub(crate) fn gemm_i32(a: &[i8], b: &[u8], m: usize, n: usize, k: usize, out: &mut [i32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    if m >= GEMM_MR && n >= GEMM_NR && k >= packed::kernel_thresholds().gemm_min_k {
        gemm_i32_blocked(a, b, m, n, k, out);
    } else {
        gemm_i32_naive(a, b, m, n, k, out);
    }
}

/// Plain row-by-row dot products (fast for narrow layers; the compiler
/// vectorizes the inner zip).
pub(crate) fn gemm_i32_naive(a: &[i8], b: &[u8], m: usize, n: usize, k: usize, out: &mut [i32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            out[i * n + j] = dot_i32(arow, brow);
        }
    }
}

#[inline]
fn dot_i32(w: &[i8], x: &[u8]) -> i32 {
    w.iter()
        .zip(x)
        .map(|(&w, &x)| i32::from(w) * i32::from(x))
        .sum()
}

/// Cache-blocked GEMM: 4×4 register tile, inner loop unrolled by 4 over the
/// window dimension. Each loaded `a`/`b` value is reused across the whole
/// tile, cutting memory traffic ~4× versus the naive row dots.
pub(crate) fn gemm_i32_blocked(a: &[i8], b: &[u8], m: usize, n: usize, k: usize, out: &mut [i32]) {
    let mut mb = 0;
    while mb < m {
        let mh = (m - mb).min(GEMM_MR);
        let mut nb = 0;
        while nb < n {
            let nh = (n - nb).min(GEMM_NR);
            let mut acc = [[0i32; GEMM_NR]; GEMM_MR];
            let mut kk = 0;
            while kk + 4 <= k {
                // Widen the b-tile once, reuse it for every a-row.
                let mut btile = [[0i32; 4]; GEMM_NR];
                for (j, bt) in btile.iter_mut().enumerate().take(nh) {
                    let br = &b[(nb + j) * k + kk..(nb + j) * k + kk + 4];
                    *bt = [
                        i32::from(br[0]),
                        i32::from(br[1]),
                        i32::from(br[2]),
                        i32::from(br[3]),
                    ];
                }
                for (i, accrow) in acc.iter_mut().enumerate().take(mh) {
                    let ar = &a[(mb + i) * k + kk..(mb + i) * k + kk + 4];
                    let (a0, a1, a2, a3) = (
                        i32::from(ar[0]),
                        i32::from(ar[1]),
                        i32::from(ar[2]),
                        i32::from(ar[3]),
                    );
                    for (j, cell) in accrow.iter_mut().enumerate().take(nh) {
                        let bt = &btile[j];
                        *cell += a0 * bt[0] + a1 * bt[1] + a2 * bt[2] + a3 * bt[3];
                    }
                }
                kk += 4;
            }
            while kk < k {
                for (i, accrow) in acc.iter_mut().enumerate().take(mh) {
                    let av = i32::from(a[(mb + i) * k + kk]);
                    for (j, cell) in accrow.iter_mut().enumerate().take(nh) {
                        *cell += av * i32::from(b[(nb + j) * k + kk]);
                    }
                }
                kk += 1;
            }
            for i in 0..mh {
                for j in 0..nh {
                    out[(mb + i) * n + nb + j] = acc[i][j];
                }
            }
            nb += GEMM_NR;
        }
        mb += GEMM_MR;
    }
}

/// Direct convolution writing MVTU accumulators into `out`.
fn conv_direct_into(
    c: &adaflow_model::Conv2d,
    input: &[u8],
    in_shape: TensorShape,
    out_shape: TensorShape,
    out: &mut [i32],
) {
    let k = c.kernel;
    let stride = c.stride as isize;
    let pad = c.padding as isize;
    let (ih, iw) = (in_shape.height as isize, in_shape.width as isize);
    let (oh, ow) = (out_shape.height, out_shape.width);
    for o in 0..c.out_channels {
        let filter = c.weights.filter(o);
        for y in 0..oh {
            for x in 0..ow {
                let mut acc = 0i32;
                let base_y = y as isize * stride - pad;
                let base_x = x as isize * stride - pad;
                for i in 0..c.in_channels {
                    let fplane = &filter[i * k * k..(i + 1) * k * k];
                    for ky in 0..k {
                        let sy = base_y + ky as isize;
                        if sy < 0 || sy >= ih {
                            continue;
                        }
                        let in_row = (i as isize * ih + sy) * iw;
                        for kx in 0..k {
                            let sx = base_x + kx as isize;
                            if sx < 0 || sx >= iw {
                                continue;
                            }
                            let v = input[(in_row + sx) as usize];
                            acc += i32::from(fplane[ky * k + kx]) * i32::from(v);
                        }
                    }
                }
                out[(o * oh + y) * ow + x] = acc;
            }
        }
    }
}

/// Materializes the im2col window matrix (`[out_pixels][k^2 * ch_in]`, the
/// exact stream the SWU produces in hardware), channel-major within each row
/// to match the filter layout `[in][kh][kw]`. In-bounds kernel rows are
/// copied as contiguous runs; padding bytes are zero-filled.
fn im2col_into(
    c: &adaflow_model::Conv2d,
    input: &[u8],
    in_shape: TensorShape,
    out_shape: TensorShape,
    cols: &mut [u8],
) {
    let k = c.kernel;
    let window = k * k * c.in_channels;
    let (ih, iw) = (in_shape.height as isize, in_shape.width as isize);
    let (oh, ow) = (out_shape.height, out_shape.width);
    for y in 0..oh {
        for x in 0..ow {
            let base_y = (y * c.stride) as isize - c.padding as isize;
            let base_x = (x * c.stride) as isize - c.padding as isize;
            let row = &mut cols[(y * ow + x) * window..(y * ow + x + 1) * window];
            // Clip the kernel's x-extent against the input once per pixel.
            let x_lo = base_x.max(0);
            let x_hi = (base_x + k as isize).min(iw);
            for i in 0..c.in_channels {
                for ky in 0..k {
                    let sy = base_y + ky as isize;
                    let dst = &mut row[(i * k + ky) * k..(i * k + ky + 1) * k];
                    if sy < 0 || sy >= ih || x_lo >= x_hi {
                        dst.fill(0);
                        continue;
                    }
                    let src_base = ((i as isize * ih + sy) * iw) as usize;
                    let lead = (x_lo - base_x) as usize;
                    let run = (x_hi - x_lo) as usize;
                    dst[..lead].fill(0);
                    dst[lead..lead + run].copy_from_slice(
                        &input[src_base + x_lo as usize..src_base + x_hi as usize],
                    );
                    dst[lead + run..].fill(0);
                }
            }
        }
    }
}

/// Multi-threshold re-quantization into `out` (per-channel threshold rows).
fn threshold_into(
    t: &adaflow_model::MultiThreshold,
    shape: TensorShape,
    accums: &[i32],
    out: &mut [u8],
) {
    let spatial = shape.spatial();
    for ch in 0..shape.channels {
        let row = &accums[ch * spatial..(ch + 1) * spatial];
        let dst = &mut out[ch * spatial..(ch + 1) * spatial];
        for (d, &acc) in dst.iter_mut().zip(row) {
            *d = t.table.apply(ch, acc);
        }
    }
}

/// Max-pooling over quantized activations into `out`.
///
/// Windows are clamped to the input extent, so non-divisible spatial
/// dimensions (an overhanging last window) pool over the in-bounds taps
/// only. A window must still *start* in bounds.
fn pool_into(
    kernel: usize,
    stride: usize,
    input: &[u8],
    in_shape: TensorShape,
    out_shape: TensorShape,
    out: &mut [u8],
) {
    let (ih, iw) = (in_shape.height, in_shape.width);
    let (oh, ow) = (out_shape.height, out_shape.width);
    for c in 0..out_shape.channels {
        let plane = &input[c * ih * iw..(c + 1) * ih * iw];
        for y in 0..oh {
            for x in 0..ow {
                let (sy, sx) = (y * stride, x * stride);
                debug_assert!(
                    sy < ih && sx < iw,
                    "pool window ({y},{x}) starts outside the {ih}x{iw} input"
                );
                let mut best = 0u8;
                for ky in 0..kernel.min(ih - sy) {
                    let row = &plane[(sy + ky) * iw..];
                    for kx in 0..kernel.min(iw - sx) {
                        best = best.max(row[sx + kx]);
                    }
                }
                out[(c * oh + y) * ow + x] = best;
            }
        }
    }
}

// Vec-returning wrappers shared with the trainer's calibration pass and the
// unit tests.

/// Direct convolution producing MVTU accumulators.
pub(crate) fn conv_forward(
    c: &adaflow_model::Conv2d,
    input: &Activations,
    out_shape: TensorShape,
) -> Vec<i32> {
    let mut out = vec![0i32; out_shape.elements()];
    conv_direct_into(c, input.as_slice(), input.shape(), out_shape, &mut out);
    out
}

/// GEMM-lowered convolution via im2col (bit-identical to [`conv_forward`]).
#[cfg(test)]
pub(crate) fn conv_forward_im2col(
    c: &adaflow_model::Conv2d,
    input: &Activations,
    out_shape: TensorShape,
) -> Vec<i32> {
    let window = c.kernel * c.kernel * c.in_channels;
    let mut cols = vec![0u8; out_shape.spatial() * window];
    im2col_into(c, input.as_slice(), input.shape(), out_shape, &mut cols);
    let mut out = vec![0i32; c.out_channels * out_shape.spatial()];
    gemm_i32(
        c.weights.as_slice(),
        &cols,
        c.out_channels,
        out_shape.spatial(),
        window,
        &mut out,
    );
    out
}

/// Dense matrix-vector product producing MVTU accumulators.
pub(crate) fn dense_forward(d: &adaflow_model::Dense, input: &[u8]) -> Vec<i32> {
    let mut out = vec![0i32; d.out_features];
    gemm_i32(
        d.weights.as_slice(),
        input,
        d.out_features,
        1,
        d.in_features,
        &mut out,
    );
    out
}

/// Max-pooling over quantized activations.
pub(crate) fn pool_forward(
    kernel: usize,
    stride: usize,
    input: &Activations,
    out_shape: TensorShape,
) -> Activations {
    let mut out = Activations::zeroed(out_shape);
    pool_into(
        kernel,
        stride,
        input.as_slice(),
        input.shape(),
        out_shape,
        out.as_mut_slice(),
    );
    out
}

/// Arg-max with deterministic lowest-index tie-breaking (matches FINN's
/// LabelSelect behaviour).
fn argmax(values: &[i32]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaflow_model::prelude::*;

    fn tiny_graph() -> CnnGraph {
        topology::tiny(QuantSpec::w2a2(), 4).expect("builds")
    }

    fn random_image(shape: TensorShape, seed: u64) -> Activations {
        let mut img = Activations::zeroed(shape);
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for v in img.as_mut_slice() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = (state % 256) as u8;
        }
        img
    }

    #[test]
    fn engine_accepts_tiny_and_cnv() {
        let g = tiny_graph();
        assert!(Engine::new(&g).is_ok());
        let cnv = topology::cnv_w2a2_cifar10().expect("builds");
        assert!(Engine::new(&cnv).is_ok());
    }

    #[test]
    fn rejects_wrong_input_shape() {
        let g = tiny_graph();
        let engine = Engine::new(&g).expect("engine");
        let bad = Activations::zeroed(TensorShape::new(3, 12, 12));
        assert!(matches!(engine.run(&bad), Err(NnError::InputShape { .. })));
    }

    #[test]
    fn rejects_pool_on_accumulators() {
        let g = GraphBuilder::new("bad", TensorShape::new(1, 8, 8))
            .conv2d(Conv2d::new(1, 4, 3, 1, 0, QuantSpec::w2a2()))
            .max_pool(MaxPool2d::new(2, 2)) // no threshold in between
            .dense(Dense::new(4 * 3 * 3, 4, QuantSpec::w2a2()))
            .label_select(4)
            .build()
            .expect("builds structurally");
        assert!(matches!(Engine::new(&g), Err(NnError::Unsupported(_))));
    }

    #[test]
    fn zero_input_gives_zero_logits_for_zero_free_weights() {
        // With a zero input, conv accumulators are zero; thresholds at
        // negative values may still fire, so just check determinism and
        // logits length.
        let g = tiny_graph();
        let engine = Engine::new(&g).expect("engine");
        let zero = Activations::zeroed(g.input_shape());
        let a = engine.run(&zero).expect("run");
        let b = engine.run(&zero).expect("run");
        assert_eq!(a, b);
        assert_eq!(a.logits.len(), 4);
    }

    #[test]
    fn hand_computed_single_conv() {
        // 1x3x3 input, single 3x3 filter of all ones -> accumulator equals
        // the sum of the input; threshold at >= 5 fires once.
        let mut conv = Conv2d::new(1, 1, 3, 1, 0, QuantSpec::w2a2());
        for i in 0..9 {
            conv.weights.as_mut_slice()[i] = 1;
        }
        let g = GraphBuilder::new("hand", TensorShape::new(1, 3, 3))
            .conv2d(conv)
            .named_layer(
                "t",
                Layer::MultiThreshold(MultiThreshold {
                    channels: 1,
                    table: ThresholdTable::from_rows(&[vec![5, 100, 200]]).expect("table"),
                }),
            )
            .dense(Dense::new(1, 2, QuantSpec::w2a2()))
            .label_select(2)
            .build()
            .expect("builds");
        // Set dense weights: class0 = +activation, class1 = -activation.
        let engine = Engine::new(&g).expect("engine");
        let mut img = Activations::zeroed(TensorShape::new(1, 3, 3));
        for (i, v) in img.as_mut_slice().iter_mut().enumerate() {
            *v = i as u8; // sum = 36 -> exceeds threshold 5, below 100
        }
        let r = engine.run(&img).expect("run");
        // Dense weights are zero -> logits [0, 0]; argmax tie-breaks low.
        assert_eq!(r.logits, vec![0, 0]);
        assert_eq!(r.label, 0);
    }

    #[test]
    fn conv_padding_matches_manual() {
        // 1x2x2 input, 3x3 all-ones filter, padding 1, stride 1:
        // each output position sums the in-bounds window.
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, QuantSpec::w2a2());
        for w in conv.weights.as_mut_slice() {
            *w = 1;
        }
        let input = Activations::from_vec(TensorShape::new(1, 2, 2), vec![1, 2, 3, 4]);
        let out = conv_forward(&conv, &input, TensorShape::new(1, 2, 2));
        // All four windows cover the entire 2x2 input.
        assert_eq!(out, vec![10, 10, 10, 10]);
    }

    #[test]
    fn maxpool_takes_window_max() {
        let input = Activations::from_vec(
            TensorShape::new(1, 4, 4),
            vec![1, 2, 0, 0, 3, 4, 0, 0, 0, 0, 9, 1, 0, 0, 1, 8],
        );
        let out = pool_forward(2, 2, &input, TensorShape::new(1, 2, 2));
        assert_eq!(out.as_slice(), &[4, 0, 0, 9]);
    }

    #[test]
    fn maxpool_clamps_overhanging_windows() {
        // 1x3x3 input pooled 2x2/stride-2 into 1x2x2: the right/bottom
        // windows overhang the input and must pool the in-bounds taps only.
        let input =
            Activations::from_vec(TensorShape::new(1, 3, 3), vec![1, 2, 7, 3, 4, 0, 5, 0, 6]);
        let out = pool_forward(2, 2, &input, TensorShape::new(1, 2, 2));
        // Windows: {1,2,3,4}, {7,0}, {5,0}, {6}.
        assert_eq!(out.as_slice(), &[4, 7, 5, 6]);
    }

    #[test]
    fn maxpool_handles_odd_input_with_floor_output() {
        // 1x5x5, kernel 2, stride 2, floor output 1x2x2: windows all fit.
        let mut data = vec![0u8; 25];
        data[0] = 9; // (0,0)
        data[3] = 8; // (0,3) -> window (0,1)
        data[12] = 7; // (2,2) -> window (1,1)
        let input = Activations::from_vec(TensorShape::new(1, 5, 5), data);
        let out = pool_forward(2, 2, &input, TensorShape::new(1, 2, 2));
        assert_eq!(out.as_slice(), &[9, 8, 0, 7]);
    }

    #[test]
    fn argmax_tie_breaks_to_lowest_index() {
        assert_eq!(argmax(&[3, 7, 7, 1]), 1);
        assert_eq!(argmax(&[-5, -5]), 0);
        assert_eq!(argmax(&[]), 0);
    }

    #[test]
    fn batch_runs_all_samples() {
        let g = tiny_graph();
        let engine = Engine::new(&g).expect("engine");
        let imgs: Vec<Activations> = (0..3)
            .map(|_| Activations::zeroed(g.input_shape()))
            .collect();
        let labels = engine.run_batch(imgs.iter()).expect("batch");
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn im2col_matches_direct_on_tiny() {
        let g = tiny_graph();
        let direct = Engine::new(&g).expect("engine");
        let gemm = Engine::new(&g)
            .expect("engine")
            .with_strategy(ConvStrategy::Im2col);
        for seed in 0..8u64 {
            let img = random_image(g.input_shape(), seed);
            assert_eq!(
                direct.run(&img).expect("direct"),
                gemm.run(&img).expect("im2col"),
                "strategies diverged on seed {seed}"
            );
        }
    }

    #[test]
    fn im2col_matches_direct_with_padding() {
        let mut conv = Conv2d::new(2, 3, 3, 2, 1, QuantSpec::w2a2());
        for (i, w) in conv.weights.as_mut_slice().iter_mut().enumerate() {
            *w = ((i % 3) as i8) - 1;
        }
        let input = Activations::from_vec(
            TensorShape::new(2, 5, 5),
            (0..50).map(|i| (i * 7 % 256) as u8).collect(),
        );
        let out_shape = TensorShape::new(3, 3, 3);
        assert_eq!(
            conv_forward(&conv, &input, out_shape),
            conv_forward_im2col(&conv, &input, out_shape)
        );
    }

    #[test]
    fn im2col_matches_direct_on_wide_layer() {
        // Wide enough (window 72 >= 16, 36 pixels, 8 filters) to engage the
        // blocked GEMM path.
        let mut conv = Conv2d::new(8, 8, 3, 1, 1, QuantSpec::w2a2());
        for (i, w) in conv.weights.as_mut_slice().iter_mut().enumerate() {
            *w = ((i % 3) as i8) - 1;
        }
        let input = random_image(TensorShape::new(8, 6, 6), 5);
        let out_shape = TensorShape::new(8, 6, 6);
        assert_eq!(
            conv_forward(&conv, &input, out_shape),
            conv_forward_im2col(&conv, &input, out_shape)
        );
    }

    #[test]
    fn blocked_gemm_matches_naive_on_all_remainders() {
        // Exercise every m/n remainder against the 4x4 tile and odd k
        // against the 4-way unroll.
        for &(m, n, k) in &[(4, 4, 16), (5, 7, 17), (6, 9, 19), (9, 5, 31), (4, 5, 16)] {
            let a: Vec<i8> = (0..m * k).map(|i| ((i * 37 % 7) as i8) - 3).collect();
            let b: Vec<u8> = (0..n * k).map(|i| (i * 101 % 251) as u8).collect();
            let mut blocked = vec![0i32; m * n];
            let mut naive = vec![0i32; m * n];
            gemm_i32_blocked(&a, &b, m, n, k, &mut blocked);
            gemm_i32_naive(&a, &b, m, n, k, &mut naive);
            assert_eq!(blocked, naive, "diverged at m={m} n={n} k={k}");
        }
    }

    #[test]
    fn scratch_run_matches_fresh_run() {
        let g = tiny_graph();
        for strategy in [ConvStrategy::Direct, ConvStrategy::Im2col] {
            let engine = Engine::new(&g).expect("engine").with_strategy(strategy);
            let mut scratch = engine.scratch();
            for seed in 0..12u64 {
                let img = random_image(g.input_shape(), seed);
                let fresh = engine.run(&img).expect("fresh");
                let reused = engine
                    .run_with_scratch(&img, &mut scratch)
                    .expect("scratch");
                assert_eq!(fresh, reused, "scratch diverged on seed {seed}");
            }
        }
    }

    #[test]
    fn scratch_is_sized_for_the_graph() {
        let g = topology::cnv_w2a2_cifar10().expect("builds");
        let scratch = EngineScratch::for_graph(&g);
        assert!(scratch.bytes() > 0);
        // Must cover the input image itself.
        assert!(scratch.act_a.len() >= g.input_shape().elements());
        assert_eq!(scratch.act_a.len(), scratch.act_b.len());
    }

    #[test]
    fn batch_runner_matches_serial_for_any_thread_count() {
        let g = tiny_graph();
        let engine = Engine::new(&g).expect("engine");
        let images: Vec<Activations> = (0..17).map(|s| random_image(g.input_shape(), s)).collect();
        let serial: Vec<usize> = images
            .iter()
            .map(|img| engine.run(img).expect("serial").label)
            .collect();
        for threads in [0usize, 1, 2, 3, 8, 32] {
            let runner = BatchRunner::new(Engine::new(&g).expect("engine")).with_threads(threads);
            assert_eq!(
                runner.run(&images).expect("batch"),
                serial,
                "labels diverged with {threads} threads"
            );
        }
    }

    #[test]
    fn batch_runner_full_results_match_serial() {
        let g = tiny_graph();
        let engine = Engine::new(&g)
            .expect("engine")
            .with_strategy(ConvStrategy::Im2col);
        let images: Vec<Activations> = (0..9)
            .map(|s| random_image(g.input_shape(), 100 + s))
            .collect();
        let serial: Vec<InferenceResult> = images
            .iter()
            .map(|img| engine.run(img).expect("serial"))
            .collect();
        let runner = BatchRunner::new(engine).with_threads(3);
        assert_eq!(runner.run_full(&images).expect("batch"), serial);
    }

    #[test]
    fn batch_runner_hints_batch_size_from_threads() {
        let g = tiny_graph();
        let runner = BatchRunner::new(Engine::new(&g).expect("engine")).with_threads(2);
        assert_eq!(
            runner.batch_size_hint(),
            2 * crate::parallel::ITEMS_PER_WORKER_HINT
        );
        let auto = BatchRunner::new(Engine::new(&g).expect("engine"));
        assert!(auto.batch_size_hint() >= crate::parallel::ITEMS_PER_WORKER_HINT);
    }

    #[test]
    fn batch_runner_propagates_shape_errors() {
        let g = tiny_graph();
        let runner = BatchRunner::new(Engine::new(&g).expect("engine"));
        let bad = vec![Activations::zeroed(TensorShape::new(3, 12, 12))];
        assert!(matches!(runner.run(&bad), Err(NnError::InputShape { .. })));
    }

    #[test]
    fn engine_emits_per_layer_spans_when_sinked() {
        use adaflow_telemetry::EventKind;
        let g = tiny_graph();
        let (sink, recorder) = SinkHandle::recorder(256);
        let engine = Engine::new(&g).expect("engine").with_sink(sink);
        engine
            .run(&Activations::zeroed(g.input_shape()))
            .expect("run");
        let events = recorder.drain();
        let begins = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SpanBegin { .. }))
            .count();
        let ends = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SpanEnd { .. }))
            .count();
        assert_eq!(begins, g.len());
        assert_eq!(ends, g.len());
    }

    #[test]
    fn different_inputs_can_change_accumulators() {
        let g = tiny_graph();
        let engine = Engine::new(&g).expect("engine");
        let zero = Activations::zeroed(g.input_shape());
        let mut bright = Activations::zeroed(g.input_shape());
        for v in bright.as_mut_slice() {
            *v = 200;
        }
        let a = engine.run(&zero).expect("run");
        let b = engine.run(&bright).expect("run");
        // A saturated input must flow through to different logits than zero.
        assert_ne!(a.logits, b.logits);
    }

    #[test]
    fn packed_strategy_matches_direct_and_im2col() {
        // The blocked i32 GEMM is the bit-identity oracle for the packed
        // popcount kernels, across both dispatchable backends.
        let g = topology::cnv_scaled(QuantSpec::w2a2(), 6, 0.25)
            .build()
            .expect("builds");
        let direct = Engine::new(&g)
            .expect("engine")
            .with_strategy(ConvStrategy::Direct);
        let gemm = Engine::new(&g)
            .expect("engine")
            .with_strategy(ConvStrategy::Im2col);
        let mut engines = vec![
            Engine::new(&g)
                .expect("engine")
                .with_strategy(ConvStrategy::Packed)
                .with_packed_backend(PackedBackend::Scalar),
            Engine::new(&g).expect("engine"), // Auto, default backend
        ];
        if crate::packed::simd_available() {
            engines.push(
                Engine::new(&g)
                    .expect("engine")
                    .with_strategy(ConvStrategy::Packed)
                    .with_packed_backend(PackedBackend::Avx2),
            );
        }
        for seed in 0..4u64 {
            let img = random_image(g.input_shape(), seed);
            let oracle = direct.run(&img).expect("direct");
            assert_eq!(oracle, gemm.run(&img).expect("im2col"));
            for e in &engines {
                assert_eq!(
                    oracle,
                    e.run(&img).expect("packed"),
                    "packed diverged on seed {seed} (backend {:?})",
                    e.packed_backend()
                );
            }
        }
    }

    #[test]
    fn packed_strategy_skips_the_input_layer_only() {
        // The first MVTU sees 8-bit pixels, so the packed contract cannot
        // hold there; every later W2A2 MVTU packs.
        let g = tiny_graph();
        let engine = Engine::new(&g)
            .expect("engine")
            .with_strategy(ConvStrategy::Packed);
        let label = format!("packed-{}", engine.packed_backend().label());
        let mvtu: Vec<&KernelAttribution> = engine
            .kernels()
            .iter()
            .filter(|k| k.kernel != "threshold" && k.kernel != "maxpool" && k.kernel != "argmax")
            .collect();
        assert!(mvtu.len() >= 2, "tiny graph has several MVTUs");
        assert_ne!(mvtu[0].kernel, label, "input layer must not pack");
        for k in &mvtu[1..] {
            assert_eq!(k.kernel, label, "layer {} should pack", k.layer);
        }
    }

    #[test]
    fn kernel_attribution_covers_every_layer() {
        let g = tiny_graph();
        let engine = Engine::new(&g).expect("engine");
        let kernels = engine.kernels();
        assert_eq!(kernels.len(), g.len());
        for (node, k) in g.iter().zip(kernels) {
            assert_eq!(node.name, k.layer);
        }
        // The result carries the same attribution for offline reporting.
        let result = engine
            .run(&Activations::zeroed(g.input_shape()))
            .expect("run");
        assert_eq!(result.kernels.as_ref(), kernels);
    }

    #[test]
    fn inference_result_equality_ignores_kernel_metadata() {
        let g = tiny_graph();
        let img = random_image(g.input_shape(), 3);
        let a = Engine::new(&g)
            .expect("engine")
            .with_strategy(ConvStrategy::Direct)
            .run(&img)
            .expect("runs");
        let b = Engine::new(&g)
            .expect("engine")
            .with_strategy(ConvStrategy::Packed)
            .run(&img)
            .expect("runs");
        assert_eq!(a, b, "numerics agree across strategies");
        assert_ne!(
            a.kernels.as_ref(),
            b.kernels.as_ref(),
            "attribution reflects the strategy"
        );
    }

    #[test]
    fn packed_spans_carry_kernel_suffix() {
        use adaflow_telemetry::EventKind;
        let g = tiny_graph();
        let (sink, recorder) = SinkHandle::recorder(256);
        let engine = Engine::new(&g)
            .expect("engine")
            .with_strategy(ConvStrategy::Packed)
            .with_sink(sink);
        engine
            .run(&Activations::zeroed(g.input_shape()))
            .expect("run");
        let label = format!("packed-{}", engine.packed_backend().label());
        let spans: Vec<String> = recorder
            .drain()
            .into_iter()
            .filter_map(|e| match e.kind {
                EventKind::SpanBegin { name } => Some(name),
                _ => None,
            })
            .collect();
        assert_eq!(spans.len(), g.len());
        assert!(
            spans.iter().any(|s| s.contains(&format!("[{label}]"))),
            "no packed span in {spans:?}"
        );
    }

    #[test]
    fn scratch_run_matches_fresh_run_for_packed_strategies() {
        let g = tiny_graph();
        for strategy in [ConvStrategy::Packed, ConvStrategy::Auto] {
            let engine = Engine::new(&g).expect("engine").with_strategy(strategy);
            let mut scratch = engine.scratch();
            for seed in 0..8u64 {
                let img = random_image(g.input_shape(), seed);
                let fresh = engine.run(&img).expect("fresh");
                let reused = engine
                    .run_with_scratch(&img, &mut scratch)
                    .expect("scratch");
                assert_eq!(fresh, reused, "scratch diverged on seed {seed}");
            }
        }
    }
}
