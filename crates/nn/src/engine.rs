//! Bit-accurate integer inference engine.
//!
//! Executes a [`CnnGraph`] the way the FINN dataflow hardware does:
//! convolutions and dense layers accumulate signed integer dot products
//! (the MVTU's PE accumulators), multi-threshold activations re-quantize
//! accumulators to low-precision unsigned activations, max-pooling operates
//! directly on quantized activations, and the final label-select picks the
//! arg-max class. There is no floating point anywhere on the datapath.

use crate::error::NnError;
use crate::tensor::Activations;
use adaflow_model::{CnnGraph, Layer, TensorShape};

/// Result of one inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferenceResult {
    /// Selected (top-1) class index.
    pub label: usize,
    /// Raw class accumulators from the classifier layer.
    pub logits: Vec<i32>,
}

/// Convolution lowering strategy.
///
/// Both strategies are bit-identical; they differ in memory/speed trade-off:
///
/// * [`ConvStrategy::Direct`] walks the input in place (no scratch memory);
/// * [`ConvStrategy::Im2col`] lowers each convolution to a dense
///   matrix-matrix product over an explicit window matrix — the classic GEMM
///   lowering, faster for wide layers at the cost of `out_pixels x k^2 x
///   ch_in` scratch bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConvStrategy {
    /// In-place direct convolution.
    #[default]
    Direct,
    /// GEMM lowering via an explicit im2col window matrix.
    Im2col,
}

/// Value flowing between layers: quantized activations or raw MVTU
/// accumulators awaiting thresholding.
#[derive(Debug, Clone)]
enum Flow {
    Quant(Activations),
    Accum { shape: TensorShape, data: Vec<i32> },
}

/// The inference engine, borrowing the graph it executes.
///
/// ```
/// use adaflow_model::prelude::*;
/// use adaflow_nn::{Activations, Engine};
///
/// let graph = topology::tiny(QuantSpec::w2a2(), 4)?;
/// let engine = Engine::new(&graph)?;
/// let image = Activations::zeroed(graph.input_shape());
/// let result = engine.run(&image)?;
/// assert_eq!(result.logits.len(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Engine<'g> {
    graph: &'g CnnGraph,
    strategy: ConvStrategy,
}

impl<'g> Engine<'g> {
    /// Prepares an engine for `graph`, checking that the layer arrangement
    /// is executable (thresholds follow MVTUs, the graph ends in a
    /// label-select fed by accumulators).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Unsupported`] when the chain cannot be executed
    /// (e.g. a max-pool directly on raw accumulators).
    pub fn new(graph: &'g CnnGraph) -> Result<Self, NnError> {
        // Static walk over the quant/accum state machine.
        let mut accum = false; // true when the current value is accumulators
        for node in graph.iter() {
            match &node.layer {
                Layer::Conv2d(_) | Layer::Dense(_) => {
                    if accum {
                        return Err(NnError::Unsupported(format!(
                            "{} ({}) consumes raw accumulators; insert a threshold first",
                            node.id, node.name
                        )));
                    }
                    accum = true;
                }
                Layer::MultiThreshold(_) => {
                    if !accum {
                        return Err(NnError::Unsupported(format!(
                            "{} ({}) thresholds already-quantized activations",
                            node.id, node.name
                        )));
                    }
                    accum = false;
                }
                Layer::MaxPool2d(_) => {
                    if accum {
                        return Err(NnError::Unsupported(format!(
                            "{} ({}) pools raw accumulators; insert a threshold first",
                            node.id, node.name
                        )));
                    }
                }
                Layer::LabelSelect(_) => {
                    if !accum {
                        return Err(NnError::Unsupported(format!(
                            "{} ({}) needs classifier accumulators",
                            node.id, node.name
                        )));
                    }
                    accum = false;
                }
            }
        }
        Ok(Self {
            graph,
            strategy: ConvStrategy::Direct,
        })
    }

    /// Returns this engine with a different convolution strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: ConvStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The graph this engine executes.
    #[must_use]
    pub fn graph(&self) -> &CnnGraph {
        self.graph
    }

    /// Runs one inference.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] if `input` does not match the graph's
    /// input shape, or [`NnError::Unsupported`] if the graph does not end in
    /// a label-select.
    pub fn run(&self, input: &Activations) -> Result<InferenceResult, NnError> {
        if input.shape() != self.graph.input_shape() {
            return Err(NnError::InputShape {
                expected: self.graph.input_shape(),
                found: input.shape(),
            });
        }
        let mut flow = Flow::Quant(input.clone());
        let mut result = None;
        for node in self.graph.iter() {
            flow = match (&node.layer, flow) {
                (Layer::Conv2d(c), Flow::Quant(acts)) => {
                    let out_shape = node.output_shape;
                    let data = match self.strategy {
                        ConvStrategy::Direct => conv_forward(c, &acts, out_shape),
                        ConvStrategy::Im2col => conv_forward_im2col(c, &acts, out_shape),
                    };
                    Flow::Accum {
                        shape: out_shape,
                        data,
                    }
                }
                (Layer::Dense(d), Flow::Quant(acts)) => {
                    let data = dense_forward(d, acts.as_slice());
                    Flow::Accum {
                        shape: node.output_shape,
                        data,
                    }
                }
                (Layer::MultiThreshold(t), Flow::Accum { shape, data }) => {
                    let quant = threshold_forward(t, shape, &data);
                    Flow::Quant(quant)
                }
                (Layer::MaxPool2d(p), Flow::Quant(acts)) => {
                    Flow::Quant(pool_forward(p.kernel, p.stride, &acts, node.output_shape))
                }
                (Layer::LabelSelect(_), Flow::Accum { data, .. }) => {
                    let label = argmax(&data);
                    result = Some(InferenceResult {
                        label,
                        logits: data.clone(),
                    });
                    Flow::Accum {
                        shape: node.output_shape,
                        data,
                    }
                }
                (layer, _) => {
                    // `new` validated the chain; reaching here means the graph
                    // was mutated behind our back.
                    return Err(NnError::Unsupported(format!(
                        "layer {} cannot consume the current value kind",
                        layer.kind()
                    )));
                }
            };
        }
        result.ok_or_else(|| NnError::Unsupported("graph has no label-select output".into()))
    }

    /// Classifies a batch, returning the predicted label per sample.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`Engine::run`].
    pub fn run_batch<'a, I>(&self, inputs: I) -> Result<Vec<usize>, NnError>
    where
        I: IntoIterator<Item = &'a Activations>,
    {
        inputs
            .into_iter()
            .map(|x| self.run(x).map(|r| r.label))
            .collect()
    }
}

/// Direct convolution producing MVTU accumulators.
fn conv_forward(
    c: &adaflow_model::Conv2d,
    input: &Activations,
    out_shape: TensorShape,
) -> Vec<i32> {
    let mut out = vec![0i32; out_shape.elements()];
    let k = c.kernel;
    let stride = c.stride as isize;
    let pad = c.padding as isize;
    let (oh, ow) = (out_shape.height, out_shape.width);
    for o in 0..c.out_channels {
        let filter = c.weights.filter(o);
        for y in 0..oh {
            for x in 0..ow {
                let mut acc = 0i32;
                let base_y = y as isize * stride - pad;
                let base_x = x as isize * stride - pad;
                for i in 0..c.in_channels {
                    let fplane = &filter[i * k * k..(i + 1) * k * k];
                    for ky in 0..k {
                        for kx in 0..k {
                            let v = input.at_padded(i, base_y + ky as isize, base_x + kx as isize);
                            acc += i32::from(fplane[ky * k + kx]) * i32::from(v);
                        }
                    }
                }
                out[(o * oh + y) * ow + x] = acc;
            }
        }
    }
    out
}

/// GEMM-lowered convolution: materializes the im2col window matrix
/// (`[out_pixels][k^2 * ch_in]`, the exact stream the SWU produces in
/// hardware), then multiplies it against the filter matrix.
fn conv_forward_im2col(
    c: &adaflow_model::Conv2d,
    input: &Activations,
    out_shape: TensorShape,
) -> Vec<i32> {
    let k = c.kernel;
    let window = k * k * c.in_channels;
    let pixels = out_shape.spatial();
    let (oh, ow) = (out_shape.height, out_shape.width);

    // im2col: one row per output pixel, channel-major within the row to
    // match the filter layout `[in][kh][kw]`.
    let mut cols = vec![0u8; pixels * window];
    for y in 0..oh {
        for x in 0..ow {
            let base_y = (y * c.stride) as isize - c.padding as isize;
            let base_x = (x * c.stride) as isize - c.padding as isize;
            let row = &mut cols[(y * ow + x) * window..(y * ow + x + 1) * window];
            let mut w = 0;
            for i in 0..c.in_channels {
                for ky in 0..k {
                    for kx in 0..k {
                        row[w] = input.at_padded(i, base_y + ky as isize, base_x + kx as isize);
                        w += 1;
                    }
                }
            }
        }
    }

    // GEMM: filters (rows) x window matrix (columns).
    let mut out = vec![0i32; c.out_channels * pixels];
    for o in 0..c.out_channels {
        let filter = c.weights.filter(o);
        let out_row = &mut out[o * pixels..(o + 1) * pixels];
        for (p, acc) in out_row.iter_mut().enumerate() {
            let col = &cols[p * window..(p + 1) * window];
            *acc = filter
                .iter()
                .zip(col)
                .map(|(&w, &x)| i32::from(w) * i32::from(x))
                .sum();
        }
    }
    out
}

/// Dense matrix-vector product producing MVTU accumulators.
fn dense_forward(d: &adaflow_model::Dense, input: &[u8]) -> Vec<i32> {
    (0..d.out_features)
        .map(|o| {
            d.weights
                .row(o)
                .iter()
                .zip(input)
                .map(|(&w, &x)| i32::from(w) * i32::from(x))
                .sum()
        })
        .collect()
}

/// Multi-threshold re-quantization (per-channel threshold rows).
fn threshold_forward(
    t: &adaflow_model::MultiThreshold,
    shape: TensorShape,
    accums: &[i32],
) -> Activations {
    let mut out = Activations::zeroed(shape);
    let spatial = shape.spatial();
    let data = out.as_mut_slice();
    for ch in 0..shape.channels {
        for s in 0..spatial {
            let idx = ch * spatial + s;
            data[idx] = t.table.apply(ch, accums[idx]);
        }
    }
    out
}

/// Max-pooling over quantized activations.
fn pool_forward(
    kernel: usize,
    stride: usize,
    input: &Activations,
    out_shape: TensorShape,
) -> Activations {
    let mut out = Activations::zeroed(out_shape);
    for c in 0..out_shape.channels {
        for y in 0..out_shape.height {
            for x in 0..out_shape.width {
                let mut best = 0u8;
                for ky in 0..kernel {
                    for kx in 0..kernel {
                        best = best.max(input.at(c, y * stride + ky, x * stride + kx));
                    }
                }
                out.set(c, y, x, best);
            }
        }
    }
    out
}

/// Arg-max with deterministic lowest-index tie-breaking (matches FINN's
/// LabelSelect behaviour).
fn argmax(values: &[i32]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaflow_model::prelude::*;

    fn tiny_graph() -> CnnGraph {
        topology::tiny(QuantSpec::w2a2(), 4).expect("builds")
    }

    #[test]
    fn engine_accepts_tiny_and_cnv() {
        let g = tiny_graph();
        assert!(Engine::new(&g).is_ok());
        let cnv = topology::cnv_w2a2_cifar10().expect("builds");
        assert!(Engine::new(&cnv).is_ok());
    }

    #[test]
    fn rejects_wrong_input_shape() {
        let g = tiny_graph();
        let engine = Engine::new(&g).expect("engine");
        let bad = Activations::zeroed(TensorShape::new(3, 12, 12));
        assert!(matches!(engine.run(&bad), Err(NnError::InputShape { .. })));
    }

    #[test]
    fn rejects_pool_on_accumulators() {
        let g = GraphBuilder::new("bad", TensorShape::new(1, 8, 8))
            .conv2d(Conv2d::new(1, 4, 3, 1, 0, QuantSpec::w2a2()))
            .max_pool(MaxPool2d::new(2, 2)) // no threshold in between
            .dense(Dense::new(4 * 3 * 3, 4, QuantSpec::w2a2()))
            .label_select(4)
            .build()
            .expect("builds structurally");
        assert!(matches!(Engine::new(&g), Err(NnError::Unsupported(_))));
    }

    #[test]
    fn zero_input_gives_zero_logits_for_zero_free_weights() {
        // With a zero input, conv accumulators are zero; thresholds at
        // negative values may still fire, so just check determinism and
        // logits length.
        let g = tiny_graph();
        let engine = Engine::new(&g).expect("engine");
        let zero = Activations::zeroed(g.input_shape());
        let a = engine.run(&zero).expect("run");
        let b = engine.run(&zero).expect("run");
        assert_eq!(a, b);
        assert_eq!(a.logits.len(), 4);
    }

    #[test]
    fn hand_computed_single_conv() {
        // 1x3x3 input, single 3x3 filter of all ones -> accumulator equals
        // the sum of the input; threshold at >= 5 fires once.
        let mut conv = Conv2d::new(1, 1, 3, 1, 0, QuantSpec::w2a2());
        for i in 0..9 {
            conv.weights.as_mut_slice()[i] = 1;
        }
        let g = GraphBuilder::new("hand", TensorShape::new(1, 3, 3))
            .conv2d(conv)
            .named_layer(
                "t",
                Layer::MultiThreshold(MultiThreshold {
                    channels: 1,
                    table: ThresholdTable::from_rows(vec![vec![5, 100, 200]]).expect("table"),
                }),
            )
            .dense(Dense::new(1, 2, QuantSpec::w2a2()))
            .label_select(2)
            .build()
            .expect("builds");
        // Set dense weights: class0 = +activation, class1 = -activation.
        let engine = Engine::new(&g).expect("engine");
        let mut img = Activations::zeroed(TensorShape::new(1, 3, 3));
        for (i, v) in img.as_mut_slice().iter_mut().enumerate() {
            *v = i as u8; // sum = 36 -> exceeds threshold 5, below 100
        }
        let r = engine.run(&img).expect("run");
        // Dense weights are zero -> logits [0, 0]; argmax tie-breaks low.
        assert_eq!(r.logits, vec![0, 0]);
        assert_eq!(r.label, 0);
    }

    #[test]
    fn conv_padding_matches_manual() {
        // 1x2x2 input, 3x3 all-ones filter, padding 1, stride 1:
        // each output position sums the in-bounds window.
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, QuantSpec::w2a2());
        for w in conv.weights.as_mut_slice() {
            *w = 1;
        }
        let input = Activations::from_vec(TensorShape::new(1, 2, 2), vec![1, 2, 3, 4]);
        let out = conv_forward(&conv, &input, TensorShape::new(1, 2, 2));
        // All four windows cover the entire 2x2 input.
        assert_eq!(out, vec![10, 10, 10, 10]);
    }

    #[test]
    fn maxpool_takes_window_max() {
        let input = Activations::from_vec(
            TensorShape::new(1, 4, 4),
            vec![1, 2, 0, 0, 3, 4, 0, 0, 0, 0, 9, 1, 0, 0, 1, 8],
        );
        let out = pool_forward(2, 2, &input, TensorShape::new(1, 2, 2));
        assert_eq!(out.as_slice(), &[4, 0, 0, 9]);
    }

    #[test]
    fn argmax_tie_breaks_to_lowest_index() {
        assert_eq!(argmax(&[3, 7, 7, 1]), 1);
        assert_eq!(argmax(&[-5, -5]), 0);
        assert_eq!(argmax(&[]), 0);
    }

    #[test]
    fn batch_runs_all_samples() {
        let g = tiny_graph();
        let engine = Engine::new(&g).expect("engine");
        let imgs: Vec<Activations> = (0..3)
            .map(|_| Activations::zeroed(g.input_shape()))
            .collect();
        let labels = engine.run_batch(imgs.iter()).expect("batch");
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn im2col_matches_direct_on_tiny() {
        let g = tiny_graph();
        let direct = Engine::new(&g).expect("engine");
        let gemm = Engine::new(&g)
            .expect("engine")
            .with_strategy(ConvStrategy::Im2col);
        for seed in 0..8u64 {
            let mut img = Activations::zeroed(g.input_shape());
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            for v in img.as_mut_slice() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                *v = (state % 256) as u8;
            }
            assert_eq!(
                direct.run(&img).expect("direct"),
                gemm.run(&img).expect("im2col"),
                "strategies diverged on seed {seed}"
            );
        }
    }

    #[test]
    fn im2col_matches_direct_with_padding() {
        let mut conv = Conv2d::new(2, 3, 3, 2, 1, QuantSpec::w2a2());
        for (i, w) in conv.weights.as_mut_slice().iter_mut().enumerate() {
            *w = ((i % 3) as i8) - 1;
        }
        let input = Activations::from_vec(
            TensorShape::new(2, 5, 5),
            (0..50).map(|i| (i * 7 % 256) as u8).collect(),
        );
        let out_shape = TensorShape::new(3, 3, 3);
        assert_eq!(
            conv_forward(&conv, &input, out_shape),
            conv_forward_im2col(&conv, &input, out_shape)
        );
    }

    #[test]
    fn different_inputs_can_change_accumulators() {
        let g = tiny_graph();
        let engine = Engine::new(&g).expect("engine");
        let zero = Activations::zeroed(g.input_shape());
        let mut bright = Activations::zeroed(g.input_shape());
        for v in bright.as_mut_slice() {
            *v = 200;
        }
        let a = engine.run(&zero).expect("run");
        let b = engine.run(&bright).expect("run");
        // A saturated input must flow through to different logits than zero.
        assert_ne!(a.logits, b.logits);
    }
}
