//! Scoped-thread parallel mapping.
//!
//! Shared by the engine's [`crate::engine::BatchRunner`], the trainer's
//! evaluation/calibration passes, and the edge experiment driver. Work is
//! sharded into contiguous chunks (one scoped thread per chunk) and results
//! are re-assembled in item order, so parallel execution is exactly
//! order-equivalent to the serial map — a requirement for the engine's
//! bit-exactness guarantee and for deterministic metric averaging.

/// Number of worker threads to use for `items` units of work.
///
/// `requested == 0` means "one per available core". The result is clamped to
/// `1..=items` so callers can pass raw user input.
#[must_use]
pub fn thread_count(requested: usize, items: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let threads = if requested == 0 { hw } else { requested };
    threads.clamp(1, items.max(1))
}

/// Items each worker should receive per batch for the sharding overhead to
/// amortize without inflating batch-assembly latency (used by the
/// batch-size hint consumed by dynamic batchers upstream).
pub const ITEMS_PER_WORKER_HINT: usize = 4;

/// Preferred batch size for `threads` workers (`0` = one per available
/// core): enough items that every worker gets [`ITEMS_PER_WORKER_HINT`] of
/// them, so a batch of this size keeps the whole pool busy while staying
/// small enough for low queueing latency.
#[must_use]
pub fn preferred_batch(threads: usize) -> usize {
    thread_count(threads, usize::MAX) * ITEMS_PER_WORKER_HINT
}

/// Maps `f` over `items` on `threads` scoped workers, preserving item order.
///
/// Each worker first builds its own state with `init` (e.g. a scratch arena)
/// and reuses it across every item of its chunk. `threads == 0` selects one
/// thread per available core; `threads == 1` (or a single item) runs inline
/// without spawning.
///
/// # Panics
///
/// Propagates panics from worker threads.
pub fn par_map_init<T, S, R, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let threads = thread_count(threads, items.len());
    if threads <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|chunk| {
                let (init, f) = (&init, &f);
                scope.spawn(move || {
                    let mut state = init();
                    chunk
                        .iter()
                        .map(|item| f(&mut state, item))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("parallel map worker panicked"));
        }
    });
    out
}

/// Stateless [`par_map_init`]: maps `f` over `items` in parallel, preserving
/// item order.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_init(items, threads, || (), |(), item| f(item))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..101).collect();
        for threads in [0, 1, 2, 3, 7] {
            let out = par_map(&items, threads, |&x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let out: Vec<u64> = par_map(&[], 4, |x: &u64| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn init_runs_once_per_worker_chunk() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let items = [1u8; 16];
        let out = par_map_init(
            &items,
            4,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                0u64
            },
            |state, &x| {
                *state += u64::from(x);
                *state
            },
        );
        assert_eq!(out.len(), 16);
        // One init per spawned worker (≤ 4), not one per item.
        assert!(inits.load(Ordering::SeqCst) <= 4);
    }

    #[test]
    fn thread_count_clamps() {
        assert_eq!(thread_count(8, 3), 3);
        assert_eq!(thread_count(2, 100), 2);
        assert_eq!(thread_count(0, 0), 1);
        assert!(thread_count(0, 100) >= 1);
    }

    #[test]
    fn preferred_batch_scales_with_workers() {
        assert_eq!(preferred_batch(1), ITEMS_PER_WORKER_HINT);
        assert_eq!(preferred_batch(4), 4 * ITEMS_PER_WORKER_HINT);
        // Auto thread count: one batch-chunk per available core.
        assert!(preferred_batch(0) >= ITEMS_PER_WORKER_HINT);
        assert_eq!(preferred_batch(0) % ITEMS_PER_WORKER_HINT, 0);
    }
}
