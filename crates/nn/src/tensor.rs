//! Activation tensors.
//!
//! FINN dataflows carry low-precision unsigned activations between modules.
//! [`Activations`] stores them as `u8` in CHW order, which covers 8-bit
//! network inputs and every quantized inter-layer activation (2-bit in the
//! paper's CNV variants).

use adaflow_model::TensorShape;
use serde::{Deserialize, Serialize};

/// A CHW activation tensor with `u8` elements.
///
/// ```
/// use adaflow_model::TensorShape;
/// use adaflow_nn::Activations;
///
/// let mut t = Activations::zeroed(TensorShape::new(2, 3, 3));
/// t.set(1, 2, 2, 7);
/// assert_eq!(t.at(1, 2, 2), 7);
/// assert_eq!(t.as_slice().len(), 18);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Activations {
    shape: TensorShape,
    data: Vec<u8>,
}

impl Activations {
    /// Creates an all-zero tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape has zero elements.
    #[must_use]
    pub fn zeroed(shape: TensorShape) -> Self {
        assert!(shape.elements() > 0, "shape must have elements");
        Self {
            shape,
            data: vec![0; shape.elements()],
        }
    }

    /// Creates a tensor from CHW-ordered data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.elements()`.
    #[must_use]
    pub fn from_vec(shape: TensorShape, data: Vec<u8>) -> Self {
        assert_eq!(data.len(), shape.elements(), "data length must match shape");
        Self { shape, data }
    }

    /// The tensor's shape.
    #[must_use]
    pub fn shape(&self) -> TensorShape {
        self.shape
    }

    /// Flat CHW view.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Mutable flat CHW view.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Element at `(channel, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[must_use]
    pub fn at(&self, c: usize, y: usize, x: usize) -> u8 {
        self.data[self.index(c, y, x)]
    }

    /// Sets the element at `(channel, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn set(&mut self, c: usize, y: usize, x: usize, value: u8) {
        let i = self.index(c, y, x);
        self.data[i] = value;
    }

    /// Element at `(channel, y, x)`, treating out-of-bounds spatial
    /// coordinates as zero padding. `y`/`x` are signed for this reason.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    #[must_use]
    pub fn at_padded(&self, c: usize, y: isize, x: isize) -> u8 {
        if y < 0 || x < 0 || y as usize >= self.shape.height || x as usize >= self.shape.width {
            0
        } else {
            self.at(c, y as usize, x as usize)
        }
    }

    /// One channel plane as a flat row-major slice.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    #[must_use]
    pub fn channel(&self, c: usize) -> &[u8] {
        assert!(c < self.shape.channels, "channel {c} out of range");
        let s = self.shape.spatial();
        &self.data[c * s..(c + 1) * s]
    }

    fn index(&self, c: usize, y: usize, x: usize) -> usize {
        assert!(c < self.shape.channels, "channel {c} out of range");
        assert!(
            y < self.shape.height && x < self.shape.width,
            "spatial index out of range"
        );
        (c * self.shape.height + y) * self.shape.width + x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_round_trip() {
        let mut t = Activations::zeroed(TensorShape::new(3, 4, 5));
        t.set(2, 3, 4, 255);
        t.set(0, 0, 0, 1);
        assert_eq!(t.at(2, 3, 4), 255);
        assert_eq!(t.at(0, 0, 0), 1);
        assert_eq!(t.at(1, 2, 2), 0);
    }

    #[test]
    fn padded_access() {
        let mut t = Activations::zeroed(TensorShape::new(1, 2, 2));
        t.set(0, 0, 0, 9);
        assert_eq!(t.at_padded(0, -1, 0), 0);
        assert_eq!(t.at_padded(0, 0, -1), 0);
        assert_eq!(t.at_padded(0, 2, 0), 0);
        assert_eq!(t.at_padded(0, 0, 0), 9);
    }

    #[test]
    fn channel_plane() {
        let t = Activations::from_vec(TensorShape::new(2, 2, 2), vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(t.channel(0), &[1, 2, 3, 4]);
        assert_eq!(t.channel(1), &[5, 6, 7, 8]);
    }

    #[test]
    #[should_panic(expected = "data length must match shape")]
    fn from_vec_checks_length() {
        let _ = Activations::from_vec(TensorShape::new(1, 2, 2), vec![0; 3]);
    }

    #[test]
    #[should_panic(expected = "channel")]
    fn out_of_range_channel_panics() {
        let t = Activations::zeroed(TensorShape::new(1, 2, 2));
        let _ = t.at(1, 0, 0);
    }
}
