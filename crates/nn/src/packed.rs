//! Bit-packed SWAR/popcount MVTU kernels.
//!
//! The FINN matrix-vector compute unit that AdaFlow's accelerators
//! instantiate never multiplies: for 1–2-bit domains it ANDs packed
//! bitplanes and popcounts the result ("On the RTL Implementation of FINN
//! Matrix Vector Compute Unit"; Umuroglu et al., FINN). This module is the
//! software mirror of that datapath.
//!
//! ## Representation
//!
//! A weight row `w ∈ {-1, 0, +1}ᵏ` is stored as two disjoint bitplanes
//! packed into `u64` lanes: `plus` has bit `i` set iff `wᵢ = +1`, `minus`
//! iff `wᵢ = -1`, so `w = plus − minus`. An activation vector
//! `a ∈ {0..=3}ᵏ` is decomposed into bitplanes `a = a⁰ + 2·a¹`. The dot
//! product then recombines plane-pair popcounts:
//!
//! ```text
//! dot(w, a) = Σ_p 2^p · (popcount(plus & aᵖ) − popcount(minus & aᵖ))
//! ```
//!
//! — four popcounts per 64 elements in the 2-bit case, two in the 1-bit
//! case. Lanes past `k` are zero in every plane, so they contribute
//! nothing and fan-in need not be a multiple of 64.
//!
//! All kernels here are bit-identical to the i32 GEMM in
//! [`crate::engine`], which stays as the equivalence oracle; eligibility
//! (≤2-bit weights *and* activations, established by
//! [`adaflow_model::mvtu_domains`]) is enforced by the engine's kernel
//! planner, not here.
//!
//! ## Dispatch
//!
//! [`default_backend`] probes AVX2 at runtime (`is_x86_feature_detected!`)
//! and can be overridden with the `ADAFLOW_FORCE_SCALAR` environment
//! variable; the AVX2 path lives in the one `unsafe`-allowing module of
//! the workspace ([`self::avx2`]). [`kernel_thresholds`] measures the
//! GEMM-vs-packed and naive-vs-blocked crossovers once per process so the
//! engine's auto-dispatch is derived from this machine, not a hard-coded
//! width heuristic.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2;

/// Bits per packed lane.
pub const LANE: usize = 64;

/// Number of `u64` words one plane of a length-`k` vector occupies.
#[must_use]
pub const fn plane_words(k: usize) -> usize {
    k.div_ceil(LANE)
}

// ---------------------------------------------------------------------------
// Backend selection.
// ---------------------------------------------------------------------------

/// Which implementation computes the plane-pair popcounts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PackedBackend {
    /// Portable `u64` SWAR with `count_ones()`.
    #[default]
    Scalar,
    /// 256-bit AVX2 path (vpshufb nibble-LUT popcount). Requesting it on a
    /// machine without AVX2 silently computes with the scalar kernel — the
    /// safe wrapper re-checks the capability, so the choice is never
    /// unsound, only advisory.
    Avx2,
}

impl PackedBackend {
    /// Short human-readable label (`"scalar"` / `"avx2"`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Avx2 => "avx2",
        }
    }
}

/// Whether `ADAFLOW_FORCE_SCALAR` is set (to anything but `0`/empty),
/// pinning dispatch to the portable kernels.
#[must_use]
pub fn force_scalar() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| {
        std::env::var("ADAFLOW_FORCE_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0")
    })
}

/// Whether the running CPU offers the AVX2+POPCNT path.
#[must_use]
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        avx2::available()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The backend the engine uses unless overridden: AVX2 when the CPU has it
/// and `ADAFLOW_FORCE_SCALAR` is not set, scalar otherwise.
#[must_use]
pub fn default_backend() -> PackedBackend {
    if !force_scalar() && simd_available() {
        PackedBackend::Avx2
    } else {
        PackedBackend::Scalar
    }
}

// ---------------------------------------------------------------------------
// Weight packing.
// ---------------------------------------------------------------------------

/// The bitplane form of an MVTU weight matrix: per row, a `+1` plane and a
/// `-1` plane of [`plane_words`]`(k)` lanes each. Built once at
/// `Engine::new` time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedWeights {
    rows: usize,
    k: usize,
    words: usize,
    plus: Vec<u64>,
    minus: Vec<u64>,
}

impl PackedWeights {
    /// Packs a row-major `rows × k` weight matrix with entries in
    /// `{-1, 0, +1}`.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != rows * k` or any entry falls outside
    /// the packed domain — the engine only packs layers whose domains the
    /// eligibility analysis has already established.
    #[must_use]
    pub fn pack(weights: &[i8], rows: usize, k: usize) -> Self {
        assert_eq!(weights.len(), rows * k, "weight geometry");
        let words = plane_words(k);
        let mut plus = vec![0u64; rows * words];
        let mut minus = vec![0u64; rows * words];
        for r in 0..rows {
            for (i, &w) in weights[r * k..(r + 1) * k].iter().enumerate() {
                assert!((-1..=1).contains(&w), "weight {w} outside packed domain");
                let bit = 1u64 << (i % LANE);
                if w > 0 {
                    plus[r * words + i / LANE] |= bit;
                } else if w < 0 {
                    minus[r * words + i / LANE] |= bit;
                }
            }
        }
        Self {
            rows,
            k,
            words,
            plus,
            minus,
        }
    }

    /// Number of weight rows (output channels / features).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Dot-product length the planes were packed from.
    #[must_use]
    pub fn fan_in(&self) -> usize {
        self.k
    }

    /// Lanes per plane.
    #[must_use]
    pub fn words(&self) -> usize {
        self.words
    }

    /// Heap bytes held by the planes.
    #[must_use]
    pub fn bytes(&self) -> usize {
        (self.plus.len() + self.minus.len()) * std::mem::size_of::<u64>()
    }

    /// The `(+1, -1)` planes of row `r`.
    #[must_use]
    pub fn row(&self, r: usize) -> (&[u64], &[u64]) {
        let span = r * self.words..(r + 1) * self.words;
        (&self.plus[span.clone()], &self.minus[span])
    }
}

// ---------------------------------------------------------------------------
// Activation packing.
// ---------------------------------------------------------------------------

/// `u64` words needed to pack `rows` activation vectors of length `k` into
/// `planes` bitplanes — the scratch budget of one packed layer.
#[must_use]
pub const fn act_pack_words(rows: usize, k: usize, planes: usize) -> usize {
    rows * planes * plane_words(k)
}

/// Packs `rows` row-major activation vectors (`bytes[r*k..][..k]`, entries
/// `< 2^planes`) into bitplanes: `out[r*planes*words ..]` holds row `r` as
/// `planes` consecutive planes of [`plane_words`]`(k)` lanes. Tail lanes
/// are zeroed.
///
/// # Panics
///
/// Panics if the buffers are too small; debug builds also assert every
/// byte fits the plane count.
pub fn pack_act_rows(bytes: &[u8], rows: usize, k: usize, planes: usize, out: &mut [u64]) {
    assert!((1..=2).contains(&planes), "packed contract is 1–2 planes");
    assert!(bytes.len() >= rows * k, "activation geometry");
    let words = plane_words(k);
    let stride = planes * words;
    assert!(out.len() >= rows * stride, "packed scratch too small");
    for r in 0..rows {
        pack_act_row(
            &bytes[r * k..(r + 1) * k],
            planes,
            &mut out[r * stride..(r + 1) * stride],
        );
    }
}

/// Multiplier that gathers the low bit of each byte of a `u64` into the
/// top byte: with `y = x & 0x0101…01`, `(y * GATHER) >> 56` has bit `i`
/// equal to byte `i` of `y`. The partial products never collide, so the
/// gather is carry-free.
const GATHER: u64 = 0x0102_0408_1020_4080;
/// Low-bit-of-every-byte mask.
const BYTE_LSB: u64 = 0x0101_0101_0101_0101;

#[inline]
fn gather_lsb(x: u64) -> u64 {
    ((x & BYTE_LSB).wrapping_mul(GATHER)) >> 56
}

/// Packs one activation vector into `planes` consecutive bitplanes.
fn pack_act_row(bytes: &[u8], planes: usize, dst: &mut [u64]) {
    debug_assert!(
        bytes.iter().all(|&b| usize::from(b) >> planes == 0),
        "activation exceeds plane budget"
    );
    let words = dst.len() / planes;
    let (p0, p1) = dst.split_at_mut(words);
    for (w, chunk) in bytes.chunks(LANE).enumerate() {
        let mut b0 = 0u64;
        let mut b1 = 0u64;
        let mut off = 0u32;
        let eights = chunk.chunks_exact(8);
        let tail = eights.remainder();
        for oct in eights {
            // Eight bytes at once: SWAR-gather the plane bits.
            let x = u64::from_le_bytes(oct.try_into().expect("8-byte chunk"));
            b0 |= gather_lsb(x) << off;
            b1 |= gather_lsb(x >> 1) << off;
            off += 8;
        }
        for (j, &b) in tail.iter().enumerate() {
            b0 |= u64::from(b & 1) << (off + j as u32);
            b1 |= u64::from((b >> 1) & 1) << (off + j as u32);
        }
        // Whole-lane assignment (not |=) clears stale bits when scratch is
        // reused, and `chunks` covers exactly `plane_words(len)` lanes.
        p0[w] = b0;
        if planes == 2 {
            p1[w] = b1;
        }
    }
}

// ---------------------------------------------------------------------------
// Popcount dot products.
// ---------------------------------------------------------------------------

/// One packed dot product over the portable SWAR path:
/// `Σ_p 2^p · (popcount(plus & actᵖ) − popcount(minus & actᵖ))`.
#[must_use]
pub fn dot_packed_scalar(
    plus: &[u64],
    minus: &[u64],
    act: &[u64],
    planes: usize,
    words: usize,
) -> i32 {
    debug_assert_eq!(plus.len(), words);
    debug_assert_eq!(minus.len(), words);
    debug_assert!(act.len() >= planes * words);
    let mut acc = 0i32;
    for p in 0..planes {
        let plane = &act[p * words..(p + 1) * words];
        let mut pos = 0u32;
        let mut neg = 0u32;
        for w in 0..words {
            pos += (plus[w] & plane[w]).count_ones();
            neg += (minus[w] & plane[w]).count_ones();
        }
        // Shift-weighted recombination; |pos-neg| ≤ k so no plane term can
        // overflow, and AF006 bounds the full sum.
        acc += (pos as i32 - neg as i32) << p;
    }
    acc
}

/// One packed dot product on the chosen backend. The AVX2 path re-checks
/// CPU capability and falls back to scalar, so any backend value is safe
/// on any machine.
#[inline]
#[must_use]
pub fn dot_packed(
    plus: &[u64],
    minus: &[u64],
    act: &[u64],
    planes: usize,
    words: usize,
    backend: PackedBackend,
) -> i32 {
    match backend {
        PackedBackend::Scalar => dot_packed_scalar(plus, minus, act, planes, words),
        PackedBackend::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            {
                avx2::dot(plus, minus, act, planes, words)
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                dot_packed_scalar(plus, minus, act, planes, words)
            }
        }
    }
}

/// Packed GEMM: `out[i*n + j] = dot(weights.row(i), acts[j])` where
/// `acts` holds `n` packed activation vectors laid out by
/// [`pack_act_rows`]. Bit-identical to `gemm_i32` over the unpacked
/// operands.
pub fn packed_gemm(
    weights: &PackedWeights,
    acts: &[u64],
    n: usize,
    planes: usize,
    out: &mut [i32],
    backend: PackedBackend,
) {
    let words = weights.words;
    let stride = planes * words;
    debug_assert!(acts.len() >= n * stride);
    debug_assert!(out.len() >= weights.rows * n);
    #[cfg(target_arch = "x86_64")]
    if backend == PackedBackend::Avx2 && avx2::available() {
        for i in 0..weights.rows {
            let (wp, wn) = weights.row(i);
            avx2::gemm_row(wp, wn, acts, n, planes, words, &mut out[i * n..(i + 1) * n]);
        }
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = backend;
    for i in 0..weights.rows {
        let (wp, wn) = weights.row(i);
        for j in 0..n {
            out[i * n + j] =
                dot_packed_scalar(wp, wn, &acts[j * stride..(j + 1) * stride], planes, words);
        }
    }
}

// ---------------------------------------------------------------------------
// Measured dispatch thresholds.
// ---------------------------------------------------------------------------

/// Machine-derived kernel crossover points, measured once per process (or
/// pinned via environment variables for reproducible runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelThresholds {
    /// Minimum inner dimension at which the blocked GEMM beats the naive
    /// row-dot loop (`ADAFLOW_GEMM_MIN_K` overrides).
    pub gemm_min_k: usize,
    /// Minimum row count at which packing activations + popcount GEMM
    /// beats the blocked i32 GEMM (`ADAFLOW_PACKED_MIN_ROWS` overrides).
    pub packed_min_rows: usize,
}

/// The process-wide measured thresholds. The first call runs two short
/// micro-benchmarks (a few hundred microseconds); later calls return the
/// cached result. Every kernel choice they steer is bit-identical, so the
/// nondeterminism of measurement can never change an inference result,
/// only its speed.
#[must_use]
pub fn kernel_thresholds() -> KernelThresholds {
    static T: OnceLock<KernelThresholds> = OnceLock::new();
    *T.get_or_init(|| {
        let gemm_min_k = env_usize("ADAFLOW_GEMM_MIN_K").unwrap_or_else(measure_gemm_min_k);
        // The packed probe dispatches GEMM with the value above directly —
        // it must not call back into `kernel_thresholds()` mid-init.
        let packed_min_rows = env_usize("ADAFLOW_PACKED_MIN_ROWS")
            .unwrap_or_else(|| measure_packed_min_rows(gemm_min_k));
        KernelThresholds {
            gemm_min_k,
            packed_min_rows,
        }
    })
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.parse().ok()
}

/// Best-of-three timing of `reps` runs of `f`.
fn best_of(reps: usize, mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(t.elapsed());
    }
    best
}

/// Deterministic pseudo-random fill for the calibration operands.
fn fill_cal(len: usize, modulus: u8, offset: i16) -> (Vec<i8>, Vec<u8>) {
    let mut state = 0x9e37_79b9_u32;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        state
    };
    let a: Vec<i8> = (0..len)
        .map(|_| ((next() % u32::from(modulus)) as i16 + offset) as i8)
        .collect();
    let b: Vec<u8> = (0..len)
        .map(|_| (next() % u32::from(modulus)) as u8)
        .collect();
    (a, b)
}

/// Finds the smallest inner dimension where the blocked GEMM wins over the
/// naive loop on an 8×8 problem.
fn measure_gemm_min_k() -> usize {
    const M: usize = 8;
    const N: usize = 8;
    const CANDIDATES: [usize; 5] = [4, 8, 16, 32, 64];
    for k in CANDIDATES {
        let (a, _) = fill_cal(M * k, 3, -1);
        let (_, b) = fill_cal(N * k, 4, 0);
        let mut out = vec![0i32; M * N];
        let naive = best_of(128, || {
            crate::engine::gemm_i32_naive(&a, &b, M, N, k, &mut out);
            std::hint::black_box(&out);
        });
        let blocked = best_of(128, || {
            crate::engine::gemm_i32_blocked(&a, &b, M, N, k, &mut out);
            std::hint::black_box(&out);
        });
        if blocked <= naive {
            return k;
        }
    }
    *CANDIDATES.last().expect("non-empty")
}

/// Finds the smallest row count where pack-and-popcount beats the blocked
/// i32 GEMM on a CNV-like tile (k = 256, 16 pixels, 2-bit domains).
/// Takes the already-measured GEMM crossover instead of calling
/// [`kernel_thresholds`] — this runs inside that initializer.
fn measure_packed_min_rows(gemm_min_k: usize) -> usize {
    const K: usize = 256;
    const N: usize = 16;
    const CANDIDATES: [usize; 6] = [1, 2, 4, 8, 16, 32];
    let backend = default_backend();
    for rows in CANDIDATES {
        let (w, _) = fill_cal(rows * K, 3, -1);
        let (_, acts) = fill_cal(N * K, 4, 0);
        let mut out = vec![0i32; rows * N];
        let use_blocked =
            rows >= crate::engine::GEMM_MR && N >= crate::engine::GEMM_NR && K >= gemm_min_k;
        let gemm = best_of(64, || {
            if use_blocked {
                crate::engine::gemm_i32_blocked(&w, &acts, rows, N, K, &mut out);
            } else {
                crate::engine::gemm_i32_naive(&w, &acts, rows, N, K, &mut out);
            }
            std::hint::black_box(&out);
        });
        let packed_w = PackedWeights::pack(&w, rows, K);
        let mut packed_acts = vec![0u64; act_pack_words(N, K, 2)];
        let timed = best_of(64, || {
            pack_act_rows(&acts, N, K, 2, &mut packed_acts);
            packed_gemm(&packed_w, &packed_acts, N, 2, &mut out, backend);
            std::hint::black_box(&out);
        });
        if timed <= gemm {
            return rows;
        }
    }
    *CANDIDATES.last().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn random_case(seed: u64, rows: usize, k: usize, max_act: u8) -> (Vec<i8>, Vec<u8>) {
        let mut s = seed.max(1);
        let w: Vec<i8> = (0..rows * k)
            .map(|_| (xorshift(&mut s) % 3) as i8 - 1)
            .collect();
        let a: Vec<u8> = (0..k)
            .map(|_| (xorshift(&mut s) % (u64::from(max_act) + 1)) as u8)
            .collect();
        (w, a)
    }

    fn reference_dot(w: &[i8], a: &[u8]) -> i32 {
        w.iter()
            .zip(a)
            .map(|(&w, &a)| i32::from(w) * i32::from(a))
            .sum()
    }

    #[test]
    fn scalar_dot_matches_reference_across_fan_ins() {
        // Fan-ins straddling lane boundaries, including non-multiples of 64.
        for &k in &[1usize, 7, 63, 64, 65, 72, 100, 127, 128, 200, 576] {
            for planes in 1..=2usize {
                let max_act = if planes == 1 { 1 } else { 3 };
                let (w, a) = random_case(k as u64 * 7 + planes as u64, 1, k, max_act);
                let pw = PackedWeights::pack(&w, 1, k);
                let mut acts = vec![0u64; act_pack_words(1, k, planes)];
                pack_act_rows(&a, 1, k, planes, &mut acts);
                let (wp, wn) = pw.row(0);
                assert_eq!(
                    dot_packed_scalar(wp, wn, &acts, planes, pw.words()),
                    reference_dot(&w, &a),
                    "k={k} planes={planes}"
                );
            }
        }
    }

    #[test]
    fn all_ones_and_all_zeros_planes() {
        let k = 130; // 2 full lanes + 2-bit tail
        let w_ones = vec![1i8; k];
        let w_negs = vec![-1i8; k];
        let w_zeros = vec![0i8; k];
        let a_max = vec![3u8; k];
        let a_zero = vec![0u8; k];
        for (w, a, expect) in [
            (&w_ones, &a_max, 3 * k as i32),
            (&w_negs, &a_max, -3 * (k as i32)),
            (&w_zeros, &a_max, 0),
            (&w_ones, &a_zero, 0),
        ] {
            let pw = PackedWeights::pack(w, 1, k);
            let mut acts = vec![0u64; act_pack_words(1, k, 2)];
            pack_act_rows(a, 1, k, 2, &mut acts);
            let (wp, wn) = pw.row(0);
            assert_eq!(dot_packed_scalar(wp, wn, &acts, 2, pw.words()), expect);
        }
    }

    #[test]
    fn avx2_matches_scalar_when_available() {
        if !simd_available() {
            eprintln!("skipping: no AVX2 on this machine");
            return;
        }
        for &k in &[1usize, 64, 65, 200, 576, 1000, 4096] {
            for planes in 1..=2usize {
                let max_act = if planes == 1 { 1 } else { 3 };
                let (w, a) = random_case(k as u64 * 31 + planes as u64, 1, k, max_act);
                let pw = PackedWeights::pack(&w, 1, k);
                let mut acts = vec![0u64; act_pack_words(1, k, planes)];
                pack_act_rows(&a, 1, k, planes, &mut acts);
                let (wp, wn) = pw.row(0);
                let scalar = dot_packed_scalar(wp, wn, &acts, planes, pw.words());
                let simd = dot_packed(wp, wn, &acts, planes, pw.words(), PackedBackend::Avx2);
                assert_eq!(simd, scalar, "k={k} planes={planes}");
            }
        }
    }

    #[test]
    fn packed_gemm_matches_i32_gemm_oracle() {
        for (rows, n, k, seed) in [
            (3usize, 5usize, 70usize, 1u64),
            (8, 16, 256, 2),
            (5, 1, 129, 3),
        ] {
            let mut s = seed;
            let w: Vec<i8> = (0..rows * k)
                .map(|_| (xorshift(&mut s) % 3) as i8 - 1)
                .collect();
            let acts: Vec<u8> = (0..n * k).map(|_| (xorshift(&mut s) % 4) as u8).collect();
            let mut oracle = vec![0i32; rows * n];
            crate::engine::gemm_i32(&w, &acts, rows, n, k, &mut oracle);
            let pw = PackedWeights::pack(&w, rows, k);
            let mut packed_acts = vec![0u64; act_pack_words(n, k, 2)];
            pack_act_rows(&acts, n, k, 2, &mut packed_acts);
            for backend in [PackedBackend::Scalar, PackedBackend::Avx2] {
                let mut out = vec![0i32; rows * n];
                packed_gemm(&pw, &packed_acts, n, 2, &mut out, backend);
                assert_eq!(out, oracle, "rows={rows} n={n} k={k} {backend:?}");
            }
        }
    }

    #[test]
    fn accumulator_saturation_is_exact_at_large_fan_in() {
        // Worst case the AF006 domain bound admits for packed layers:
        // all +1 weights against all-3 activations at a huge fan-in. The
        // plane counts approach words·64 without wrapping the i32.
        let k = 1 << 20; // 1Mi elements → dot = 3·2^20 ≈ 3.1e6
        let w = vec![1i8; k];
        let a = vec![3u8; k];
        let pw = PackedWeights::pack(&w, 1, k);
        let mut acts = vec![0u64; act_pack_words(1, k, 2)];
        pack_act_rows(&a, 1, k, 2, &mut acts);
        let (wp, wn) = pw.row(0);
        let expect = 3 * k as i32;
        assert_eq!(dot_packed_scalar(wp, wn, &acts, 2, pw.words()), expect);
        if simd_available() {
            assert_eq!(
                dot_packed(wp, wn, &acts, 2, pw.words(), PackedBackend::Avx2),
                expect
            );
        }
    }

    #[test]
    fn scratch_reuse_zeroes_stale_tail_lanes() {
        let planes = 2;
        let k_big = 100;
        let k_small = 65; // same word count, shorter tail
        let mut acts = vec![0u64; act_pack_words(1, k_big, planes)];
        let big = vec![3u8; k_big];
        let small = vec![1u8; k_small];
        let ones = vec![1i8; k_small];
        pack_act_rows(&big, 1, k_big, planes, &mut acts);
        pack_act_rows(&small, 1, k_small, planes, &mut acts);
        let pw = PackedWeights::pack(&ones, 1, k_small);
        let (wp, wn) = pw.row(0);
        assert_eq!(
            dot_packed_scalar(wp, wn, &acts, planes, pw.words()),
            k_small as i32,
            "stale bits from the longer vector must not leak"
        );
    }

    #[test]
    fn thresholds_are_positive_and_cached() {
        let t1 = kernel_thresholds();
        let t2 = kernel_thresholds();
        assert_eq!(t1, t2);
        assert!(t1.gemm_min_k >= 4);
        assert!(t1.packed_min_rows >= 1);
    }

    #[test]
    fn gather_lsb_extracts_byte_low_bits() {
        assert_eq!(gather_lsb(0x0101_0101_0101_0101), 0xff);
        assert_eq!(gather_lsb(0), 0);
        assert_eq!(
            gather_lsb(u64::from_le_bytes([1, 0, 0, 1, 0, 0, 1, 0])),
            0b0100_1001
        );
        assert_eq!(
            gather_lsb(u64::from_le_bytes([1, 0, 1, 0, 0, 0, 0, 1])),
            0b1000_0101
        );
    }
}
