//! A reusable protocol client: connect, pipelined send, id-correlated
//! receive.
//!
//! Every process that talks to a live AdaFlow endpoint — the load
//! generator, the gateway's backend legs, ad-hoc tooling — needs the same
//! three capabilities:
//!
//! * **pipelined send** — write any number of requests without waiting for
//!   responses (the protocol's request ids make interleaving safe);
//! * **incremental receive** — feed socket chunks through a [`FrameReader`]
//!   and surface complete [`ResponseFrame`]s as they arrive;
//! * **id correlation** — wait for *a specific* response while stashing
//!   out-of-order arrivals for later claims instead of dropping them.
//!
//! [`ProtoClient`] packages exactly that over one `TcpStream`, so the
//! socket-handling code exists once instead of being re-rolled per caller.
//! The codec stays byte-pure (`frame`/`reader`); this module is the only
//! part of the crate that owns a socket.

use crate::error::ProtoError;
use crate::frame::{encode_frame, Frame, RequestFrame, ResponseFrame};
use crate::reader::FrameReader;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};
use thiserror::Error;

/// Why a receive attempt failed. Send failures surface as plain
/// `std::io::Error` from [`ProtoClient::send`].
#[derive(Debug, Error)]
pub enum ClientError {
    /// The socket read failed (not a timeout — timeouts are `Ok(None)`).
    #[error("socket error: {0}")]
    Io(#[from] std::io::Error),
    /// The peer's bytes are not valid protocol; the stream is
    /// unsynchronized and the connection should be dropped.
    #[error("protocol error: {0}")]
    Proto(#[from] ProtoError),
    /// The peer sent a *request* frame; servers only ever send responses,
    /// so the stream is not speaking the expected half of the protocol.
    #[error("peer sent a request frame on a client connection")]
    UnexpectedRequest,
    /// The peer closed the connection (clean EOF).
    #[error("connection closed by peer")]
    Closed,
}

impl ClientError {
    /// Whether this failure is a protocol violation (as opposed to a
    /// transport-level problem) — the distinction load summaries report.
    #[must_use]
    pub fn is_protocol(&self) -> bool {
        matches!(self, ClientError::Proto(_) | ClientError::UnexpectedRequest)
    }
}

/// A pipelined, id-correlating protocol client over one TCP connection.
///
/// Reads are paced by the stream's read timeout (see
/// [`set_read_timeout`](Self::set_read_timeout)): [`try_recv`] blocks for at
/// most one timeout window, [`recv_id`] loops windows until its own
/// deadline. A timeout is *not* an error — it is "nothing arrived yet"
/// (`Ok(None)`).
///
/// [`try_recv`]: Self::try_recv
/// [`recv_id`]: Self::recv_id
#[derive(Debug)]
pub struct ProtoClient {
    stream: TcpStream,
    frames: FrameReader,
    /// Responses received while waiting for a different id, claimable by
    /// a later [`recv_id`](Self::recv_id) call.
    stash: HashMap<u64, ResponseFrame>,
    sent: u64,
    received: u64,
}

impl ProtoClient {
    /// Connects to `addr` with `TCP_NODELAY` set (request/response traffic
    /// is latency-bound, never throughput-bound enough for Nagle to help).
    ///
    /// # Errors
    ///
    /// Connection-level I/O errors.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self::from_stream(stream))
    }

    /// Wraps an already-connected stream (e.g. accepted or cloned by the
    /// caller). Does not change the stream's options.
    #[must_use]
    pub fn from_stream(stream: TcpStream) -> Self {
        Self {
            stream,
            frames: FrameReader::new(),
            stash: HashMap::new(),
            sent: 0,
            received: 0,
        }
    }

    /// Sets the read-timeout window that paces [`try_recv`](Self::try_recv)
    /// and [`recv_id`](Self::recv_id).
    ///
    /// # Errors
    ///
    /// I/O errors from the socket option call.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Requests written to the wire so far.
    #[must_use]
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Responses decoded so far (claimed or stashed).
    #[must_use]
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Responses received but not yet claimed by id.
    #[must_use]
    pub fn stashed(&self) -> usize {
        self.stash.len()
    }

    /// Writes one request, pipelined — any number may be outstanding; the
    /// response comes back whenever the server finishes it, correlated by
    /// [`RequestFrame::id`].
    ///
    /// # Errors
    ///
    /// Socket write errors.
    pub fn send(&mut self, request: &RequestFrame) -> std::io::Result<()> {
        let bytes = encode_frame(&Frame::Request(request.clone()));
        self.stream.write_all(&bytes)?;
        self.sent += 1;
        Ok(())
    }

    /// Returns the next response from the wire, in arrival order, waiting
    /// at most one read-timeout window. `Ok(None)` means nothing complete
    /// arrived within the window. Stashed responses are *not* returned
    /// here — they belong to a pending [`recv_id`](Self::recv_id) claim.
    ///
    /// # Errors
    ///
    /// [`ClientError::Closed`] on EOF, [`ClientError::Proto`] /
    /// [`ClientError::UnexpectedRequest`] on protocol violations,
    /// [`ClientError::Io`] on socket failures.
    pub fn try_recv(&mut self) -> Result<Option<ResponseFrame>, ClientError> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.frames.next_frame()? {
                Some(Frame::Response(response)) => {
                    self.received += 1;
                    return Ok(Some(response));
                }
                Some(Frame::Request(_)) => return Err(ClientError::UnexpectedRequest),
                None => {}
            }
            match self.stream.read(&mut buf) {
                Ok(0) => return Err(ClientError::Closed),
                Ok(n) => self.frames.feed(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(None);
                }
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }

    /// Waits up to `timeout` for the response to request `id`, stashing
    /// any other responses that arrive first so later claims find them.
    /// `Ok(None)` means the deadline passed with no matching response.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`try_recv`](Self::try_recv).
    pub fn recv_id(
        &mut self,
        id: u64,
        timeout: Duration,
    ) -> Result<Option<ResponseFrame>, ClientError> {
        if let Some(response) = self.stash.remove(&id) {
            return Ok(Some(response));
        }
        let deadline = Instant::now() + timeout;
        loop {
            match self.try_recv()? {
                Some(response) if response.id == id => return Ok(Some(response)),
                Some(response) => {
                    self.stash.insert(response.id, response);
                }
                None => {
                    if Instant::now() >= deadline {
                        return Ok(None);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Status;
    use std::net::TcpListener;

    fn response(id: u64) -> ResponseFrame {
        ResponseFrame {
            id,
            status: Status::Ok,
            label: (id % 10) as u16,
            queue_us: 1,
            service_us: 2,
            latency_us: 3,
        }
    }

    /// A loopback peer that answers every request `i` with response ids in
    /// `order(i)` — lets tests shape arbitrary out-of-order pipelines.
    fn echo_server(
        listener: TcpListener,
        respond: impl Fn(Vec<RequestFrame>) -> Vec<ResponseFrame> + Send + 'static,
    ) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accepts");
            let mut frames = FrameReader::new();
            let mut buf = [0u8; 4096];
            let mut requests = Vec::new();
            loop {
                let n = stream.read(&mut buf).unwrap_or(0);
                if n == 0 {
                    break;
                }
                frames.feed(&buf[..n]);
                while let Ok(Some(Frame::Request(r))) = frames.next_frame() {
                    requests.push(r);
                }
                if requests.len() >= 3 {
                    break;
                }
            }
            for r in respond(requests) {
                stream
                    .write_all(&encode_frame(&Frame::Response(r)))
                    .expect("writes");
            }
        })
    }

    fn request(id: u64) -> RequestFrame {
        RequestFrame {
            id,
            deadline_us: 0,
            model: "m".to_string(),
            channels: 1,
            height: 2,
            width: 2,
            data: vec![0; 4],
        }
    }

    #[test]
    fn pipelined_out_of_order_responses_correlate_by_id() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        // Answer the three pipelined requests in reverse order.
        let server = echo_server(listener, |reqs| {
            reqs.iter().rev().map(|r| response(r.id)).collect()
        });

        let mut client = ProtoClient::connect(addr).expect("connects");
        client
            .set_read_timeout(Some(Duration::from_millis(20)))
            .expect("timeout");
        for id in [10, 11, 12] {
            client.send(&request(id)).expect("sends");
        }
        assert_eq!(client.sent(), 3);
        // Claim in send order even though arrivals are reversed: the stash
        // holds 12 and 11 while we wait for 10.
        for id in [10u64, 11, 12] {
            let r = client
                .recv_id(id, Duration::from_secs(5))
                .expect("no error")
                .expect("response arrives");
            assert_eq!(r.id, id);
        }
        assert_eq!(client.received(), 3);
        assert_eq!(client.stashed(), 0);
        server.join().expect("server thread");
    }

    #[test]
    fn timeout_is_none_not_error() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        // Keep the listener alive but never accept-and-respond.
        let mut client = ProtoClient::connect(addr).expect("connects");
        client
            .set_read_timeout(Some(Duration::from_millis(10)))
            .expect("timeout");
        assert!(client
            .try_recv()
            .expect("timeout is not an error")
            .is_none());
        assert!(client
            .recv_id(7, Duration::from_millis(30))
            .expect("timeout is not an error")
            .is_none());
    }

    #[test]
    fn eof_and_garbage_are_typed() {
        // EOF: server accepts then immediately closes.
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        let t = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accepts");
            drop(stream);
        });
        let mut client = ProtoClient::connect(addr).expect("connects");
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        assert!(matches!(client.try_recv(), Err(ClientError::Closed)));
        t.join().expect("thread");

        // Garbage: server answers with non-protocol bytes.
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        let t = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accepts");
            stream.write_all(&[0xFF; 32]).expect("writes");
        });
        let mut client = ProtoClient::connect(addr).expect("connects");
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let err = loop {
            match client.try_recv() {
                Ok(None) => continue,
                Ok(Some(_)) => panic!("garbage decoded"),
                Err(e) => break e,
            }
        };
        assert!(err.is_protocol(), "{err:?}");
        t.join().expect("thread");
    }
}
