//! Incremental frame extraction from a byte stream.
//!
//! [`FrameReader`] is the stream-side half of the protocol: a transport
//! feeds it whatever chunks the socket yields — one byte at a time, a
//! frame and a half, anything — and pulls out complete frames as they
//! become available. Header fields are validated eagerly as soon as the
//! first 8 bytes of a frame are buffered, so a hostile length prefix is
//! rejected before any payload is accumulated.

use crate::error::ProtoError;
use crate::frame::{check_header, decode_payload, Frame, HEADER_LEN};

/// Incremental decoder over an append-only byte stream.
///
/// Errors are *sticky*: once the stream desynchronizes (bad magic, wrong
/// version, malformed payload…) every subsequent [`next_frame`] call
/// returns the same error. There is no resynchronization heuristic — the
/// correct response to a protocol violation is to drop the connection.
///
/// [`next_frame`]: FrameReader::next_frame
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by returned frames.
    consumed: usize,
    /// First error encountered, replayed forever after.
    poisoned: Option<ProtoError>,
    frames_decoded: u64,
}

impl FrameReader {
    /// Creates an empty reader.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly received bytes to the internal buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.poisoned.is_some() {
            return; // the connection is doomed; don't accumulate garbage
        }
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Number of complete frames this reader has produced.
    #[must_use]
    pub fn frames_decoded(&self) -> u64 {
        self.frames_decoded
    }

    /// Bytes currently buffered and not yet consumed by a frame.
    #[must_use]
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Tries to extract the next complete frame.
    ///
    /// Returns `Ok(None)` when the buffered bytes form only a prefix of a
    /// frame (more input needed), `Ok(Some(frame))` when a complete frame
    /// was decoded, and `Err` when the stream is not valid protocol. After
    /// an error the reader is poisoned and returns the same error forever.
    ///
    /// # Errors
    ///
    /// Any [`ProtoError`] other than `Truncated` (incompleteness is
    /// reported as `Ok(None)` here, not as an error).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, ProtoError> {
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        let pending = &self.buf[self.consumed..];
        if pending.len() < HEADER_LEN {
            return Ok(None);
        }
        let header: [u8; HEADER_LEN] = pending[..HEADER_LEN].try_into().expect("sliced to length");
        let (payload_len, frame_type) = match check_header(&header) {
            Ok(v) => v,
            Err(err) => return Err(self.poison(err)),
        };
        let total = HEADER_LEN + payload_len;
        if pending.len() < total {
            return Ok(None);
        }
        let frame = match decode_payload(frame_type, &pending[HEADER_LEN..total]) {
            Ok(f) => f,
            Err(err) => return Err(self.poison(err)),
        };
        self.consumed += total;
        self.frames_decoded += 1;
        self.compact();
        Ok(Some(frame))
    }

    /// Whether a previous call has poisoned the reader.
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    fn poison(&mut self, err: ProtoError) -> ProtoError {
        self.poisoned = Some(err.clone());
        err
    }

    /// Drops consumed bytes once they dominate the buffer, keeping the
    /// amortized cost of `feed` linear in bytes received.
    fn compact(&mut self) {
        if self.consumed > 0 && (self.consumed >= 4096 || self.consumed == self.buf.len()) {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{encode_frame, Frame, ResponseFrame, Status, MAGIC, VERSION};

    fn sample() -> Frame {
        Frame::Response(ResponseFrame {
            id: 9,
            status: Status::Ok,
            label: 3,
            queue_us: 10,
            service_us: 20,
            latency_us: 30,
        })
    }

    #[test]
    fn byte_at_a_time_still_decodes() {
        let bytes = encode_frame(&sample());
        let mut reader = FrameReader::new();
        for (i, b) in bytes.iter().enumerate() {
            reader.feed(&[*b]);
            let got = reader.next_frame().expect("no error");
            if i + 1 < bytes.len() {
                assert!(got.is_none(), "frame surfaced early at byte {i}");
            } else {
                assert_eq!(got, Some(sample()));
            }
        }
        assert_eq!(reader.pending_bytes(), 0);
        assert_eq!(reader.frames_decoded(), 1);
    }

    #[test]
    fn back_to_back_frames_in_one_feed() {
        let mut bytes = encode_frame(&sample());
        bytes.extend_from_slice(&encode_frame(&sample()));
        let mut reader = FrameReader::new();
        reader.feed(&bytes);
        assert_eq!(reader.next_frame().unwrap(), Some(sample()));
        assert_eq!(reader.next_frame().unwrap(), Some(sample()));
        assert_eq!(reader.next_frame().unwrap(), None);
    }

    #[test]
    fn errors_are_sticky() {
        let mut reader = FrameReader::new();
        reader.feed(&[0xFF; 16]);
        let first = reader.next_frame().unwrap_err();
        assert!(matches!(first, ProtoError::BadMagic { .. }));
        // Even valid bytes afterwards don't resynchronize the stream.
        reader.feed(&encode_frame(&sample()));
        assert_eq!(reader.next_frame().unwrap_err(), first);
        assert!(reader.is_poisoned());
    }

    #[test]
    fn oversized_prefix_rejected_before_payload_arrives() {
        let mut header = Vec::new();
        header.extend_from_slice(&MAGIC);
        header.push(VERSION);
        header.push(2);
        header.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut reader = FrameReader::new();
        reader.feed(&header);
        assert!(matches!(
            reader.next_frame(),
            Err(ProtoError::Oversized { .. })
        ));
    }

    #[test]
    fn compaction_keeps_buffer_bounded() {
        let bytes = encode_frame(&sample());
        let mut reader = FrameReader::new();
        for _ in 0..1_000 {
            reader.feed(&bytes);
            assert!(reader.next_frame().unwrap().is_some());
        }
        assert_eq!(reader.pending_bytes(), 0);
        assert!(reader.buf.len() < 8192, "buffer grew without bound");
    }
}
