//! Typed decode errors.
//!
//! Every way a byte stream can fail to be a valid frame maps to exactly one
//! variant, so transports and tests can assert on the failure mode rather
//! than on a message string. None of these are ever produced by panicking —
//! the decoder is total over arbitrary input.

use thiserror::Error;

/// Why a byte sequence is not a valid frame.
#[derive(Debug, Clone, PartialEq, Eq, Error)]
pub enum ProtoError {
    /// The first two bytes are not the protocol magic.
    #[error("bad magic bytes {found:02x?} (expected {expected:02x?})")]
    BadMagic {
        /// The bytes found on the wire.
        found: [u8; 2],
        /// The expected magic.
        expected: [u8; 2],
    },

    /// The header carries a protocol version this build does not speak.
    #[error("unsupported protocol version {found} (this build speaks {supported})")]
    UnsupportedVersion {
        /// Version byte found in the header.
        found: u8,
        /// The version this build implements.
        supported: u8,
    },

    /// The frame-type byte is not a known frame kind.
    #[error("unknown frame type {0:#04x}")]
    UnknownFrameType(u8),

    /// The length prefix exceeds the protocol's payload cap — treated as a
    /// protocol violation rather than an allocation request.
    #[error("length prefix {len} exceeds the {max}-byte payload cap")]
    Oversized {
        /// Declared payload length.
        len: u64,
        /// The configured cap.
        max: u64,
    },

    /// A complete-slice decode was handed fewer bytes than the frame needs
    /// (incremental readers report this case as "no frame yet" instead).
    #[error("truncated frame: need {needed} bytes, have {have}")]
    Truncated {
        /// Bytes required to finish the frame.
        needed: usize,
        /// Bytes available.
        have: usize,
    },

    /// The payload ended before a field could be read, or its sections do
    /// not tile the declared length.
    #[error("malformed {frame} payload: {detail}")]
    MalformedPayload {
        /// Which frame kind was being decoded.
        frame: &'static str,
        /// What went wrong.
        detail: String,
    },

    /// The model-id bytes are not valid UTF-8.
    #[error("model id is not valid UTF-8")]
    ModelNotUtf8,

    /// A response carried a status code outside the catalog.
    #[error("unknown status code {0}")]
    UnknownStatus(u8),
}

impl ProtoError {
    /// Builds a malformed-payload error.
    pub(crate) fn payload(frame: &'static str, detail: impl Into<String>) -> Self {
        ProtoError::MalformedPayload {
            frame,
            detail: detail.into(),
        }
    }
}
