//! Frame types and the pure slice codec.
//!
//! [`encode_frame`] and [`decode_frame`] are exact inverses over every
//! well-formed frame (property-tested in `tests/proto_props.rs`), and
//! `decode_frame` is total over arbitrary bytes — every failure is a typed
//! [`ProtoError`], never a panic.

use crate::error::ProtoError;

/// Protocol magic: the first two bytes of every frame.
pub const MAGIC: [u8; 2] = [0xAD, 0xF1];

/// The protocol version this build speaks.
pub const VERSION: u8 = 1;

/// Header size in bytes (magic + version + type + length prefix).
pub const HEADER_LEN: usize = 8;

/// Maximum payload length the decoder will accept. Large enough for any
/// CHW `u8` tensor the engine serves (a 3×32×32 CNV input is 3 KiB) with
/// generous headroom, small enough that a hostile length prefix cannot
/// drive allocation.
pub const MAX_PAYLOAD: usize = 1 << 20;

const TYPE_REQUEST: u8 = 1;
const TYPE_RESPONSE: u8 = 2;

/// Machine-readable outcome of a request, carried by every response.
///
/// Sheds and rejects are first-class protocol citizens: a client always
/// learns *why* it got nothing, rather than facing a silently closed
/// connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// Served: the label and latency fields are meaningful.
    Ok,
    /// Shed by admission control: the bounded queue was full.
    QueueFull,
    /// Rejected on arrival: the deadline budget cannot be met even by an
    /// idle server (budget below the measured single-inference floor, or
    /// already expired).
    DeadlineInfeasible,
    /// Rejected because the server is draining for shutdown.
    ShuttingDown,
    /// The requested model id is not the one this server is serving.
    UnknownModel,
    /// The request was structurally valid protocol but semantically
    /// unusable (e.g. tensor shape does not match the model input).
    BadRequest,
}

impl Status {
    /// All statuses, in wire-code order.
    pub const ALL: [Status; 6] = [
        Status::Ok,
        Status::QueueFull,
        Status::DeadlineInfeasible,
        Status::ShuttingDown,
        Status::UnknownModel,
        Status::BadRequest,
    ];

    /// The wire code.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::QueueFull => 1,
            Status::DeadlineInfeasible => 2,
            Status::ShuttingDown => 3,
            Status::UnknownModel => 4,
            Status::BadRequest => 5,
        }
    }

    /// Parses a wire code.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::UnknownStatus`] for codes outside the catalog.
    pub fn from_code(code: u8) -> Result<Self, ProtoError> {
        Status::ALL
            .into_iter()
            .find(|s| s.code() == code)
            .ok_or(ProtoError::UnknownStatus(code))
    }

    /// Stable human/telemetry label (matches the serving layer's shed
    /// `reason` strings where the concepts coincide).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::QueueFull => "queue-full",
            Status::DeadlineInfeasible => "deadline-infeasible",
            Status::ShuttingDown => "shutting-down",
            Status::UnknownModel => "unknown-model",
            Status::BadRequest => "bad-request",
        }
    }

    /// Whether this status means the request was served.
    #[must_use]
    pub fn is_ok(self) -> bool {
        self == Status::Ok
    }

    /// Whether a client (or an L7 gateway) may safely resend the request
    /// elsewhere after seeing this status.
    ///
    /// `QueueFull` and `ShuttingDown` describe transient *server* state: the
    /// request itself was well-formed and was never executed, so another
    /// attempt — on the same server later, or on a different backend now —
    /// can succeed. Every other status is terminal: `Ok` already has an
    /// answer, and `DeadlineInfeasible` / `UnknownModel` / `BadRequest`
    /// describe the *request*, which a retry would not change.
    #[must_use]
    pub fn is_retryable(self) -> bool {
        matches!(self, Status::QueueFull | Status::ShuttingDown)
    }
}

/// One inference request as it travels the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestFrame {
    /// Client-chosen request id, echoed verbatim in the response.
    pub id: u64,
    /// Deadline budget in microseconds from arrival; 0 means "use the
    /// server's configured default".
    pub deadline_us: u64,
    /// Model id the client wants to hit (e.g. `cnv-w2a2`).
    pub model: String,
    /// Input tensor channels.
    pub channels: u16,
    /// Input tensor height.
    pub height: u16,
    /// Input tensor width.
    pub width: u16,
    /// CHW-ordered `u8` tensor data, exactly `channels·height·width` bytes.
    pub data: Vec<u8>,
}

/// One response as it travels the wire. Latency fields are microseconds;
/// they are zero for rejected requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseFrame {
    /// The request id this answers.
    pub id: u64,
    /// Outcome.
    pub status: Status,
    /// Predicted class label (meaningful only when `status` is OK).
    pub label: u16,
    /// Time spent in the admission queue before batch close, µs.
    pub queue_us: u32,
    /// Time being served as part of its batch, µs.
    pub service_us: u32,
    /// End-to-end server-side sojourn, arrival to completion, µs.
    pub latency_us: u32,
}

/// Any frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A client → server inference request.
    Request(RequestFrame),
    /// A server → client outcome.
    Response(ResponseFrame),
}

impl Frame {
    /// The frame-type byte of this frame.
    #[must_use]
    pub fn type_byte(&self) -> u8 {
        match self {
            Frame::Request(_) => TYPE_REQUEST,
            Frame::Response(_) => TYPE_RESPONSE,
        }
    }
}

/// A little-endian byte cursor over a payload slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    frame: &'static str,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8], frame: &'static str) -> Self {
        Self {
            bytes,
            pos: 0,
            frame,
        }
    }

    fn take(&mut self, n: usize, field: &str) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(ProtoError::payload(
                self.frame,
                format!(
                    "payload ends inside `{field}` (need {n} bytes at offset {}, payload is {})",
                    self.pos,
                    self.bytes.len()
                ),
            ));
        };
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, field: &str) -> Result<u8, ProtoError> {
        Ok(self.take(1, field)?[0])
    }

    fn u16(&mut self, field: &str) -> Result<u16, ProtoError> {
        let b = self.take(2, field)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, field: &str) -> Result<u32, ProtoError> {
        let b = self.take(4, field)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, field: &str) -> Result<u64, ProtoError> {
        let b = self.take(8, field)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(ProtoError::payload(
                self.frame,
                format!(
                    "{} trailing byte(s) after the last field",
                    self.bytes.len() - self.pos
                ),
            ))
        }
    }
}

fn encode_request_payload(r: &RequestFrame, out: &mut Vec<u8>) {
    out.extend_from_slice(&r.id.to_le_bytes());
    out.extend_from_slice(&r.deadline_us.to_le_bytes());
    debug_assert!(r.model.len() <= u8::MAX as usize, "model id fits a u8");
    out.push(r.model.len().min(u8::MAX as usize) as u8);
    out.extend_from_slice(&r.model.as_bytes()[..r.model.len().min(u8::MAX as usize)]);
    out.extend_from_slice(&r.channels.to_le_bytes());
    out.extend_from_slice(&r.height.to_le_bytes());
    out.extend_from_slice(&r.width.to_le_bytes());
    out.extend_from_slice(&r.data);
}

fn decode_request_payload(bytes: &[u8]) -> Result<RequestFrame, ProtoError> {
    let mut c = Cursor::new(bytes, "request");
    let id = c.u64("id")?;
    let deadline_us = c.u64("deadline_us")?;
    let model_len = c.u8("model_len")? as usize;
    let model = std::str::from_utf8(c.take(model_len, "model")?)
        .map_err(|_| ProtoError::ModelNotUtf8)?
        .to_string();
    let channels = c.u16("channels")?;
    let height = c.u16("height")?;
    let width = c.u16("width")?;
    let elements = usize::from(channels) * usize::from(height) * usize::from(width);
    let data = c.take(elements, "tensor data")?.to_vec();
    c.finish()?;
    Ok(RequestFrame {
        id,
        deadline_us,
        model,
        channels,
        height,
        width,
        data,
    })
}

fn encode_response_payload(r: &ResponseFrame, out: &mut Vec<u8>) {
    out.extend_from_slice(&r.id.to_le_bytes());
    out.push(r.status.code());
    out.extend_from_slice(&r.label.to_le_bytes());
    out.extend_from_slice(&r.queue_us.to_le_bytes());
    out.extend_from_slice(&r.service_us.to_le_bytes());
    out.extend_from_slice(&r.latency_us.to_le_bytes());
}

fn decode_response_payload(bytes: &[u8]) -> Result<ResponseFrame, ProtoError> {
    let mut c = Cursor::new(bytes, "response");
    let id = c.u64("id")?;
    let status = Status::from_code(c.u8("status")?)?;
    let label = c.u16("label")?;
    let queue_us = c.u32("queue_us")?;
    let service_us = c.u32("service_us")?;
    let latency_us = c.u32("latency_us")?;
    c.finish()?;
    Ok(ResponseFrame {
        id,
        status,
        label,
        queue_us,
        service_us,
        latency_us,
    })
}

/// Encodes one frame (header + payload) into a fresh byte vector.
///
/// # Panics
///
/// Panics if the payload would exceed [`MAX_PAYLOAD`] or the model id
/// exceeds 255 bytes — both are caller bugs (the serving layer validates
/// tensors against the model's input shape long before encoding).
#[must_use]
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + 64);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(frame.type_byte());
    out.extend_from_slice(&[0, 0, 0, 0]); // length back-patched below
    match frame {
        Frame::Request(r) => {
            assert!(
                r.model.len() <= u8::MAX as usize,
                "model id exceeds 255 bytes"
            );
            encode_request_payload(r, &mut out);
        }
        Frame::Response(r) => encode_response_payload(r, &mut out),
    }
    let payload_len = out.len() - HEADER_LEN;
    assert!(payload_len <= MAX_PAYLOAD, "payload exceeds MAX_PAYLOAD");
    out[4..8].copy_from_slice(&(payload_len as u32).to_le_bytes());
    out
}

/// Validates the 8-byte header, returning the declared payload length and
/// frame-type byte.
///
/// # Errors
///
/// Any of the header-level [`ProtoError`]s; never panics.
pub(crate) fn check_header(header: &[u8; HEADER_LEN]) -> Result<(usize, u8), ProtoError> {
    let found = [header[0], header[1]];
    if found != MAGIC {
        return Err(ProtoError::BadMagic {
            found,
            expected: MAGIC,
        });
    }
    if header[2] != VERSION {
        return Err(ProtoError::UnsupportedVersion {
            found: header[2],
            supported: VERSION,
        });
    }
    let frame_type = header[3];
    if frame_type != TYPE_REQUEST && frame_type != TYPE_RESPONSE {
        return Err(ProtoError::UnknownFrameType(frame_type));
    }
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
    if len > MAX_PAYLOAD {
        return Err(ProtoError::Oversized {
            len: len as u64,
            max: MAX_PAYLOAD as u64,
        });
    }
    Ok((len, frame_type))
}

pub(crate) fn decode_payload(frame_type: u8, payload: &[u8]) -> Result<Frame, ProtoError> {
    match frame_type {
        TYPE_REQUEST => decode_request_payload(payload).map(Frame::Request),
        TYPE_RESPONSE => decode_response_payload(payload).map(Frame::Response),
        other => Err(ProtoError::UnknownFrameType(other)),
    }
}

/// Decodes exactly one frame from the front of `bytes`, returning the frame
/// and the number of bytes consumed.
///
/// # Errors
///
/// [`ProtoError::Truncated`] when `bytes` holds less than one complete
/// frame; any other [`ProtoError`] when the bytes are not a valid frame.
/// Total over arbitrary input — never panics.
pub fn decode_frame(bytes: &[u8]) -> Result<(Frame, usize), ProtoError> {
    if bytes.len() < HEADER_LEN {
        return Err(ProtoError::Truncated {
            needed: HEADER_LEN,
            have: bytes.len(),
        });
    }
    let header: [u8; HEADER_LEN] = bytes[..HEADER_LEN].try_into().expect("sliced to length");
    let (payload_len, frame_type) = check_header(&header)?;
    let total = HEADER_LEN + payload_len;
    if bytes.len() < total {
        return Err(ProtoError::Truncated {
            needed: total,
            have: bytes.len(),
        });
    }
    let frame = decode_payload(frame_type, &bytes[HEADER_LEN..total])?;
    Ok((frame, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> Frame {
        Frame::Request(RequestFrame {
            id: 42,
            deadline_us: 250_000,
            model: "cnv-w2a2".into(),
            channels: 2,
            height: 3,
            width: 4,
            data: (0..24).collect(),
        })
    }

    fn response() -> Frame {
        Frame::Response(ResponseFrame {
            id: 42,
            status: Status::Ok,
            label: 7,
            queue_us: 1_200,
            service_us: 5_400,
            latency_us: 6_600,
        })
    }

    #[test]
    fn request_round_trips() {
        let bytes = encode_frame(&request());
        let (frame, consumed) = decode_frame(&bytes).expect("decodes");
        assert_eq!(frame, request());
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn response_round_trips_every_status() {
        for status in Status::ALL {
            let mut f = response();
            if let Frame::Response(r) = &mut f {
                r.status = status;
            }
            let bytes = encode_frame(&f);
            let (back, _) = decode_frame(&bytes).expect("decodes");
            assert_eq!(back, f);
        }
    }

    #[test]
    fn status_codes_are_stable_and_distinct() {
        let codes: Vec<u8> = Status::ALL.iter().map(|s| s.code()).collect();
        assert_eq!(codes, [0, 1, 2, 3, 4, 5]);
        assert!(Status::from_code(99).is_err());
        assert_eq!(Status::QueueFull.label(), "queue-full");
        assert_eq!(Status::DeadlineInfeasible.label(), "deadline-infeasible");
        assert_eq!(Status::ShuttingDown.label(), "shutting-down");
    }

    /// Exhaustive match: adding a `Status` variant must force a decision
    /// about its retryability here, not silently default.
    #[test]
    fn retryability_is_decided_for_every_status() {
        for status in Status::ALL {
            let expected = match status {
                Status::QueueFull | Status::ShuttingDown => true,
                Status::Ok
                | Status::DeadlineInfeasible
                | Status::UnknownModel
                | Status::BadRequest => false,
            };
            assert_eq!(status.is_retryable(), expected, "{status:?}");
            // A retryable status is never a success.
            assert!(!(status.is_retryable() && status.is_ok()));
        }
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = encode_frame(&response());
        bytes[0] = 0x00;
        assert!(matches!(
            decode_frame(&bytes),
            Err(ProtoError::BadMagic { .. })
        ));
    }

    #[test]
    fn wrong_version_is_typed() {
        let mut bytes = encode_frame(&response());
        bytes[2] = VERSION + 1;
        assert_eq!(
            decode_frame(&bytes),
            Err(ProtoError::UnsupportedVersion {
                found: VERSION + 1,
                supported: VERSION
            })
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_buffering() {
        let mut bytes = encode_frame(&response());
        bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes),
            Err(ProtoError::Oversized { .. })
        ));
    }

    #[test]
    fn truncated_frame_reports_needed_bytes() {
        let bytes = encode_frame(&request());
        let err = decode_frame(&bytes[..bytes.len() - 1]).unwrap_err();
        assert_eq!(
            err,
            ProtoError::Truncated {
                needed: bytes.len(),
                have: bytes.len() - 1
            }
        );
    }

    #[test]
    fn tensor_data_must_tile_the_payload_exactly() {
        let Frame::Request(mut r) = request() else {
            unreachable!()
        };
        r.data.push(0); // one surplus byte after the declared C·H·W
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(1);
        out.extend_from_slice(&[0, 0, 0, 0]);
        super::encode_request_payload(&r, &mut out);
        let len = (out.len() - HEADER_LEN) as u32;
        out[4..8].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(
            decode_frame(&out),
            Err(ProtoError::MalformedPayload {
                frame: "request",
                ..
            })
        ));
    }

    #[test]
    fn model_utf8_is_enforced() {
        let bytes = encode_frame(&request());
        // The model field starts after id (8) + deadline (8) + len byte (1).
        let mut corrupt = bytes.clone();
        corrupt[HEADER_LEN + 17] = 0xFF;
        assert_eq!(decode_frame(&corrupt), Err(ProtoError::ModelNotUtf8));
    }
}
