//! # adaflow-proto — the AdaFlow serving wire protocol
//!
//! A transport-agnostic, length-prefixed binary protocol carrying inference
//! requests and responses between clients and the live serving front-end
//! (`adaflow-net`). The codec is deliberately socket-free: everything is
//! pure `encode`/`decode` over byte slices plus an incremental
//! [`FrameReader`], so the whole protocol is testable without opening a
//! connection — mirroring the protocol-core / transport-crate split the
//! ROADMAP calls for. The one exception is [`ProtoClient`], the shared
//! client-side transport (pipelined send, id-correlated receive) used by
//! the load generator and the gateway's backend connections.
//!
//! ## Wire format
//!
//! Every frame is an 8-byte header followed by a length-prefixed payload:
//!
//! ```text
//! offset  size  field
//! 0       2     magic 0xAD 0xF1
//! 2       1     protocol version (currently 1)
//! 3       1     frame type (1 = request, 2 = response)
//! 4       4     payload length, u32 little-endian (≤ MAX_PAYLOAD)
//! 8       n     payload
//! ```
//!
//! Integers are little-endian throughout. A request payload carries the
//! client request id, a deadline budget in microseconds (0 = server
//! default), the model id, and the CHW input tensor; a response echoes the
//! id and carries a machine-readable [`Status`] (accepted results and every
//! reject reason — queue-full, deadline-infeasible, shutting-down — are all
//! first-class codes, never just a closed connection), the predicted label
//! and the server-side latency decomposition in microseconds.
//!
//! ## Robustness contract
//!
//! Decoding never panics. Garbage bytes, truncated headers, wrong-version
//! frames and oversized length prefixes all surface as typed
//! [`ProtoError`]s; incomplete input is simply "no frame yet"
//! (`Ok(None)` from [`FrameReader::next_frame`]). Once a reader has
//! reported an error the stream is unsynchronized and the connection
//! should be dropped — the reader keeps returning the error rather than
//! resynchronizing on attacker-controlled bytes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod frame;
pub mod reader;

pub use client::{ClientError, ProtoClient};
pub use error::ProtoError;
pub use frame::{
    decode_frame, encode_frame, Frame, RequestFrame, ResponseFrame, Status, HEADER_LEN, MAGIC,
    MAX_PAYLOAD, VERSION,
};
pub use reader::FrameReader;
