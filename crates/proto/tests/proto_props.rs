//! Property tests over the wire protocol (ISSUE 9 satellite 1).
//!
//! Four families: encode/decode round-trips, incremental parsing across
//! arbitrary split points, and typed (never panicking) rejection of
//! garbage, truncated, wrong-version and oversized input.

use adaflow_proto::{
    decode_frame, encode_frame, Frame, FrameReader, ProtoError, RequestFrame, ResponseFrame,
    Status, HEADER_LEN, MAGIC, VERSION,
};
use proptest::prelude::*;

const MODEL_NAMES: [&str; 5] = ["cnv-w2a2", "cnv-w1a2", "lenet-w2a2", "tiny-w2a2", ""];

fn build_request(
    id: u64,
    deadline_us: u64,
    model_idx: usize,
    dims: (u16, u16, u16),
    fill: u8,
) -> Frame {
    let (channels, height, width) = dims;
    let elements = usize::from(channels) * usize::from(height) * usize::from(width);
    Frame::Request(RequestFrame {
        id,
        deadline_us,
        model: MODEL_NAMES[model_idx % MODEL_NAMES.len()].to_string(),
        channels,
        height,
        width,
        data: (0..elements)
            .map(|i| (i as u8).wrapping_add(fill))
            .collect(),
    })
}

fn build_response(id: u64, status_idx: usize, label: u16, times: (u32, u32, u32)) -> Frame {
    Frame::Response(ResponseFrame {
        id,
        status: Status::ALL[status_idx % Status::ALL.len()],
        label,
        queue_us: times.0,
        service_us: times.1,
        latency_us: times.2,
    })
}

/// Splits `bytes` into chunks whose boundaries are driven by `cuts`, then
/// feeds them through a `FrameReader` and returns every decoded frame.
fn feed_in_chunks(bytes: &[u8], cuts: &[usize]) -> Vec<Frame> {
    let mut reader = FrameReader::new();
    let mut frames = Vec::new();
    let mut pos = 0;
    let mut cut_iter = cuts.iter().cycle();
    while pos < bytes.len() {
        let step = 1 + cut_iter.next().copied().unwrap_or(0) % 97;
        let end = (pos + step).min(bytes.len());
        reader.feed(&bytes[pos..end]);
        pos = end;
        while let Some(frame) = reader.next_frame().expect("valid stream never errors") {
            frames.push(frame);
        }
    }
    assert_eq!(reader.pending_bytes(), 0, "stream must drain exactly");
    frames
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every well-formed request survives encode → decode unchanged, and
    /// the decoder consumes exactly the encoded length.
    #[test]
    fn request_round_trip(
        id in 0u64..=u64::MAX,
        deadline_us in 0u64..10_000_000,
        model_idx in 0usize..5,
        c in 0u16..8,
        h in 0u16..40,
        w in 0u16..40,
        fill in 0u8..=255,
    ) {
        let frame = build_request(id, deadline_us, model_idx, (c, h, w), fill);
        let bytes = encode_frame(&frame);
        let (decoded, consumed) = decode_frame(&bytes).expect("round trip");
        prop_assert_eq!(decoded, frame);
        prop_assert_eq!(consumed, bytes.len());
    }

    /// Every well-formed response round-trips, across all status codes.
    #[test]
    fn response_round_trip(
        id in 0u64..=u64::MAX,
        status_idx in 0usize..6,
        label in 0u16..=u16::MAX,
        queue_us in 0u32..=u32::MAX,
        service_us in 0u32..=u32::MAX,
        latency_us in 0u32..=u32::MAX,
    ) {
        let frame = build_response(id, status_idx, label, (queue_us, service_us, latency_us));
        let bytes = encode_frame(&frame);
        let (decoded, consumed) = decode_frame(&bytes).expect("round trip");
        prop_assert_eq!(decoded, frame);
        prop_assert_eq!(consumed, bytes.len());
    }

    /// A multi-frame stream chopped at arbitrary points yields exactly the
    /// original frames, in order, regardless of how the chunks land.
    #[test]
    fn incremental_parse_any_split(
        ids in proptest::collection::vec(0u64..1_000_000, 1..8),
        cuts in proptest::collection::vec(0usize..97, 1..32),
        mix in 0usize..6,
    ) {
        let frames: Vec<Frame> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                if (i + mix) % 2 == 0 {
                    build_request(id, 0, i, (1, 4, 4), id as u8)
                } else {
                    build_response(id, i, (id % 10) as u16, (1, 2, 3))
                }
            })
            .collect();
        let stream: Vec<u8> = frames.iter().flat_map(encode_frame).collect();
        let decoded = feed_in_chunks(&stream, &cuts);
        prop_assert_eq!(decoded, frames);
    }

    /// Arbitrary garbage never panics the slice decoder: it either reports
    /// a typed error or (when the bytes happen to spell a valid header)
    /// truncation/structured failure. The reader likewise never panics and
    /// never fabricates a frame out of bytes that don't start with magic.
    #[test]
    fn garbage_never_panics(
        junk in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        // Slice decoder: total over arbitrary input.
        let _ = decode_frame(&junk);
        // Incremental reader: same contract.
        let mut reader = FrameReader::new();
        reader.feed(&junk);
        let drained = std::iter::from_fn(|| reader.next_frame().ok().flatten()).count();
        // A frame can only emerge if the stream really started with magic.
        if junk.len() >= 2 && [junk[0], junk[1]] != MAGIC {
            prop_assert_eq!(drained, 0);
            prop_assert!(reader.is_poisoned());
        }
    }

    /// Any strict prefix of a valid frame is `Truncated` for the slice
    /// decoder and "no frame yet" for the reader — never an error, never a
    /// partial frame.
    #[test]
    fn truncation_is_detected(
        id in 0u64..=u64::MAX,
        keep_num in 0usize..=1_000,
    ) {
        let bytes = encode_frame(&build_request(id, 99, 0, (1, 3, 3), 7));
        let keep = keep_num * (bytes.len() - 1) / 1_000;
        let err = decode_frame(&bytes[..keep]).expect_err("prefix cannot decode");
        prop_assert!(matches!(err, ProtoError::Truncated { .. }));

        let mut reader = FrameReader::new();
        reader.feed(&bytes[..keep]);
        prop_assert_eq!(reader.next_frame().expect("prefix is not an error"), None);
        // Completing the stream then yields the frame intact.
        reader.feed(&bytes[keep..]);
        prop_assert!(reader.next_frame().expect("completes").is_some());
    }

    /// Wrong-version headers are rejected with the typed error for every
    /// possible foreign version byte.
    #[test]
    fn wrong_version_rejected(version in 0u8..=255) {
        prop_assume!(version != VERSION);
        let mut bytes = encode_frame(&build_response(1, 0, 0, (0, 0, 0)));
        bytes[2] = version;
        prop_assert_eq!(
            decode_frame(&bytes),
            Err(ProtoError::UnsupportedVersion { found: version, supported: VERSION })
        );
        let mut reader = FrameReader::new();
        reader.feed(&bytes);
        prop_assert!(matches!(
            reader.next_frame(),
            Err(ProtoError::UnsupportedVersion { .. })
        ));
    }

    /// Length prefixes beyond the payload cap are rejected from the header
    /// alone — before any payload is buffered or allocated.
    #[test]
    fn oversized_prefix_rejected(extra in 1u64..=u64::from(u32::MAX) - (1 << 20)) {
        let len = (1u64 << 20) + extra;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&MAGIC);
        header.push(VERSION);
        header.push(1);
        header.extend_from_slice(&(len as u32).to_le_bytes());
        let err = decode_frame(&header).expect_err("must reject");
        prop_assert_eq!(err, ProtoError::Oversized { len, max: 1 << 20 });
        let mut reader = FrameReader::new();
        reader.feed(&header);
        prop_assert!(matches!(reader.next_frame(), Err(ProtoError::Oversized { .. })));
    }

    /// Pipelining: K interleaved request/response exchanges on one stream
    /// — requests and their (possibly reordered) responses woven together
    /// — decode in wire order under arbitrary chunk splits, and every
    /// response id correlates back to exactly one request id. This is the
    /// invariant the gateway's multiplexed backend connections rely on.
    #[test]
    fn pipelined_exchanges_correlate_under_any_split(
        k in 1usize..10,
        reorder in 0usize..7,
        cuts in proptest::collection::vec(0usize..97, 1..32),
    ) {
        // K requests with distinct ids, then their K responses in a
        // rotated order (the server may finish out of order), interleaved
        // so the stream alternates directions like a real pipelined
        // connection: r0 r1 resp(a) r2 resp(b) ...
        let ids: Vec<u64> = (0..k as u64).map(|i| 1000 + i).collect();
        let requests: Vec<Frame> = ids
            .iter()
            .map(|&id| build_request(id, 100, id as usize, (1, 3, 3), id as u8))
            .collect();
        let responses: Vec<Frame> = (0..k)
            .map(|i| {
                let id = ids[(i + reorder) % k];
                build_response(id, 0, (id % 10) as u16, (1, 2, 3))
            })
            .collect();
        let mut wire: Vec<Frame> = Vec::with_capacity(2 * k);
        let mut resp_iter = responses.iter();
        for (i, req) in requests.iter().enumerate() {
            wire.push(req.clone());
            // After the second request, weave one response between each
            // pair of requests; the rest flush at the end.
            if i >= 1 {
                if let Some(resp) = resp_iter.next() {
                    wire.push(resp.clone());
                }
            }
        }
        wire.extend(resp_iter.cloned());

        let stream: Vec<u8> = wire.iter().flat_map(encode_frame).collect();
        let decoded = feed_in_chunks(&stream, &cuts);
        prop_assert_eq!(&decoded, &wire);

        // Correlation: the decoded responses' ids are exactly the decoded
        // requests' ids as a set — every outstanding request is answered
        // once, no response is orphaned.
        let mut req_ids: Vec<u64> = decoded
            .iter()
            .filter_map(|f| match f {
                Frame::Request(r) => Some(r.id),
                Frame::Response(_) => None,
            })
            .collect();
        let mut resp_ids: Vec<u64> = decoded
            .iter()
            .filter_map(|f| match f {
                Frame::Response(r) => Some(r.id),
                Frame::Request(_) => None,
            })
            .collect();
        req_ids.sort_unstable();
        resp_ids.sort_unstable();
        prop_assert_eq!(req_ids, resp_ids);
    }

    /// Corrupting any single byte of a valid frame either still decodes
    /// (the byte was free data like the id) or fails with a typed error —
    /// it never panics and never decodes to the original frame plus noise
    /// in the structural fields.
    #[test]
    fn single_byte_corruption_is_safe(
        pos_num in 0usize..=1_000,
        delta in 1u8..=255,
    ) {
        let frame = build_request(77, 500, 0, (1, 2, 2), 9);
        let mut bytes = encode_frame(&frame);
        let pos = pos_num * (bytes.len() - 1) / 1_000;
        bytes[pos] ^= delta;
        let _ = decode_frame(&bytes); // must not panic, outcome may vary
    }
}
