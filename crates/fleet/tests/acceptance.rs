//! Fleet acceptance criteria from the PR issue:
//!
//! 1. On scenario-2 arrivals with the paper's 250 ms deadline, a 4-device
//!    heterogeneous fleet under the deadline-aware router beats (a) the
//!    same fleet under round-robin and (b) a single device absorbing the
//!    full 4× offered load — averaged over ≥ 20 seeds.
//! 2. The reconfiguration coordinator never lets more than
//!    `max_concurrent_drains` devices drain at once, witnessed by the
//!    `observed_max_drains` interval sweep over real runs.

use adaflow::{Library, LibraryGenerator};
use adaflow_edge::{Scenario, WorkloadSpec};
use adaflow_fleet::prelude::*;
use adaflow_model::prelude::*;
use adaflow_nn::DatasetKind;

const SEEDS: usize = 20;

fn library() -> Library {
    LibraryGenerator::default_edge_setup()
        .generate(
            &topology::cnv_w2a2_cifar10().expect("builds"),
            DatasetKind::Cifar10,
        )
        .expect("generates")
}

/// Scenario-2 (unpredictable) arrivals at 4× the paper's edge load: the
/// offered rate a 4-device fleet shares, and the stress a single device
/// must absorb alone in baseline (b).
fn spec_4x() -> WorkloadSpec {
    WorkloadSpec {
        devices: 80,
        fps_per_device: 30.0,
        duration_s: 5.0,
        scenario: Scenario::Unpredictable,
    }
}

fn heterogeneous(router: RouterKind) -> FleetConfig {
    FleetConfig {
        devices: vec![
            DeviceKind::AdaFlow,
            DeviceKind::AdaFlow,
            DeviceKind::FlexibleOnly,
            DeviceKind::FixedMax,
        ],
        router,
        ..FleetConfig::default()
    }
}

fn mean_summary(lib: &Library, config: FleetConfig) -> FleetSummary {
    FleetExperiment::new(lib, spec_4x())
        .config(config)
        .runs(SEEDS)
        .run()
}

#[test]
fn deadline_aware_fleet_beats_round_robin_and_single_device() {
    let lib = library();
    let aware = mean_summary(&lib, heterogeneous(RouterKind::DeadlineAware));
    let rr = mean_summary(&lib, heterogeneous(RouterKind::RoundRobin));
    let single = mean_summary(
        &lib,
        FleetConfig {
            devices: vec![DeviceKind::AdaFlow],
            ..FleetConfig::default()
        },
    );

    assert!(aware.conservation_holds());
    assert!(rr.conservation_holds());
    assert!(single.conservation_holds());

    assert!(
        aware.deadline_hit_pct > rr.deadline_hit_pct,
        "deadline-aware {:.2}% must beat round-robin {:.2}%",
        aware.deadline_hit_pct,
        rr.deadline_hit_pct
    );
    assert!(
        aware.deadline_hit_pct > single.deadline_hit_pct,
        "deadline-aware fleet {:.2}% must beat a single device at 4x load {:.2}%",
        aware.deadline_hit_pct,
        single.deadline_hit_pct
    );
}

#[test]
fn stagger_budget_is_respected_on_real_runs() {
    let lib = library();
    // ~300 FPS per device: demand oscillates across a model boundary, so
    // devices actually switch (and stall) — the traffic the stagger
    // budget exists for.
    let spec = WorkloadSpec {
        devices: 40,
        fps_per_device: 30.0,
        duration_s: 10.0,
        scenario: Scenario::Unpredictable,
    };
    let config = FleetConfig {
        devices: vec![DeviceKind::AdaFlow; 4],
        max_concurrent_drains: 1,
        ..FleetConfig::default()
    };
    let mut total_switches = 0.0;
    for seed in 1..=10u64 {
        let s = FleetEngine::new(config.clone()).run(&lib, &spec, seed);
        assert!(
            s.observed_max_drains <= 1.0,
            "seed {seed}: {} devices drained concurrently under a budget of 1",
            s.observed_max_drains
        );
        total_switches += s.model_switches;
    }
    assert!(
        total_switches > 0.0,
        "witness is vacuous: no device ever switched (nothing was staggered)"
    );
}
