//! Property-based tests of the fleet invariants: bit determinism across
//! worker-thread counts, request conservation on the observable event
//! record, and the stagger budget.

use adaflow::{Library, LibraryGenerator};
use adaflow_edge::{Scenario, WorkloadSpec};
use adaflow_fleet::prelude::*;
use adaflow_model::prelude::*;
use adaflow_nn::DatasetKind;
use adaflow_telemetry::{EventKind, SinkHandle};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::OnceLock;

fn library() -> &'static Library {
    static LIB: OnceLock<Library> = OnceLock::new();
    LIB.get_or_init(|| {
        LibraryGenerator::default_edge_setup()
            .generate(
                &topology::cnv_w2a2_cifar10().expect("builds"),
                DatasetKind::Cifar10,
            )
            .expect("generates")
    })
}

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        devices: 6,
        fps_per_device: 30.0,
        duration_s: 2.5,
        scenario: Scenario::Unpredictable,
    }
}

fn kind(choice: u8) -> DeviceKind {
    match choice % 3 {
        0 => DeviceKind::AdaFlow,
        1 => DeviceKind::FixedMax,
        _ => DeviceKind::FlexibleOnly,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The multi-seed fleet mean is bit-identical for 1, 2 and N worker
    /// threads: sharding runs across workers must never change a single
    /// bit of the averaged summary.
    #[test]
    fn fleet_mean_identical_across_thread_counts(
        seed in 0u64..1_000,
        router_idx in 0usize..4,
        n in 1usize..5,
    ) {
        let config = FleetConfig {
            devices: vec![DeviceKind::AdaFlow; n],
            router: RouterKind::ALL[router_idx],
            ..FleetConfig::default()
        };
        let exp = FleetExperiment::new(library(), spec())
            .config(config)
            .runs(3)
            .seed(seed);
        let serial = exp.clone().threads(1).run();
        let two = exp.clone().threads(2).run();
        let auto = exp.threads(0).run();
        prop_assert_eq!(&serial, &two, "2 workers diverged from serial");
        prop_assert_eq!(&serial, &auto, "auto workers diverged from serial");
        prop_assert!(serial.conservation_holds());
    }

    /// Conservation on the observable record: every generated request is
    /// routed exactly once to a valid device, and every routed request is
    /// either completed or shed exactly once — nothing lost, duplicated,
    /// or left in flight.
    #[test]
    fn every_request_routed_once_and_resolved_once(
        seed in 0u64..1_000,
        router_idx in 0usize..4,
        kinds in proptest::collection::vec(0u8..3, 1..5),
    ) {
        let devices: Vec<DeviceKind> = kinds.iter().copied().map(kind).collect();
        let n = devices.len();
        let config = FleetConfig {
            devices,
            router: RouterKind::ALL[router_idx],
            ..FleetConfig::default()
        };
        let (sink, recorder) = SinkHandle::recorder(1 << 18);
        let summary = FleetEngine::new(config).with_sink(sink).run(library(), &spec(), seed);
        let mut routed = BTreeSet::new();
        let mut completed = BTreeSet::new();
        let mut shed = BTreeSet::new();
        for e in recorder.drain() {
            match e.kind {
                EventKind::RequestRouted { id, device_idx, .. } => {
                    prop_assert!((device_idx as usize) < n, "routed to device {device_idx} of {n}");
                    prop_assert!(routed.insert(id), "id {id} routed twice");
                }
                EventKind::RequestCompleted { id, .. } => {
                    prop_assert!(completed.insert(id), "id {id} completed twice");
                    prop_assert!(routed.contains(&id), "id {id} completed unrouted");
                }
                EventKind::RequestShed { id, .. } => {
                    prop_assert!(shed.insert(id), "id {id} shed twice");
                }
                _ => {}
            }
        }
        prop_assert!(completed.is_disjoint(&shed), "id both completed and shed");
        prop_assert_eq!(routed.len() as f64, summary.arrived);
        prop_assert_eq!(completed.len() as f64, summary.completed);
        prop_assert_eq!(shed.len() as f64, summary.shed);
        prop_assert!(summary.conservation_holds());
        let resolved: BTreeSet<_> = completed.union(&shed).copied().collect();
        prop_assert_eq!(routed, resolved, "request neither completed nor shed");
    }

    /// Fleet span trees are well-formed for every random fleet shape ×
    /// router × seed: one tree per completion, every tree carries the
    /// route marker and a valid serving-device index, and the waterfall's
    /// stage durations tile the end-to-end latency.
    #[test]
    fn fleet_span_forest_well_formed_and_tiles(
        seed in 0u64..1_000,
        router_idx in 0usize..4,
        kinds in proptest::collection::vec(0u8..3, 1..5),
    ) {
        use adaflow_telemetry::{SpanRecord, Stage, TraceForest, Waterfall};
        let devices: Vec<DeviceKind> = kinds.iter().copied().map(kind).collect();
        let n = devices.len() as u32;
        let config = FleetConfig {
            devices,
            router: RouterKind::ALL[router_idx],
            ..FleetConfig::default()
        };
        let (sink, recorder) = SinkHandle::recorder(1 << 18);
        let summary = FleetEngine::new(config).with_sink(sink).run(library(), &spec(), seed);
        let forest = TraceForest::from_events(&recorder.drain());
        prop_assert!(forest.validate().is_ok(), "invalid forest: {:?}", forest.validate());
        prop_assert_eq!(forest.len() as f64, summary.completed, "one trace per completion");
        for trace in &forest.traces {
            let root = trace.root().expect("validated");
            prop_assert!(root.device_idx < n, "device {} of {n}", root.device_idx);
            prop_assert!(
                trace.spans.iter().any(|r| r.span == Stage::Route.span_id()),
                "fleet trace {} lacks the route marker", trace.id.0
            );
            let leaf_sum: f64 = Stage::LEAVES
                .iter()
                .map(|stage| {
                    trace
                        .spans
                        .iter()
                        .find(|r| r.span == stage.span_id())
                        .map_or(0.0, SpanRecord::duration_s)
                })
                .sum();
            prop_assert!((leaf_sum - root.duration_s()).abs() < 1e-9,
                "trace {}: stages must tile end-to-end", trace.id.0);
        }
        let waterfall = Waterfall::from_forest(&forest, 3);
        prop_assert!(waterfall.attribution_residual_s < 1e-9);
        prop_assert!(waterfall.per_device.len() <= n as usize);
    }

    /// The stagger budget holds for every K: no interleaving of device
    /// reconfigurations ever has more than `max_concurrent_drains` drain
    /// windows overlapping.
    #[test]
    fn stagger_budget_never_exceeded(
        seed in 0u64..1_000,
        k in 1usize..4,
        n in 2usize..6,
    ) {
        let config = FleetConfig {
            devices: vec![DeviceKind::AdaFlow; n],
            max_concurrent_drains: k,
            ..FleetConfig::default()
        };
        let summary = FleetEngine::new(config).run(library(), &spec(), seed);
        prop_assert!(
            summary.observed_max_drains <= k as f64,
            "budget {k} exceeded: {} concurrent drains",
            summary.observed_max_drains
        );
        prop_assert!(summary.conservation_holds());
    }
}
