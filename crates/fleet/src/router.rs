//! Fleet routing policies.
//!
//! A router sees an immutable [`DeviceSnapshot`] per device — queue
//! occupancy, in-flight batch, busy horizon and live throughput — and
//! picks the device index to dispatch the arrival to. All four policies
//! are deterministic: power-of-two-choices draws from a seeded ChaCha8
//! stream owned by the router, so a `(config, seed)` pair pins every
//! routing decision bit-for-bit.
//!
//! These policies serve two callers: the fleet DES dispatches simulated
//! arrivals through them, and `adaflow-gateway` drives the *same*
//! `RoutePolicy` objects over live TCP backends (mapping each backend's
//! in-flight count and measured service floor into a snapshot). Sharing
//! the implementation is what makes the sim-vs-real hit-rate comparison
//! in EXPERIMENTS.md an apples-to-apples check.

use crate::config::RouterKind;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// What a router may observe about one device at dispatch time.
#[derive(Debug, Clone, Copy)]
pub struct DeviceSnapshot {
    /// Admission-queue occupancy, requests.
    pub queue_len: usize,
    /// Requests in the in-flight batch (0 while idle).
    pub in_flight: usize,
    /// When the in-flight batch completes (stall included), if any.
    pub busy_until_s: Option<f64>,
    /// Live serving throughput, FPS; `None` before the first batch.
    pub serving_fps: Option<f64>,
}

impl DeviceSnapshot {
    /// Queued plus in-flight work — the join-shortest-queue load metric.
    #[must_use]
    pub fn load(&self) -> usize {
        self.queue_len + self.in_flight
    }
}

/// A fleet dispatch policy.
pub trait RoutePolicy {
    /// Policy display name (stable; used in summaries and the CLI).
    fn name(&self) -> &'static str;

    /// Picks the device index for the arrival at `now_s`.
    /// `devices` is non-empty; the result must index into it.
    fn route(&mut self, now_s: f64, devices: &[DeviceSnapshot]) -> usize;
}

/// Cycle through devices in index order.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinRouter {
    next: usize,
}

impl RoutePolicy for RoundRobinRouter {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn route(&mut self, _now_s: f64, devices: &[DeviceSnapshot]) -> usize {
        let idx = self.next % devices.len();
        self.next = (self.next + 1) % devices.len();
        idx
    }
}

/// Join the shortest queue (queued + in-flight), ties to the lowest index.
#[derive(Debug, Clone, Default)]
pub struct LeastLoadedRouter;

impl RoutePolicy for LeastLoadedRouter {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn route(&mut self, _now_s: f64, devices: &[DeviceSnapshot]) -> usize {
        let mut best = 0;
        for (idx, d) in devices.iter().enumerate().skip(1) {
            if d.load() < devices[best].load() {
                best = idx;
            }
        }
        best
    }
}

/// Power of two choices: sample two distinct devices from a seeded
/// stream, join the less loaded (ties to the lower index).
#[derive(Debug, Clone)]
pub struct PowerOfTwoRouter {
    rng: ChaCha8Rng,
}

impl PowerOfTwoRouter {
    /// Creates the router over its private sampling stream.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0xF1EE_7B02),
        }
    }
}

impl RoutePolicy for PowerOfTwoRouter {
    fn name(&self) -> &'static str {
        "power-of-two"
    }

    fn route(&mut self, _now_s: f64, devices: &[DeviceSnapshot]) -> usize {
        let n = devices.len();
        if n == 1 {
            return 0;
        }
        let first = self.rng.gen_range(0..n);
        let mut second = self.rng.gen_range(0..n - 1);
        if second >= first {
            second += 1;
        }
        let (lo, hi) = (first.min(second), first.max(second));
        if devices[hi].load() < devices[lo].load() {
            hi
        } else {
            lo
        }
    }
}

/// Rank devices by the estimated completion instant of the new request:
/// the device is free when its in-flight batch (stall included) is done,
/// then the queued backlog plus this request drain at the live
/// throughput. Picks the earliest estimate, ties to the lowest index —
/// so a device mid-reconfiguration (large busy horizon) naturally loses
/// to its peers until the drain is over.
#[derive(Debug, Clone)]
pub struct DeadlineAwareRouter {
    /// Throughput prior used before a device establishes its first
    /// serving state, FPS.
    prior_fps: f64,
}

impl DeadlineAwareRouter {
    /// Creates the router with a throughput prior for cold devices.
    #[must_use]
    pub fn new(prior_fps: f64) -> Self {
        Self {
            prior_fps: prior_fps.max(1.0),
        }
    }

    /// The estimated completion instant of a request dispatched to `d` at
    /// `now_s`.
    #[must_use]
    pub fn estimate_done_s(&self, now_s: f64, d: &DeviceSnapshot) -> f64 {
        let fps = d.serving_fps.unwrap_or(self.prior_fps).max(1e-9);
        let free_s = d.busy_until_s.map_or(now_s, |b| b.max(now_s));
        free_s + (d.queue_len as f64 + 1.0) / fps
    }
}

impl RoutePolicy for DeadlineAwareRouter {
    fn name(&self) -> &'static str {
        "deadline-aware"
    }

    fn route(&mut self, now_s: f64, devices: &[DeviceSnapshot]) -> usize {
        let mut best = 0;
        let mut best_done = self.estimate_done_s(now_s, &devices[0]);
        for (idx, d) in devices.iter().enumerate().skip(1) {
            let done = self.estimate_done_s(now_s, d);
            if done.total_cmp(&best_done).is_lt() {
                best = idx;
                best_done = done;
            }
        }
        best
    }
}

impl RouterKind {
    /// Builds the routing policy. `seed` feeds the power-of-two sampling
    /// stream; `prior_fps` is the throughput prior the deadline-aware
    /// router uses for devices that have not served yet. The box is
    /// `Send` so the live gateway can drive one policy from its
    /// connection threads (behind a mutex); the DES uses it single-threaded.
    #[must_use]
    pub fn build(self, seed: u64, prior_fps: f64) -> Box<dyn RoutePolicy + Send> {
        match self {
            RouterKind::RoundRobin => Box::new(RoundRobinRouter::default()),
            RouterKind::LeastLoaded => Box::new(LeastLoadedRouter),
            RouterKind::PowerOfTwo => Box::new(PowerOfTwoRouter::new(seed)),
            RouterKind::DeadlineAware => Box::new(DeadlineAwareRouter::new(prior_fps)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(queue_len: usize, in_flight: usize) -> DeviceSnapshot {
        DeviceSnapshot {
            queue_len,
            in_flight,
            busy_until_s: (in_flight > 0).then_some(1.0),
            serving_fps: Some(100.0),
        }
    }

    #[test]
    fn round_robin_cycles_in_index_order() {
        let mut r = RoundRobinRouter::default();
        let devs = [snap(9, 9), snap(0, 0), snap(5, 0)];
        let picks: Vec<usize> = (0..7).map(|_| r.route(0.0, &devs)).collect();
        assert_eq!(picks, [0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn least_loaded_joins_shortest_with_low_index_ties() {
        let mut r = LeastLoadedRouter;
        assert_eq!(r.route(0.0, &[snap(3, 1), snap(0, 1), snap(2, 0)]), 1);
        assert_eq!(r.route(0.0, &[snap(2, 0), snap(1, 1), snap(4, 0)]), 0);
    }

    #[test]
    fn power_of_two_is_deterministic_and_never_picks_heavier() {
        let devs = [snap(0, 0), snap(10, 1), snap(3, 0), snap(7, 0)];
        let picks_a: Vec<usize> = {
            let mut r = PowerOfTwoRouter::new(11);
            (0..64).map(|_| r.route(0.0, &devs)).collect()
        };
        let picks_b: Vec<usize> = {
            let mut r = PowerOfTwoRouter::new(11);
            (0..64).map(|_| r.route(0.0, &devs)).collect()
        };
        assert_eq!(picks_a, picks_b, "seeded stream is deterministic");
        // Device 1 (load 11) can only win a pairing it is lighter in —
        // there is none, so it is never picked.
        assert!(picks_a.iter().all(|&p| p != 1));
        // More than one device gets traffic.
        assert!(picks_a.contains(&0));
    }

    #[test]
    fn deadline_aware_avoids_draining_device() {
        let mut r = DeadlineAwareRouter::new(100.0);
        let devs = [
            // Mid-reconfiguration: free only at t=2.0.
            DeviceSnapshot {
                queue_len: 0,
                in_flight: 4,
                busy_until_s: Some(2.0),
                serving_fps: Some(400.0),
            },
            // Busy but quick, short queue.
            DeviceSnapshot {
                queue_len: 2,
                in_flight: 4,
                busy_until_s: Some(0.12),
                serving_fps: Some(400.0),
            },
        ];
        assert_eq!(r.route(0.1, &devs), 1, "route around the drain");
    }

    #[test]
    fn deadline_aware_prefers_faster_device_at_equal_depth() {
        let mut r = DeadlineAwareRouter::new(100.0);
        let devs = [
            DeviceSnapshot {
                queue_len: 6,
                in_flight: 0,
                busy_until_s: None,
                serving_fps: Some(100.0),
            },
            DeviceSnapshot {
                queue_len: 6,
                in_flight: 0,
                busy_until_s: None,
                serving_fps: Some(500.0),
            },
        ];
        assert_eq!(r.route(0.0, &devs), 1);
    }

    #[test]
    fn builder_matches_kind_names() {
        for kind in RouterKind::ALL {
            assert_eq!(kind.build(1, 100.0).name(), kind.name());
        }
    }
}
