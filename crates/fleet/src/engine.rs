//! The deterministic fleet discrete-event engine.
//!
//! Runs N [`DeviceCore`]s on one global simulation clock behind a fleet
//! router. Event sources per step: every device's batch completion,
//! every device's batch close, the global arrival stream, and the
//! periodic load-imbalance sampler — processed in global time order with
//! the tie discipline *completion < close < arrival < sample*, and ties
//! within a class resolved to the lowest device index. The ordering is a
//! pure function of `(config, library, spec, seed)`, so a fleet run is
//! bit-reproducible; nothing about it depends on host threads (the
//! multi-seed experiment shards *runs*, never the event loop).
//!
//! Arrivals are the same per-IoT-device trace the single-device engine
//! consumes ([`adaflow_serve::generate_requests`]); the router decides
//! which accelerator each request joins, the chosen device's own
//! admission queue/batcher/deadline accounting take over from there, and
//! fabric switches go through the [`ReconfigCoordinator`] so at most K
//! devices drain at once.

use crate::config::{DeviceKind, FleetConfig};
use crate::coordinator::{max_overlap, ReconfigCoordinator};
use crate::router::DeviceSnapshot;
use crate::summary::{DeviceSummary, FleetSummary};
use adaflow::{Library, RuntimeConfig};
use adaflow_edge::WorkloadSpec;
use adaflow_serve::{
    generate_requests, AdaFlowServePolicy, CompletedRequest, DeviceCore, FixedMaxPolicy,
    FlexibleOnlyPolicy, ServePolicy,
};
use adaflow_telemetry::{EventKind, LogHistogram, SinkHandle};

/// Event-class tie priority (lower fires first at equal times).
enum Pick {
    Completion(usize),
    Close(usize),
    Arrival,
    Sample,
}

/// Coefficient of variation (σ/μ) of a sample; zero when the mean is not
/// positive.
fn coefficient_of_variation(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    var.sqrt() / mean
}

/// The fleet engine: composition, runtime configuration and an optional
/// telemetry sink.
#[derive(Debug, Clone)]
pub struct FleetEngine {
    config: FleetConfig,
    runtime: RuntimeConfig,
    sink: SinkHandle,
}

impl FleetEngine {
    /// Creates an engine over a fleet configuration with the default
    /// runtime-manager configuration.
    #[must_use]
    pub fn new(config: FleetConfig) -> Self {
        Self {
            config,
            runtime: RuntimeConfig::default(),
            sink: SinkHandle::default(),
        }
    }

    /// Overrides the runtime-manager configuration the adaptive device
    /// policies run under.
    #[must_use]
    pub fn with_runtime(mut self, runtime: RuntimeConfig) -> Self {
        self.runtime = runtime;
        self
    }

    /// Attaches a telemetry sink receiving the full fleet lifecycle:
    /// per-request routing/enqueue/completion/shed, batch closes,
    /// per-device reconfiguration spans and imbalance samples.
    #[must_use]
    pub fn with_sink(mut self, sink: SinkHandle) -> Self {
        self.sink = sink;
        self
    }

    /// The engine's fleet configuration.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Runs one seeded fleet simulation to completion (trace exhausted,
    /// every queue drained) and returns the fleet summary.
    ///
    /// # Panics
    ///
    /// Panics if the fleet shape is degenerate (no devices, zero drain
    /// budget, non-positive imbalance period) — conditions FL001 reports
    /// ahead of time.
    #[allow(clippy::too_many_lines)]
    pub fn run(&self, library: &Library, spec: &WorkloadSpec, seed: u64) -> FleetSummary {
        let cfg = &self.config;
        let n = cfg.devices.len();
        assert!(n > 0, "fleet needs at least one device (FL001)");
        assert!(
            cfg.imbalance_period_s > 0.0,
            "imbalance period must be positive"
        );

        let fleet_rate = if cfg.serve.initial_rate_fps > 0.0 {
            cfg.serve.initial_rate_fps
        } else {
            spec.nominal_fps()
        };
        let share_rate = fleet_rate / n as f64;

        let mut devices: Vec<DeviceCore> = (0..n)
            .map(|_| DeviceCore::new(cfg.serve.clone(), share_rate))
            .collect();
        let mut policies: Vec<Box<dyn ServePolicy + '_>> = cfg
            .devices
            .iter()
            .map(|kind| -> Box<dyn ServePolicy> {
                match kind {
                    DeviceKind::AdaFlow => Box::new(
                        AdaFlowServePolicy::new(library, self.runtime.clone())
                            .with_deadline(cfg.serve.deadline_s),
                    ),
                    DeviceKind::FixedMax => Box::new(FixedMaxPolicy::new(library)),
                    DeviceKind::FlexibleOnly => {
                        Box::new(FlexibleOnlyPolicy::new(library, self.runtime.clone()))
                    }
                }
            })
            .collect();
        let mut router = cfg.router.build(seed, share_rate);
        let mut coordinator = ReconfigCoordinator::new(cfg.max_concurrent_drains);

        let requests = generate_requests(spec, seed);
        let mut next_arrival = 0usize;
        let mut now = 0.0f64;
        let mut next_sample = cfg.imbalance_period_s;

        let mut fleet_latency = LogHistogram::latency_s();
        let mut request_stall_sum_s = 0.0f64;
        let mut scratch: Vec<CompletedRequest> = Vec::new();
        let mut drains: Vec<(f64, f64)> = Vec::new();
        let mut cv_sum = 0.0f64;
        let mut cv_max = 0.0f64;
        let mut cv_count = 0u64;
        let mut snaps: Vec<DeviceSnapshot> = Vec::with_capacity(n);

        loop {
            // Earliest candidate across all classes; iteration order
            // encodes the tie priority (strict-less keeps the earlier
            // class and the lower device index on equal times).
            let mut chosen: Option<(f64, Pick)> = None;
            let consider = |t: Option<f64>, pick: Pick, chosen: &mut Option<(f64, Pick)>| {
                if let Some(t) = t {
                    let better = match chosen {
                        None => true,
                        Some((bt, _)) => t.total_cmp(bt).is_lt(),
                    };
                    if better {
                        *chosen = Some((t, pick));
                    }
                }
            };
            for (i, d) in devices.iter().enumerate() {
                consider(d.next_completion_s(), Pick::Completion(i), &mut chosen);
            }
            for (i, d) in devices.iter().enumerate() {
                consider(d.next_close_s(now), Pick::Close(i), &mut chosen);
            }
            consider(
                requests.get(next_arrival).map(|r| r.arrival_s),
                Pick::Arrival,
                &mut chosen,
            );
            // The sampler never keeps an otherwise-finished simulation
            // alive: it is only a candidate while real work is pending.
            if chosen.is_some() {
                consider(Some(next_sample), Pick::Sample, &mut chosen);
            }
            let Some((t, pick)) = chosen else {
                break; // trace exhausted, every queue drained, fleet idle
            };
            now = t;

            match pick {
                Pick::Completion(i) => {
                    devices[i].complete(now, &self.sink, &mut scratch);
                    for d in &scratch {
                        fleet_latency.record(d.latency_s);
                        request_stall_sum_s += d.stall_s;
                    }
                    adaflow_serve::emit_request_traces(&self.sink, &scratch, i as u32, true);
                    scratch.clear();
                }
                Pick::Close(i) => {
                    let device = &mut devices[i];
                    let close = device.close_batch(
                        now,
                        policies[i].as_mut(),
                        &self.sink,
                        &mut |drain_now, stall_s| coordinator.acquire(drain_now, stall_s),
                    );
                    if close.stall_s > 0.0 {
                        // Every granted stall window counts against the
                        // stagger budget — full fabric reconfigurations
                        // and flexible weight reloads alike drain the
                        // device through the coordinator gate.
                        drains.push((close.drain_start_s, close.start_s));
                    }
                    if close.reconfigured && close.stall_s > 0.0 && self.sink.enabled() {
                        self.sink.emit(
                            close.drain_start_s,
                            EventKind::DeviceReconfigStart {
                                device_idx: i as u32,
                                model: close.model.clone(),
                            },
                        );
                        self.sink.emit(
                            close.start_s,
                            EventKind::DeviceReconfigEnd {
                                device_idx: i as u32,
                                model: close.model.clone(),
                                stall_s: close.stall_s,
                            },
                        );
                    }
                }
                Pick::Arrival => {
                    let request = requests[next_arrival];
                    next_arrival += 1;
                    snaps.clear();
                    snaps.extend(devices.iter().map(|d| DeviceSnapshot {
                        queue_len: d.queue_len(),
                        in_flight: d.in_flight(),
                        busy_until_s: d.busy_until_s(),
                        serving_fps: d.serving_fps(),
                    }));
                    let idx = router.route(now, &snaps);
                    assert!(idx < n, "router returned device {idx} of {n}");
                    if self.sink.enabled() {
                        self.sink.emit(
                            now,
                            EventKind::RequestRouted {
                                id: request.id,
                                device_idx: idx as u32,
                                queue_depth: snaps[idx].queue_len as u64,
                            },
                        );
                    }
                    devices[idx].offer(request, now, &self.sink);
                }
                Pick::Sample => {
                    let depths: Vec<f64> = devices.iter().map(|d| d.queue_len() as f64).collect();
                    let cv = coefficient_of_variation(&depths);
                    cv_sum += cv;
                    cv_max = cv_max.max(cv);
                    cv_count += 1;
                    if self.sink.enabled() {
                        let max_queue =
                            devices.iter().map(DeviceCore::queue_len).max().unwrap_or(0);
                        let min_queue =
                            devices.iter().map(DeviceCore::queue_len).min().unwrap_or(0);
                        self.sink.emit(
                            now,
                            EventKind::FleetImbalanceSample {
                                cv,
                                max_queue: max_queue as u64,
                                min_queue: min_queue as u64,
                            },
                        );
                    }
                    next_sample += cfg.imbalance_period_s;
                }
            }
        }

        let horizon_s = now;
        let finished: Vec<_> = devices.into_iter().map(DeviceCore::finish).collect();

        let sum = |f: fn(&adaflow_serve::DeviceStats) -> f64| -> f64 {
            finished.iter().map(|(s, _)| f(s)).sum()
        };
        let arrived = sum(|s| s.arrived as f64);
        let completed = sum(|s| s.completed as f64);
        let shed = sum(|s| s.shed as f64);
        let deadline_hits = sum(|s| s.deadline_hits as f64);
        let batches = sum(|s| s.batches as f64);
        let batched = sum(|s| s.batched_requests as f64);
        let latency_sum = sum(|s| s.latency_sum_s);
        debug_assert_eq!(
            arrived as u64,
            requests.len() as u64,
            "every generated request was routed"
        );
        debug_assert_eq!(
            arrived as u64,
            (completed + shed) as u64,
            "fleet conservation"
        );

        let per_device: Vec<DeviceSummary> = finished
            .iter()
            .zip(&cfg.devices)
            .map(|((stats, _), kind)| DeviceSummary {
                kind: kind.name().to_string(),
                arrived: stats.arrived as f64,
                completed: stats.completed as f64,
                shed: stats.shed as f64,
                deadline_hit_pct: 100.0 * stats.deadline_hits as f64
                    / (stats.arrived as f64).max(1.0),
                utilization_pct: 100.0 * stats.busy_service_s / horizon_s.max(1e-9),
                reconfigurations: stats.reconfigurations as f64,
                stall_total_s: stats.stall_total_s,
            })
            .collect();
        let shares: Vec<f64> = per_device.iter().map(|d| d.arrived).collect();

        FleetSummary {
            router: router.name().to_string(),
            devices: n as f64,
            arrived,
            completed,
            shed,
            deadline_hits,
            deadline_hit_pct: 100.0 * deadline_hits / arrived.max(1.0),
            shed_pct: 100.0 * shed / arrived.max(1.0),
            latency_mean_s: latency_sum / completed.max(1.0),
            latency_p50_s: fleet_latency.p50(),
            latency_p95_s: fleet_latency.p95(),
            latency_p99_s: fleet_latency.p99(),
            queue_wait_mean_s: sum(|s| s.queue_wait_sum_s) / completed.max(1.0),
            batch_wait_mean_s: sum(|s| s.batch_wait_sum_s) / completed.max(1.0),
            stall_mean_s: request_stall_sum_s / completed.max(1.0),
            service_mean_s: sum(|s| s.service_sum_s) / completed.max(1.0),
            batches,
            mean_batch_size: batched / batches.max(1.0),
            model_switches: sum(|s| s.model_switches as f64),
            flexible_switches: sum(|s| s.flexible_switches as f64),
            reconfigurations: sum(|s| s.reconfigurations as f64),
            stall_total_s: sum(|s| s.stall_total_s),
            imbalance_cv_mean: cv_sum / (cv_count as f64).max(1.0),
            imbalance_cv_max: cv_max,
            routed_share_cv: coefficient_of_variation(&shares),
            observed_max_drains: max_overlap(&drains) as f64,
            horizon_s,
            per_device,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RouterKind;
    use adaflow::LibraryGenerator;
    use adaflow_edge::Scenario;
    use adaflow_model::prelude::*;
    use adaflow_nn::DatasetKind;

    fn library() -> Library {
        LibraryGenerator::default_edge_setup()
            .generate(
                &topology::cnv_w2a2_cifar10().expect("builds"),
                DatasetKind::Cifar10,
            )
            .expect("generates")
    }

    fn small_spec(scale: usize) -> WorkloadSpec {
        WorkloadSpec {
            devices: 4 * scale,
            fps_per_device: 30.0,
            duration_s: 4.0,
            scenario: Scenario::Unpredictable,
        }
    }

    #[test]
    fn fleet_run_conserves_and_is_deterministic() {
        let lib = library();
        let engine = FleetEngine::new(FleetConfig::default());
        let a = engine.run(&lib, &small_spec(4), 3);
        let b = engine.run(&lib, &small_spec(4), 3);
        assert!(a.arrived > 0.0);
        assert!(a.conservation_holds());
        assert_eq!(a, b, "same seed, bit-identical summary");
        let c = engine.run(&lib, &small_spec(4), 4);
        assert_ne!(a, c, "different seed, different trace");
    }

    #[test]
    fn every_router_conserves_on_a_heterogeneous_fleet() {
        let lib = library();
        for router in RouterKind::ALL {
            let config = FleetConfig {
                router,
                ..FleetConfig::default()
            };
            let s = FleetEngine::new(config).run(&lib, &small_spec(4), 1);
            assert!(s.conservation_holds(), "{}", router.name());
            assert_eq!(s.router, router.name());
            assert_eq!(s.per_device.len(), 4);
            // Every device must see traffic under every router at this
            // load (4× nominal spread over 4 devices).
            for d in &s.per_device {
                assert!(d.arrived > 0.0, "{}: silent device", router.name());
            }
        }
    }

    #[test]
    fn single_device_fleet_matches_serve_engine_totals() {
        // A 1-device adaflow fleet is the single-device serving problem;
        // totals must line up with ServeEngine on the same trace.
        let lib = library();
        let spec = small_spec(1);
        let config = FleetConfig {
            devices: vec![DeviceKind::AdaFlow],
            router: RouterKind::RoundRobin,
            ..FleetConfig::default()
        };
        let fleet = FleetEngine::new(config.clone()).run(&lib, &spec, 5);
        let engine = adaflow_serve::ServeEngine::new(config.serve.clone());
        let mut policy = AdaFlowServePolicy::new(&lib, RuntimeConfig::default())
            .with_deadline(config.serve.deadline_s);
        let serve = engine.run(&spec, 5, &mut policy);
        assert_eq!(fleet.arrived, serve.arrived);
        assert_eq!(fleet.completed, serve.completed);
        assert_eq!(fleet.shed, serve.shed);
        assert_eq!(fleet.deadline_hits, serve.deadline_hits);
        assert_eq!(fleet.reconfigurations, serve.reconfigurations);
    }

    #[test]
    fn fleet_span_forest_is_routed_well_formed_and_tiles_latency() {
        use adaflow_telemetry::{SpanRecord, Stage, TraceForest};
        let lib = library();
        let (sink, recorder) = SinkHandle::recorder(1 << 18);
        let s = FleetEngine::new(FleetConfig::default())
            .with_sink(sink)
            .run(&lib, &small_spec(4), 3);
        let forest = TraceForest::from_events(&recorder.drain());
        forest.validate().expect("span trees well-formed");
        assert_eq!(forest.len() as f64, s.completed, "one trace per completion");
        let n = s.per_device.len() as u32;
        for trace in &forest.traces {
            let root = trace.root().expect("root span");
            assert!(root.device_idx < n, "root carries the serving device");
            assert!(
                trace.spans.iter().any(|r| r.span == Stage::Route.span_id()),
                "fleet traces carry the route marker"
            );
            let leaf_sum: f64 = Stage::LEAVES
                .iter()
                .map(|stage| {
                    trace
                        .spans
                        .iter()
                        .find(|r| r.span == stage.span_id())
                        .map_or(0.0, SpanRecord::duration_s)
                })
                .sum();
            assert!(
                (leaf_sum - root.duration_s()).abs() < 1e-9,
                "stage sums tile the root"
            );
        }
        // The summary's stage means decompose its latency mean.
        let total = s.queue_wait_mean_s + s.batch_wait_mean_s + s.service_mean_s;
        assert!((total - s.latency_mean_s).abs() < 1e-9);
        assert!(s.stall_mean_s <= s.batch_wait_mean_s + 1e-12);
    }

    #[test]
    fn imbalance_sampler_reports_round_robin_balance() {
        let lib = library();
        let config = FleetConfig {
            devices: vec![DeviceKind::FlexibleOnly; 4],
            router: RouterKind::RoundRobin,
            ..FleetConfig::default()
        };
        let s = FleetEngine::new(config).run(&lib, &small_spec(4), 2);
        // Round-robin over identical devices spreads arrivals almost
        // exactly evenly.
        assert!(s.routed_share_cv < 0.02, "share cv {}", s.routed_share_cv);
        assert!(s.imbalance_cv_max >= s.imbalance_cv_mean);
    }
}
