//! Fleet run summaries.

use serde::{Deserialize, Serialize};

/// Per-device slice of a fleet run. Counts are `f64` so multi-seed means
/// stay exact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSummary {
    /// Serving-policy kind of the device (`adaflow`, `fixed-max`,
    /// `flexible-only`).
    pub kind: String,
    /// Requests routed to this device.
    pub arrived: f64,
    /// Requests served to completion.
    pub completed: f64,
    /// Requests shed by this device's admission control.
    pub shed: f64,
    /// Deadline hits as a percentage of requests routed here.
    pub deadline_hit_pct: f64,
    /// Busy time over the fleet horizon, percent.
    pub utilization_pct: f64,
    /// Full FPGA reconfigurations on this device.
    pub reconfigurations: f64,
    /// Total switch stall charged on this device, seconds.
    pub stall_total_s: f64,
}

/// Aggregate outcome of one fleet run (or a multi-seed mean).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSummary {
    /// Router display name.
    pub router: String,
    /// Fleet size, devices.
    pub devices: f64,
    /// Requests offered to the fleet.
    pub arrived: f64,
    /// Requests served to completion.
    pub completed: f64,
    /// Requests shed across all devices.
    pub shed: f64,
    /// Completed requests that met the deadline.
    pub deadline_hits: f64,
    /// Deadline hits as a percentage of *arrived* (sheds count as
    /// misses).
    pub deadline_hit_pct: f64,
    /// Sheds as a percentage of arrived.
    pub shed_pct: f64,
    /// Mean end-to-end latency of completed requests, seconds.
    pub latency_mean_s: f64,
    /// Latency percentiles over the whole fleet, seconds.
    pub latency_p50_s: f64,
    /// 95th percentile fleet latency, seconds.
    pub latency_p95_s: f64,
    /// 99th percentile fleet latency, seconds.
    pub latency_p99_s: f64,
    /// Mean time completed requests spent in an admission queue, seconds.
    pub queue_wait_mean_s: f64,
    /// Mean time between batch close and service start (stall plus
    /// coordinator deferral), seconds.
    pub batch_wait_mean_s: f64,
    /// Mean reconfiguration-stall share of `batch_wait_mean_s`, seconds.
    pub stall_mean_s: f64,
    /// Mean in-batch service time, seconds.
    pub service_mean_s: f64,
    /// Batches closed across the fleet.
    pub batches: f64,
    /// Mean closed-batch size, requests.
    pub mean_batch_size: f64,
    /// CNN model switches across the fleet (any kind).
    pub model_switches: f64,
    /// Weight-reload switches on flexible fabrics.
    pub flexible_switches: f64,
    /// Full FPGA reconfigurations across the fleet.
    pub reconfigurations: f64,
    /// Total switch stall across the fleet, seconds.
    pub stall_total_s: f64,
    /// Mean of the sampled queue-depth imbalance coefficient (coefficient
    /// of variation; 0 = perfectly balanced).
    pub imbalance_cv_mean: f64,
    /// Worst sampled queue-depth imbalance coefficient.
    pub imbalance_cv_max: f64,
    /// Coefficient of variation of the per-device routed-request shares —
    /// the end-of-run answer to "did the router spread the traffic".
    pub routed_share_cv: f64,
    /// Most devices observed draining for a switch stall (full
    /// reconfiguration or weight reload) at the same instant.
    pub observed_max_drains: f64,
    /// Simulation horizon (last event), seconds.
    pub horizon_s: f64,
    /// Per-device breakdown, fleet index order.
    pub per_device: Vec<DeviceSummary>,
}

impl FleetSummary {
    /// Whether fleet-level request conservation holds: everything offered
    /// was either completed or shed, and the per-device slices tile the
    /// totals exactly.
    #[must_use]
    pub fn conservation_holds(&self) -> bool {
        let per_arrived: f64 = self.per_device.iter().map(|d| d.arrived).sum();
        let per_completed: f64 = self.per_device.iter().map(|d| d.completed).sum();
        let per_shed: f64 = self.per_device.iter().map(|d| d.shed).sum();
        (self.arrived - (self.completed + self.shed)).abs() < 1e-6
            && (per_arrived - self.arrived).abs() < 1e-6
            && (per_completed - self.completed).abs() < 1e-6
            && (per_shed - self.shed).abs() < 1e-6
    }

    /// Element-wise mean over runs of the same fleet shape. Returns
    /// `None` on an empty slice; panics if shapes differ (different
    /// device counts cannot be averaged).
    #[must_use]
    pub fn mean(runs: &[FleetSummary]) -> Option<FleetSummary> {
        let first = runs.first()?;
        let n = runs.len() as f64;
        for r in runs {
            assert_eq!(
                r.per_device.len(),
                first.per_device.len(),
                "cannot average different fleet shapes"
            );
        }
        let avg = |f: fn(&FleetSummary) -> f64| runs.iter().map(f).sum::<f64>() / n;
        let avg_dev = |i: usize, f: fn(&DeviceSummary) -> f64| {
            runs.iter().map(|r| f(&r.per_device[i])).sum::<f64>() / n
        };
        Some(FleetSummary {
            router: first.router.clone(),
            devices: first.devices,
            arrived: avg(|s| s.arrived),
            completed: avg(|s| s.completed),
            shed: avg(|s| s.shed),
            deadline_hits: avg(|s| s.deadline_hits),
            deadline_hit_pct: avg(|s| s.deadline_hit_pct),
            shed_pct: avg(|s| s.shed_pct),
            latency_mean_s: avg(|s| s.latency_mean_s),
            latency_p50_s: avg(|s| s.latency_p50_s),
            latency_p95_s: avg(|s| s.latency_p95_s),
            latency_p99_s: avg(|s| s.latency_p99_s),
            queue_wait_mean_s: avg(|s| s.queue_wait_mean_s),
            batch_wait_mean_s: avg(|s| s.batch_wait_mean_s),
            stall_mean_s: avg(|s| s.stall_mean_s),
            service_mean_s: avg(|s| s.service_mean_s),
            batches: avg(|s| s.batches),
            mean_batch_size: avg(|s| s.mean_batch_size),
            model_switches: avg(|s| s.model_switches),
            flexible_switches: avg(|s| s.flexible_switches),
            reconfigurations: avg(|s| s.reconfigurations),
            stall_total_s: avg(|s| s.stall_total_s),
            imbalance_cv_mean: avg(|s| s.imbalance_cv_mean),
            imbalance_cv_max: avg(|s| s.imbalance_cv_max),
            routed_share_cv: avg(|s| s.routed_share_cv),
            observed_max_drains: avg(|s| s.observed_max_drains),
            horizon_s: avg(|s| s.horizon_s),
            per_device: (0..first.per_device.len())
                .map(|i| DeviceSummary {
                    kind: first.per_device[i].kind.clone(),
                    arrived: avg_dev(i, |d| d.arrived),
                    completed: avg_dev(i, |d| d.completed),
                    shed: avg_dev(i, |d| d.shed),
                    deadline_hit_pct: avg_dev(i, |d| d.deadline_hit_pct),
                    utilization_pct: avg_dev(i, |d| d.utilization_pct),
                    reconfigurations: avg_dev(i, |d| d.reconfigurations),
                    stall_total_s: avg_dev(i, |d| d.stall_total_s),
                })
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(hit_pct: f64) -> FleetSummary {
        FleetSummary {
            router: "deadline-aware".into(),
            devices: 2.0,
            arrived: 100.0,
            completed: 90.0,
            shed: 10.0,
            deadline_hits: 80.0,
            deadline_hit_pct: hit_pct,
            shed_pct: 10.0,
            latency_mean_s: 0.05,
            latency_p50_s: 0.04,
            latency_p95_s: 0.1,
            latency_p99_s: 0.2,
            queue_wait_mean_s: 0.02,
            batch_wait_mean_s: 0.01,
            stall_mean_s: 0.004,
            service_mean_s: 0.02,
            batches: 20.0,
            mean_batch_size: 4.5,
            model_switches: 3.0,
            flexible_switches: 2.0,
            reconfigurations: 1.0,
            stall_total_s: 0.145,
            imbalance_cv_mean: 0.2,
            imbalance_cv_max: 0.5,
            routed_share_cv: 0.1,
            observed_max_drains: 1.0,
            horizon_s: 25.0,
            per_device: vec![
                DeviceSummary {
                    kind: "adaflow".into(),
                    arrived: 60.0,
                    completed: 55.0,
                    shed: 5.0,
                    deadline_hit_pct: 85.0,
                    utilization_pct: 40.0,
                    reconfigurations: 1.0,
                    stall_total_s: 0.145,
                },
                DeviceSummary {
                    kind: "fixed-max".into(),
                    arrived: 40.0,
                    completed: 35.0,
                    shed: 5.0,
                    deadline_hit_pct: 75.0,
                    utilization_pct: 30.0,
                    reconfigurations: 0.0,
                    stall_total_s: 0.0,
                },
            ],
        }
    }

    #[test]
    fn conservation_checks_per_device_tiling() {
        let mut s = sample(80.0);
        assert!(s.conservation_holds());
        s.per_device[0].arrived += 1.0;
        assert!(!s.conservation_holds(), "tiling violation detected");
    }

    #[test]
    fn mean_averages_fleet_and_devices() {
        let m = FleetSummary::mean(&[sample(80.0), sample(90.0)]).expect("non-empty");
        assert!((m.deadline_hit_pct - 85.0).abs() < 1e-12);
        assert_eq!(m.per_device.len(), 2);
        assert_eq!(m.per_device[0].kind, "adaflow");
        assert!(m.conservation_holds());
        assert!(FleetSummary::mean(&[]).is_none());
    }

    #[test]
    fn summary_round_trips_through_json() {
        let s = sample(80.0);
        let text = serde_json::to_string(&s).expect("serializes");
        let back: FleetSummary = serde_json::from_str(&text).expect("parses");
        assert_eq!(s, back);
    }
}
